"""Setuptools shim.

The execution environment ships setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which build an editable wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` code path, which needs no wheel.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
