"""Benchmark: array-native generation loop vs the pre-PR list-based loop.

The structure-of-arrays population engine keeps the whole SPEA2 generation
loop on index arrays over one ``(P, n, n)`` genome stack: the pairwise
objective-distance matrix is computed once per generation and shared between
density estimation and truncation, archive truncation is incremental (bulk
duplicate-cluster removal + nearest-neighbour maintenance instead of a full
re-sort per removal), mating selection reuses the stamped
environmental-selection fitness, and Ω updates are pre-filtered with one
vectorized comparison.  This benchmark measures the end-to-end
``OptRROptimizer.run()`` speedup over the frozen pre-PR loop
(:func:`repro.core.reference.reference_optrr_run`) at the default
population/generation budget and at P = 200, asserts the >= 2x acceptance
bar, and verifies the two engines produce bit-for-bit identical fronts when
the reference applies the same fitness-reuse fix.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_generation.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_generation.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.reference import reference_optrr_run
from repro.data.synthetic import normal_distribution

N_CATEGORIES = 10
N_RECORDS = 10_000
DELTA = 0.8
SEED = 7
#: Generation budgets (env-tunable so CI can run a quick profile).
DEFAULT_GENERATIONS = int(os.environ.get("REPRO_BENCH_GENERATIONS", "300"))
P200_GENERATIONS = int(os.environ.get("REPRO_BENCH_P200_GENERATIONS", "40"))
#: Required end-to-end speedup; a typical laptop core measures ~2.5-3x at the
#: default budget and well above that at P=200.  CI sets
#: REPRO_BENCH_MIN_GENERATION_SPEEDUP=1.5 so timing noise on shared runners
#: cannot flake a required gate while still catching a real regression.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_GENERATION_SPEEDUP", "2.0"))


def _best_of(function, repeats: int) -> tuple[float, object]:
    """Best wall-clock time of ``repeats`` runs (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _front(result) -> np.ndarray:
    return np.array([(point.privacy, point.utility) for point in result.points])


def measure_generation_speedup(
    population: int, generations: int, *, repeats: int = 2
) -> dict:
    """Time the array-native loop vs the frozen pre-PR loop end to end."""
    prior = normal_distribution(N_CATEGORIES)
    config = OptRRConfig(
        population_size=population,
        archive_size=population,
        n_generations=generations,
        delta=DELTA,
        seed=SEED,
    )
    array_seconds, array_result = _best_of(
        lambda: OptRROptimizer(prior, N_RECORDS, config).run(), repeats
    )
    reference_seconds, _ = _best_of(
        lambda: reference_optrr_run(prior, N_RECORDS, config), max(1, repeats - 1)
    )
    # Equivalence guard: the speedup claim is meaningless if the engines
    # diverge.  With the fitness-reuse fix applied to the reference too, the
    # trajectories must be bit-for-bit identical (same RNG stream included).
    equivalent = reference_optrr_run(
        prior, N_RECORDS, config, reuse_archive_fitness=True
    )
    assert np.array_equal(_front(array_result), _front(equivalent)), (
        "array-native loop diverged from the fitness-reuse reference trajectory"
    )
    return {
        "population": population,
        "generations": generations,
        "array_seconds": array_seconds,
        "reference_seconds": reference_seconds,
        "speedup": reference_seconds / array_seconds,
    }


def _record(op: str, result: dict) -> None:
    record_bench(
        "generation",
        op,
        {
            "n_categories": N_CATEGORIES,
            "n_records": N_RECORDS,
            "delta": DELTA,
            "population": result["population"],
            "generations": result["generations"],
        },
        result["array_seconds"],
        reference_seconds=result["reference_seconds"],
    )


def _report(op: str, result: dict) -> None:
    print(
        f"\n{op} (pop={result['population']}, gens={result['generations']}): "
        f"reference {result['reference_seconds'] * 1e3:.0f} ms, "
        f"array-native {result['array_seconds'] * 1e3:.0f} ms, "
        f"speedup {result['speedup']:.1f}x"
    )


def test_generation_loop_speedup_default_budget():
    """The array-native loop must run the default OptRR budget >= 2x faster
    than the pre-PR list-based loop (the ISSUE-4 acceptance bar)."""
    result = measure_generation_speedup(40, DEFAULT_GENERATIONS)
    _record("optrr_run_default", result)
    _report("optrr_run_default", result)
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"generation-loop speedup {result['speedup']:.2f}x is below the "
        f"required {MIN_SPEEDUP}x"
    )


def test_generation_loop_speedup_p200():
    """At P = 200 the win grows (truncation and Ω dominate there)."""
    result = measure_generation_speedup(200, P200_GENERATIONS, repeats=1)
    _record("optrr_run_p200", result)
    _report("optrr_run_p200", result)
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"P=200 generation-loop speedup {result['speedup']:.2f}x is below the "
        f"required {MIN_SPEEDUP}x"
    )


def main() -> None:
    for op, population, generations in (
        ("optrr_run_default", 40, DEFAULT_GENERATIONS),
        ("optrr_run_p200", 200, P200_GENERATIONS),
    ):
        result = measure_generation_speedup(population, generations)
        _record(op, result)
        _report(op, result)


if __name__ == "__main__":
    main()
