"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one benchmark that (a) regenerates the figure's
data series with this library, (b) prints the paper-vs-measured comparison,
and (c) records the wall-clock cost via pytest-benchmark.

Every benchmark additionally emits a machine-readable ``BENCH_<name>.json``
next to the working directory (override with ``REPRO_BENCH_DIR``) through
:func:`record_bench` / :func:`emit_bench_json`, seeding the repository's
performance trajectory; the schema is documented in ``docs/benchmarks.md``
and the committed baselines are checked by ``tools/check_perf.py`` in CI.

Budget knobs (both optional):

* ``REPRO_GENERATIONS`` — optimizer generations per experiment (default 400;
  the paper itself runs 20 000).
* ``REPRO_POPULATION``  — population/archive size (default 40).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.analysis.plot import ascii_scatter
from repro.experiments.base import ExperimentResult

#: Version of the BENCH_<name>.json document layout.
BENCH_SCHEMA_VERSION = 1


def bench_output_dir() -> Path:
    """Directory BENCH_<name>.json files are written to (``REPRO_BENCH_DIR``
    or the current working directory)."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def bench_record(
    op: str,
    params: dict,
    seconds: float,
    *,
    reference_seconds: float | None = None,
    speedup: float | None = None,
    **extra,
) -> dict:
    """Build one benchmark record (op, params, wall time, speedup vs
    reference).  ``speedup`` is derived from ``reference_seconds`` when not
    given explicitly."""
    record = {"op": op, "params": dict(params), "seconds": float(seconds)}
    if reference_seconds is not None:
        record["reference_seconds"] = float(reference_seconds)
        if speedup is None and seconds > 0:
            speedup = reference_seconds / seconds
    if speedup is not None:
        record["speedup"] = float(speedup)
    record.update(extra)
    return record


def emit_bench_json(name: str, records: list[dict], directory: Path | None = None) -> Path:
    """Write ``BENCH_<name>.json`` with the given records and return its path.

    The document carries the schema version and the python/numpy versions the
    numbers were measured under, so trajectory files from different
    environments stay comparable.
    """
    import numpy

    directory = Path(directory) if directory is not None else bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "records": list(records),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def record_bench(
    name: str,
    op: str,
    params: dict,
    seconds: float,
    *,
    reference_seconds: float | None = None,
    speedup: float | None = None,
    **extra,
) -> Path:
    """Record one op into ``BENCH_<name>.json``, merging with the records
    already on disk (one record per op, newest wins).

    Merging through the file rather than an in-process registry keeps the
    trajectory consistent even when tests record through different module
    instances (pytest's conftest plugin vs ``benchmarks.conftest``) or
    across separate benchmark invocations.
    """
    record = bench_record(
        op,
        params,
        seconds,
        reference_seconds=reference_seconds,
        speedup=speedup,
        **extra,
    )
    records: dict[str, dict] = {}
    path = bench_output_dir() / f"BENCH_{name}.json"
    if path.is_file():
        try:
            existing = json.loads(path.read_text())
            records = {entry["op"]: entry for entry in existing.get("records", [])}
        except (json.JSONDecodeError, KeyError, TypeError):
            records = {}
    records[op] = record
    return emit_bench_json(name, [records[key] for key in sorted(records)])


def record_benchmark_stats(benchmark, name: str, op: str, params: dict) -> None:
    """Record the mean wall time of a completed pytest-benchmark fixture run.

    Skips silently when the plugin ran in ``--benchmark-disable`` mode and
    collected no stats.
    """
    try:
        seconds = float(benchmark.stats.stats.mean)
    except (AttributeError, TypeError):
        return
    record_bench(name, op, params, seconds)


def report_experiment(result: ExperimentResult, *, plot: bool = True) -> None:
    """Print the paper-vs-measured summary (and an ASCII front plot) for an
    experiment result so the benchmark output doubles as the figure data."""
    print()
    print("=" * 78)
    print(result.summary_text())
    if result.metrics:
        print("-" * 78)
        for key, value in sorted(result.metrics.items()):
            print(f"  {key:28s} = {value:.6g}")
    fronts = [front for front in result.fronts.values() if not front.is_empty]
    if plot and fronts:
        print("-" * 78)
        print(ascii_scatter(fronts, width=70, height=16))
    print("=" * 78)


@pytest.fixture
def run_once(benchmark, request):
    """Run a callable exactly once under pytest-benchmark.

    The experiments are minutes-scale relative to micro-benchmarks, so a
    single round is both representative and affordable.  Each run is also
    recorded into the module's ``BENCH_<name>.json`` trajectory file — pass
    ``op=`` (and optionally ``params=``) to label the record; the default op
    is the callable name plus its first positional argument.
    """

    def runner(function, *args, op: str | None = None, params: dict | None = None, **kwargs):
        start = time.perf_counter()
        result = benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
        elapsed = time.perf_counter() - start
        name = request.module.__name__.removeprefix("benchmarks.").removeprefix("bench_")
        if op is None:
            op = function.__name__
            if args and isinstance(args[0], str):
                op = f"{op}:{args[0]}"
        if params is None:
            params = {
                key: value
                for key, value in kwargs.items()
                if isinstance(value, (int, float, str, bool))
            }
        record_bench(name, op, params, elapsed)
        return result

    return runner
