"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one benchmark that (a) regenerates the figure's
data series with this library, (b) prints the paper-vs-measured comparison,
and (c) records the wall-clock cost via pytest-benchmark.

Budget knobs (both optional):

* ``REPRO_GENERATIONS`` — optimizer generations per experiment (default 400;
  the paper itself runs 20 000).
* ``REPRO_POPULATION``  — population/archive size (default 40).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.plot import ascii_scatter
from repro.experiments.base import ExperimentResult


def report_experiment(result: ExperimentResult, *, plot: bool = True) -> None:
    """Print the paper-vs-measured summary (and an ASCII front plot) for an
    experiment result so the benchmark output doubles as the figure data."""
    print()
    print("=" * 78)
    print(result.summary_text())
    if result.metrics:
        print("-" * 78)
        for key, value in sorted(result.metrics.items()):
            print(f"  {key:28s} = {value:.6g}")
    fronts = [front for front in result.fronts.values() if not front.is_empty]
    if plot and fronts:
        print("-" * 78)
        print(ascii_scatter(fronts, width=70, height=16))
    print("=" * 78)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark.

    The experiments are minutes-scale relative to micro-benchmarks, so a
    single round is both representative and affordable.
    """

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
