"""Benchmark: the streaming RR disguise runtime (ISSUE 10).

Three claims are measured and recorded into ``BENCH_rr_runtime.json``:

* **Kernel speedup.**  The searchsorted ``disguise_codes`` kernel vs the
  frozen ``(n, N)`` broadcast reference (``repro.rr.reference``) at
  ``n in {10, 32, 64, 100}``, N = 10^5 — plus the scale point N = 10^6.
  The committed acceptance bar is >= 3x at n = 64, N = 10^5 (gated through
  ``tools/check_perf.py --only rr_runtime``); outputs are checked
  bit-identical before any timing.
* **Peak auxiliary memory.**  tracemalloc peaks of both paths at n = 64,
  N = 10^5: the broadcast allocates the O(n*N) intermediate (~51 MB), the
  kernel stays O(N + n^2).
* **Streaming overhead.**  Chunked ``StreamingDisguiser`` vs one-shot
  ``randomize_codes`` on the same workload (bit-identical output, gated to
  stay within a bounded overhead), and the warm-start iteration savings of
  the ``OnlineEstimator`` vs cold per-chunk restarts (deterministic counts).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_rr_runtime.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_rr_runtime.py -q
"""

from __future__ import annotations

import functools
import os
import time
import tracemalloc

import numpy as np

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.rr.randomize import RandomizedResponse
from repro.rr.reference import broadcast_disguise_reference
from repro.rr.schemes import uniform_perturbation_matrix
from repro.rr.streaming import OnlineEstimator, StreamingDisguiser, iter_chunks
from repro.rr.matrix import random_rr_matrix

#: Domain sizes of the kernel sweep (the gated acceptance point is n=64).
DOMAIN_SIZES = (10, 32, 64, 100)
N_RECORDS = 100_000
#: Record count of the scale point (override to shrink a quick CI profile).
SCALE_RECORDS = int(os.environ.get("REPRO_BENCH_RR_SCALE_N", "1000000"))
GATE_N = 64
CHUNK_SIZE = 65_536
#: Required kernel speedup at (n=64, N=1e5).  Locally measured ~3.4x; CI can
#: relax via the environment variable so shared-runner noise cannot flake the
#: required gate (the committed perf_baseline.json bar is what CI enforces).
MIN_DISGUISE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_DISGUISE_SPEEDUP", "3.0"))


def _best_of(function, repeats: int = 7) -> float:
    """Best wall-clock time of ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(n: int, count: int, seed: int = 42):
    rng = np.random.default_rng(seed)
    matrix = random_rr_matrix(n, seed=rng, diagonal_bias=2.0)
    codes = rng.integers(0, n, size=count)
    uniforms = rng.random(count)
    return matrix, codes, uniforms


def _tracemalloc_peak(function) -> int:
    """Peak bytes allocated while running ``function`` once."""
    tracemalloc.start()
    try:
        function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def measure_disguise_kernel(repeats: int = 7) -> dict[str, dict]:
    """Op -> record for the kernel-vs-frozen-broadcast sweep."""
    from repro.backend.registry import active_backend

    backend = active_backend()
    results: dict[str, dict] = {}
    points = [(n, N_RECORDS) for n in DOMAIN_SIZES]
    if SCALE_RECORDS > N_RECORDS:
        points.append((GATE_N, SCALE_RECORDS))
    for n, count in points:
        matrix, codes, uniforms = _workload(n, count)
        probabilities = matrix.probabilities
        kernel = functools.partial(
            backend.disguise_codes, probabilities, codes, uniforms
        )
        reference = functools.partial(
            broadcast_disguise_reference, probabilities, codes, uniforms
        )

        # Equivalence guard: a speedup claim is meaningless unless the
        # kernel reproduces the frozen specification bit for bit.
        assert np.array_equal(kernel(), reference()), (
            f"disguise_codes is not bit-identical to the broadcast "
            f"reference at n={n}"
        )
        scale_repeats = repeats if count <= N_RECORDS else max(2, repeats // 3)
        seconds = _best_of(kernel, scale_repeats)
        reference_seconds = _best_of(reference, scale_repeats)
        record = {
            "params": {"n_categories": n, "n_records": count},
            "seconds": seconds,
            "reference_seconds": reference_seconds,
            "speedup": reference_seconds / seconds,
            "records_per_sec": count / seconds,
            "reference_records_per_sec": count / reference_seconds,
        }
        if n == GATE_N and count == N_RECORDS:
            # Peak-intermediate proof: the broadcast materialises the
            # (n, N) float64 intermediate; the kernel stays O(N + n^2).
            record["kernel_peak_bytes"] = _tracemalloc_peak(kernel)
            record["reference_peak_bytes"] = _tracemalloc_peak(reference)
            record["broadcast_intermediate_bytes"] = n * count * 8
        results[f"disguise[n={n},N={count}]"] = record
    return results


def measure_streaming(repeats: int = 5) -> dict[str, dict]:
    """Chunked streaming vs one-shot disguise on the same workload."""
    n = 32
    count = max(N_RECORDS, min(SCALE_RECORDS, 1_000_000))
    matrix, codes, _ = _workload(n, count, seed=7)
    mechanism = RandomizedResponse(matrix)

    def one_shot():
        return mechanism.randomize_codes(codes, seed=123)

    def streaming():
        disguiser = StreamingDisguiser(matrix, seed=123)
        return np.concatenate(
            [disguiser.disguise_chunk(chunk) for chunk in iter_chunks(codes, CHUNK_SIZE)]
        )

    assert np.array_equal(one_shot(), streaming()), (
        "chunked streaming output is not bit-identical to one-shot"
    )
    one_shot_seconds = _best_of(one_shot, repeats)
    streaming_seconds = _best_of(streaming, repeats)
    return {
        "streaming_overhead": {
            "params": {"n_categories": n, "n_records": count, "chunk_size": CHUNK_SIZE},
            "seconds": streaming_seconds,
            "reference_seconds": one_shot_seconds,
            # one-shot/streaming wall ratio: 1.0 == zero overhead; the
            # committed gate keeps the chunked path within bounded overhead.
            "speedup": one_shot_seconds / streaming_seconds,
            "records_per_sec": count / streaming_seconds,
            "reference_records_per_sec": count / one_shot_seconds,
        }
    }


def measure_warm_start() -> dict[str, dict]:
    """Warm-started online estimation vs cold per-chunk restarts.

    Deterministic iteration counts (no wall clock): the same disguised
    stream is folded chunk by chunk, once with the online estimator's warm
    start and once restarting from the uniform initial guess every chunk.
    """
    n = 16
    chunk_size = 16_384
    matrix = uniform_perturbation_matrix(n, 0.4)
    rng = np.random.default_rng(11)
    codes = rng.integers(0, n, size=200_000)
    disguised = RandomizedResponse(matrix).randomize_codes(codes, seed=13)

    warm = OnlineEstimator(matrix, method="iterative")
    for chunk in iter_chunks(disguised, chunk_size):
        warm.update(chunk)
    warm_iterations = sum(entry["n_iterations"] for entry in warm.diagnostics)

    cold_iterations = 0
    for index in range(len(warm.diagnostics)):
        cold = OnlineEstimator(matrix, method="iterative")
        prefix = disguised[: min((index + 1) * chunk_size, disguised.size)]
        cold_iterations += cold.update(prefix).n_iterations
    return {
        "warm_start_iterations": {
            "params": {
                "n_categories": n,
                "n_records": int(disguised.size),
                "chunk_size": chunk_size,
                "n_chunks": len(warm.diagnostics),
            },
            "seconds": 0.0,
            "speedup": cold_iterations / warm_iterations,
            "warm_iterations": warm_iterations,
            "cold_iterations": cold_iterations,
        }
    }


def _record(results: dict[str, dict]) -> None:
    for op, result in results.items():
        extra = {
            key: value
            for key, value in result.items()
            if key not in ("params", "seconds", "reference_seconds", "speedup")
        }
        record_bench(
            "rr_runtime",
            op,
            result["params"],
            result["seconds"],
            reference_seconds=result.get("reference_seconds"),
            speedup=result.get("speedup"),
            **extra,
        )


def _report(results: dict[str, dict]) -> None:
    for op, result in sorted(results.items()):
        line = f"{op:34s} {result['seconds'] * 1e3:9.2f} ms"
        if "reference_seconds" in result:
            line += f"  (reference {result['reference_seconds'] * 1e3:9.2f} ms)"
        line += f"  speedup {result['speedup']:5.2f}x"
        print(line)
    gate = results.get(f"disguise[n={GATE_N},N={N_RECORDS}]")
    if gate and "reference_peak_bytes" in gate:
        print(
            f"peak auxiliary bytes at n={GATE_N}, N={N_RECORDS}: "
            f"reference {gate['reference_peak_bytes'] / 1e6:.1f} MB "
            f"(broadcast intermediate "
            f"{gate['broadcast_intermediate_bytes'] / 1e6:.1f} MB), "
            f"kernel {gate['kernel_peak_bytes'] / 1e6:.1f} MB"
        )


def run_all() -> dict[str, dict]:
    results = {}
    results.update(measure_disguise_kernel())
    results.update(measure_streaming())
    results.update(measure_warm_start())
    _record(results)
    _report(results)
    return results


def test_rr_runtime_speedups():
    """The searchsorted kernel must clear the n=64, N=1e5 acceptance bar and
    the (n, N) broadcast intermediate must actually be gone."""
    results = run_all()
    gate = results[f"disguise[n={GATE_N},N={N_RECORDS}]"]
    assert gate["speedup"] >= MIN_DISGUISE_SPEEDUP, (
        f"disguise kernel speedup {gate['speedup']:.2f}x at n={GATE_N}, "
        f"N={N_RECORDS} is below the required {MIN_DISGUISE_SPEEDUP}x"
    )
    # O(N + n^2) proof: the kernel's peak must stay well below the (n, N)
    # broadcast intermediate alone (a loose 4x bound over the O(N) arrays it
    # legitimately allocates; the reference peaks above the full (n, N)).
    assert gate["kernel_peak_bytes"] < 8 * N_RECORDS * 8
    assert gate["reference_peak_bytes"] >= gate["broadcast_intermediate_bytes"]
    assert results["warm_start_iterations"]["speedup"] > 1.0


def main() -> None:
    run_all()


if __name__ == "__main__":
    main()
