"""Benchmark: the array-backend seam at the ISSUE-8 reference shape.

Every registered backend runs ``MatrixEvaluator.evaluate_batch`` over the
same ``(B=200, n=32)`` stack; the ``numpy`` backend is the reference clock
and every other backend's record carries its speedup against it.  The
``numpy-fused`` backend must clear the committed >= 1.5x bar — that is the
measured win (workspace reuse, no slogdet screen, row-bound posterior, no
fancy-index subset copies) the fused backend exists to deliver, and the
perf gate (``tools/check_perf.py --only backend``) holds it there.

Before any timing, each backend's results are checked against the reference
at its *declared* exactness (``numpy-fused`` is bit-exact; a tolerance
backend such as ``numba`` matches within the equivalence-suite rtol): a
speedup claim is meaningless if the backends compute different answers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backend.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.backend.base import EQUIVALENCE_RTOL
from repro.backend.registry import backend_names, get_backend, use_backend
from repro.data.synthetic import normal_distribution
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.matrix import random_rr_matrix, stack_matrices

N_CATEGORIES = 32
BATCH = 200
N_RECORDS = 10_000
DELTA = 0.8
#: Required numpy-fused speedup over the numpy reference.  Locally measured
#: ~1.8x at this shape; CI can relax via the environment variable so timing
#: noise on shared runners cannot flake a required gate.
MIN_BACKEND_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_BACKEND_SPEEDUP", "1.5"))


def _stack(n: int, batch: int) -> np.ndarray:
    rng = np.random.default_rng(42)
    return stack_matrices(
        [
            random_rr_matrix(n, seed=rng, diagonal_bias=float(index % 3) * 2.0)
            for index in range(batch)
        ]
    )


def _best_of(function, repeats: int = 7) -> float:
    """Best wall-clock time of ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def measure_backend_evaluation(
    n: int = N_CATEGORIES, batch: int = BATCH, repeats: int = 7
) -> dict[str, dict]:
    """Backend name -> timing record for evaluate_batch at (batch, n, n)."""
    prior = normal_distribution(n)
    evaluator = MatrixEvaluator(prior, N_RECORDS, delta=DELTA)
    stack = _stack(n, batch)

    def run():
        return evaluator.evaluate_batch(stack)

    with use_backend("numpy"):
        reference = run()
        reference_time = _best_of(run, repeats)

    results: dict[str, dict] = {
        "numpy": {
            "seconds": reference_time,
            "reference_seconds": reference_time,
            "speedup": 1.0,
        }
    }
    for name in backend_names():
        if name == "numpy":
            continue
        with use_backend(name):
            candidate = run()
            # Equivalence guard at the backend's declared exactness.
            exactness = get_backend(name).exactness["evaluate_stack"]
            for column in ("privacy", "utility", "max_posterior"):
                expected = getattr(reference, column)
                measured = getattr(candidate, column)
                if exactness == "bit-exact":
                    assert np.array_equal(measured, expected, equal_nan=True), (
                        f"{name}.{column} is not bit-exact against the reference"
                    )
                else:
                    np.testing.assert_allclose(
                        measured, expected, rtol=EQUIVALENCE_RTOL, atol=1e-12
                    )
            seconds = _best_of(run, repeats)
        results[name] = {
            "seconds": seconds,
            "reference_seconds": reference_time,
            "speedup": reference_time / seconds,
        }
    return results


def _record(results: dict[str, dict]) -> None:
    for name, result in results.items():
        record_bench(
            "backend",
            f"evaluate_batch[{name}]",
            {"n_categories": N_CATEGORIES, "batch": BATCH, "backend": name},
            result["seconds"],
            reference_seconds=result["reference_seconds"],
        )


def _report(results: dict[str, dict]) -> None:
    for name, result in sorted(results.items()):
        print(
            f"evaluate_batch (B={BATCH}, n={N_CATEGORIES}) backend={name:12s} "
            f"{result['seconds'] * 1e3:8.2f} ms  "
            f"speedup {result['speedup']:5.2f}x"
        )


def test_fused_backend_speedup():
    """numpy-fused must evaluate the (200, 32, 32) stack >= 1.5x faster than
    the numpy reference (the ISSUE-8 acceptance bar)."""
    results = measure_backend_evaluation()
    _record(results)
    _report(results)
    fused = results["numpy-fused"]["speedup"]
    assert fused >= MIN_BACKEND_SPEEDUP, (
        f"numpy-fused speedup {fused:.2f}x is below the required "
        f"{MIN_BACKEND_SPEEDUP}x"
    )


def main() -> None:
    results = measure_backend_evaluation()
    _record(results)
    _report(results)


if __name__ == "__main__":
    main()
