"""Benchmark: batched population evaluation vs the scalar hot path.

The batch-evaluation engine stacks a whole population into one ``(B, n, n)``
array and runs every quantity (posterior tensor, condition numbers, inverses,
Theorem-6 MSE) through batched NumPy linear algebra.  This benchmark measures
the end-to-end speedup over the original per-matrix scalar path at the
optimizer's production shape (n=16 categories, population 100) and asserts
the >= 5x bar the batch engine was built to clear.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch_eval.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_eval.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.core.operators import enforce_privacy_bound, enforce_privacy_bound_batch
from repro.data.synthetic import normal_distribution
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.matrix import random_rr_matrix, stack_matrices

N_CATEGORIES = 16
POPULATION = 100
N_RECORDS = 10_000
DELTA = 0.8
#: Required speedup; a typical laptop core measures ~6x.  CI sets
#: REPRO_BENCH_MIN_SPEEDUP=3 so timing noise on shared runners cannot flake a
#: required gate while still catching a real regression to the scalar path.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


def _population(n: int, size: int) -> list:
    rng = np.random.default_rng(42)
    return [
        random_rr_matrix(n, seed=rng, diagonal_bias=float(index % 3) * 2.0)
        for index in range(size)
    ]


def _best_of(function, repeats: int = 5) -> float:
    """Best wall-clock time of ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def measure_evaluation_speedup(
    n: int = N_CATEGORIES, population: int = POPULATION, repeats: int = 5
) -> dict:
    """Time scalar-loop vs batched evaluation of one whole population."""
    prior = normal_distribution(n)
    evaluator = MatrixEvaluator(prior, N_RECORDS, delta=DELTA)
    matrices = _population(n, population)
    stack = stack_matrices(matrices)

    def scalar_path():
        return [evaluator.evaluate_scalar(matrix) for matrix in matrices]

    def batch_path():
        return evaluator.evaluate_batch(stack)

    # Equivalence guard: the speedup claim is meaningless if results diverge.
    batch = batch_path()
    for index, scalar in enumerate(scalar_path()):
        assert abs(batch.privacy[index] - scalar.privacy) < 1e-12
        assert abs(batch.utility[index] - scalar.utility) < 1e-9

    scalar_time = _best_of(scalar_path, repeats)
    batch_time = _best_of(batch_path, repeats)
    return {
        "scalar_seconds": scalar_time,
        "batch_seconds": batch_time,
        "speedup": scalar_time / batch_time,
    }


def measure_repair_speedup(
    n: int = N_CATEGORIES, population: int = POPULATION, repeats: int = 5
) -> dict:
    """Time scalar-loop vs batched privacy-bound repair of one population."""
    prior = normal_distribution(n)
    rng = np.random.default_rng(7)
    matrices = [
        random_rr_matrix(n, seed=rng, diagonal_bias=float(rng.uniform(2.0, 10.0)))
        for _ in range(population)
    ]
    stack = stack_matrices(matrices)

    def scalar_path():
        return [
            enforce_privacy_bound(matrix, prior.probabilities, DELTA)
            for matrix in matrices
        ]

    def batch_path():
        return enforce_privacy_bound_batch(stack, prior.probabilities, DELTA)

    scalar_time = _best_of(scalar_path, repeats)
    batch_time = _best_of(batch_path, repeats)
    return {
        "scalar_seconds": scalar_time,
        "batch_seconds": batch_time,
        "speedup": scalar_time / batch_time,
    }


def _record(op: str, result: dict) -> None:
    record_bench(
        "batch_eval",
        op,
        {"n_categories": N_CATEGORIES, "population": POPULATION, "delta": DELTA},
        result["batch_seconds"],
        reference_seconds=result["scalar_seconds"],
    )


def test_population_evaluation_speedup():
    """The batch engine must evaluate a (16, pop=100) population >= 5x faster
    than the scalar loop (the ISSUE-1 acceptance bar)."""
    result = measure_evaluation_speedup()
    _record("evaluate_batch", result)
    print(
        f"\npopulation evaluation (n={N_CATEGORIES}, pop={POPULATION}): "
        f"scalar {result['scalar_seconds'] * 1e3:.2f} ms, "
        f"batch {result['batch_seconds'] * 1e3:.2f} ms, "
        f"speedup {result['speedup']:.1f}x"
    )
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"batch evaluation speedup {result['speedup']:.2f}x is below the "
        f"required {MIN_SPEEDUP}x"
    )


def test_bound_repair_batch_is_not_slower():
    """Batched repair must at least keep up with the scalar loop (it is
    usually several times faster; the bound here is deliberately loose
    because repair pass counts vary with the drawn matrices)."""
    result = measure_repair_speedup()
    _record("bound_repair_batch", result)
    print(
        f"\nbound repair (n={N_CATEGORIES}, pop={POPULATION}): "
        f"scalar {result['scalar_seconds'] * 1e3:.2f} ms, "
        f"batch {result['batch_seconds'] * 1e3:.2f} ms, "
        f"speedup {result['speedup']:.1f}x"
    )
    assert result["speedup"] >= 1.0


def main() -> None:
    for name, op, measure in (
        ("population evaluation", "evaluate_batch", measure_evaluation_speedup),
        ("bound repair", "bound_repair_batch", measure_repair_speedup),
    ):
        result = measure()
        _record(op, result)
        print(
            f"{name:24s} n={N_CATEGORIES} pop={POPULATION}  "
            f"scalar={result['scalar_seconds'] * 1e3:8.2f} ms  "
            f"batch={result['batch_seconds'] * 1e3:8.2f} ms  "
            f"speedup={result['speedup']:6.1f}x"
        )


if __name__ == "__main__":
    main()
