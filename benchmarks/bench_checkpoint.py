"""Benchmark: end-to-end overhead of driver checkpointing.

The stepwise driver (:mod:`repro.core.driver`) serializes the complete run
state — population/archive arrays, the optimal set Ω, termination counters
and the RNG bit-generator state — as base64 byte arrays inside a compact
JSON document, written atomically between generations.  This benchmark
measures the *end-to-end* cost of that: the same seeded OptRR run with and
without checkpointing, at the default cadence
(:data:`repro.core.driver.DEFAULT_CHECKPOINT_EVERY` = 50 generations) and at
the worst-case every-generation cadence, plus the raw cost of one
serialize + write + load + restore round-trip.

The acceptance bar is <5% end-to-end overhead at the default cadence,
recorded as a ``speedup`` ratio (plain seconds / checkpointed seconds, so
0.95 == 5% overhead) and gated by ``tools/check_perf.py`` against
``benchmarks/perf_baseline.json``.  A resume-equivalence guard re-runs the
final checkpoint and asserts the restored run reproduces the uninterrupted
front bit for bit — an overhead number for checkpoints that don't resume
correctly would be meaningless.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint.py -q -s
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.core.config import OptRRConfig
from repro.core.driver import DEFAULT_CHECKPOINT_EVERY
from repro.core.optimizer import OptRROptimizer
from repro.data.synthetic import normal_distribution
from repro.io import load_checkpoint, result_to_dict

N_CATEGORIES = 10
N_RECORDS = 10_000
DELTA = 0.8
SEED = 7
POPULATION = 40
#: Generation budget (env-tunable so CI can run a quick profile).
GENERATIONS = int(os.environ.get("REPRO_BENCH_CHECKPOINT_GENERATIONS", "200"))
#: Required plain/checkpointed wall-time ratio at the default cadence.  The
#: acceptance bar is 0.95 (<5% overhead); CI sets
#: REPRO_BENCH_MIN_CHECKPOINT_RATIO=0.90 so shared-runner timing noise cannot
#: flake the gate while a real (2x-style) regression still fails it.
MIN_RATIO = float(os.environ.get("REPRO_BENCH_MIN_CHECKPOINT_RATIO", "0.95"))


def _config() -> OptRRConfig:
    return OptRRConfig(
        population_size=POPULATION,
        archive_size=POPULATION,
        n_generations=GENERATIONS,
        delta=DELTA,
        seed=SEED,
    )


def _run(checkpoint_path: str | None, checkpoint_every: int) -> tuple[float, object]:
    prior = normal_distribution(N_CATEGORIES)
    optimizer = OptRROptimizer(prior, N_RECORDS, _config())
    start = time.perf_counter()
    result = optimizer.run(
        checkpoint_path=checkpoint_path, checkpoint_every=checkpoint_every
    )
    return time.perf_counter() - start, result


def _best_of(function, repeats: int):
    best, kept = float("inf"), None
    for _ in range(repeats):
        seconds, result = function()
        if seconds < best:
            best, kept = seconds, result
    return best, kept


def measure_overhead(checkpoint_every: int, *, repeats: int = 3) -> dict:
    """Plain vs checkpointed wall time for the same seeded run."""
    plain_seconds, plain_result = _best_of(lambda: _run(None, 1), repeats)
    with tempfile.TemporaryDirectory() as directory:
        path = str(Path(directory) / "checkpoint.json")
        checkpointed_seconds, checkpointed_result = _best_of(
            lambda: _run(path, checkpoint_every), repeats
        )
        # Resume-equivalence guard: restore the final checkpoint and compare
        # the reproduced result to the uninterrupted run bit for bit.
        document = load_checkpoint(path)
        resumed = OptRROptimizer.from_checkpoint(document)
        driver = resumed.driver()
        driver.restore(document)
        resumed_result = driver.result()
    reference = json.dumps(result_to_dict(plain_result, include_optimal_set=True),
                           sort_keys=True)
    for other in (checkpointed_result, resumed_result):
        assert reference == json.dumps(
            result_to_dict(other, include_optimal_set=True), sort_keys=True
        ), "checkpointed/resumed run diverged from the plain run"
    return {
        "checkpoint_every": checkpoint_every,
        "plain_seconds": plain_seconds,
        "checkpointed_seconds": checkpointed_seconds,
        "ratio": plain_seconds / checkpointed_seconds,
        "overhead_percent": 100.0 * (checkpointed_seconds / plain_seconds - 1.0),
    }


def measure_round_trip() -> dict:
    """Raw cost of one checkpoint document cycle (serialize + atomic write +
    load + restore) at a converged state with a well-filled Ω."""
    prior = normal_distribution(N_CATEGORIES)
    optimizer = OptRROptimizer(prior, N_RECORDS, _config())
    driver = optimizer.driver()
    steps = driver.steps()
    for _ in range(min(30, GENERATIONS)):
        next(steps)
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "checkpoint.json"
        best_write = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            driver.save_checkpoint(path)
            best_write = min(best_write, time.perf_counter() - start)
        size_bytes = path.stat().st_size
        best_load = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            document = load_checkpoint(path)
            restored = OptRROptimizer(prior, N_RECORDS, _config()).driver()
            restored.restore(document)
            best_load = min(best_load, time.perf_counter() - start)
    return {
        "write_seconds": best_write,
        "load_restore_seconds": best_load,
        "size_bytes": size_bytes,
        "omega_occupancy": driver.optimization.optimal_set.n_occupied,
    }


def _params(extra: dict) -> dict:
    return {
        "n_categories": N_CATEGORIES,
        "n_records": N_RECORDS,
        "delta": DELTA,
        "population": POPULATION,
        "generations": GENERATIONS,
        **extra,
    }


def _record_overhead(op: str, result: dict) -> None:
    record_bench(
        "checkpoint",
        op,
        _params({"checkpoint_every": result["checkpoint_every"]}),
        result["checkpointed_seconds"],
        reference_seconds=result["plain_seconds"],
        overhead_percent=result["overhead_percent"],
    )


def _report(op: str, result: dict) -> None:
    print(
        f"\n{op} (every={result['checkpoint_every']}, gens={GENERATIONS}): "
        f"plain {result['plain_seconds'] * 1e3:.0f} ms, "
        f"checkpointed {result['checkpointed_seconds'] * 1e3:.0f} ms, "
        f"overhead {result['overhead_percent']:+.1f}%"
    )


def test_checkpoint_overhead_default_cadence():
    """At the default cadence (every 50 generations) checkpointing must add
    <5% end-to-end overhead (the acceptance bar; ratio >= 0.95)."""
    result = measure_overhead(DEFAULT_CHECKPOINT_EVERY)
    _record_overhead("optrr_checkpoint_default", result)
    _report("optrr_checkpoint_default", result)
    assert result["ratio"] >= MIN_RATIO, (
        f"checkpointing overhead {result['overhead_percent']:.1f}% exceeds the "
        f"allowed {(1 / MIN_RATIO - 1) * 100:.0f}%"
    )


def test_checkpoint_overhead_every_generation():
    """Worst case: a checkpoint after *every* generation.  Recorded for the
    trajectory (no gate — this cadence is for kill-resume tests, not
    production runs)."""
    result = measure_overhead(1, repeats=2)
    _record_overhead("optrr_checkpoint_every1", result)
    _report("optrr_checkpoint_every1", result)


def test_checkpoint_round_trip_cost():
    """One full checkpoint cycle stays in the low-millisecond range."""
    result = measure_round_trip()
    record_bench(
        "checkpoint",
        "checkpoint_round_trip",
        _params({"omega_occupancy": result["omega_occupancy"]}),
        result["write_seconds"],
        size_bytes=result["size_bytes"],
        load_restore_seconds=result["load_restore_seconds"],
    )
    print(
        f"\ncheckpoint_round_trip: write {result['write_seconds'] * 1e3:.2f} ms, "
        f"load+restore {result['load_restore_seconds'] * 1e3:.2f} ms, "
        f"{result['size_bytes'] / 1e3:.0f} KB, Ω occupancy "
        f"{result['omega_occupancy']}"
    )
    assert np.isfinite(result["write_seconds"])


def main() -> None:
    test_checkpoint_overhead_default_cadence()
    test_checkpoint_overhead_every_generation()
    test_checkpoint_round_trip_cost()


if __name__ == "__main__":
    main()
