"""Benchmark: pipeline determinism and throughput across workers and cache.

The downstream-mining pipeline fans ``(scheme, seed, miner)`` cells out over
a process pool with a content-addressed cell cache.  Its acceptance property
is **byte-determinism**: the same spec must produce byte-identical aggregate
documents serially, in parallel, and from a warm cache.  This benchmark
asserts that everywhere, measures the parallel speedup on multi-core hosts
(the cells are independent CPU-bound mining jobs), and measures the
cache-replay speedup, which does not depend on core count.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pipeline.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -q -s
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.pipeline import plan_pipeline, run_pipeline
from repro.pipeline import runner as pipeline_runner

#: The pipeline workload: four disguise strengths, three miners, two seeds.
DATA = "adult:education"
SCHEMES = ("warner:0.9", "warner:0.7", "warner:0.45", "warner:0.2")
MINERS = ("tree", "rules", "distribution")
N_SEEDS = 2
N_RECORDS = 12_000
N_JOBS = 4

#: Required parallel speedup at 4 workers on a >= 4-core host; scaled down
#: automatically on smaller hosts (a pool cannot beat physics).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spec():
    return plan_pipeline(
        DATA, schemes=list(SCHEMES), miners=list(MINERS),
        seeds=range(N_SEEDS), n_records=N_RECORDS,
    )


def measure_pipeline_scaling() -> dict:
    """Time a cold serial pipeline against a cold 4-worker pipeline."""
    spec = _spec()

    start = time.perf_counter()
    serial = run_pipeline(spec, n_jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_pipeline(spec, n_jobs=N_JOBS)
    parallel_seconds = time.perf_counter() - start

    # The speedup claim is meaningless unless both runs agree byte-for-byte.
    assert parallel.aggregate_json() == serial.aggregate_json()
    return {
        "n_cells": len(spec.tasks()),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
    }


def _record_scaling(result: dict) -> None:
    record_bench(
        "pipeline",
        "parallel_workers",
        {"schemes": len(SCHEMES), "miners": len(MINERS), "seeds": N_SEEDS, "jobs": N_JOBS},
        result["parallel_seconds"],
        reference_seconds=result["serial_seconds"],
    )


def _record_replay(result: dict) -> None:
    record_bench(
        "pipeline",
        "cache_replay",
        {"schemes": len(SCHEMES), "miners": len(MINERS), "seeds": N_SEEDS},
        result["warm_seconds"],
        reference_seconds=result["cold_seconds"],
    )


def measure_cache_replay() -> dict:
    """Time a cold pipeline against a fully-cached replay."""
    spec = _spec()
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = run_pipeline(spec, n_jobs=1, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_pipeline(spec, n_jobs=1, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start

    assert warm.n_cache_hits == len(spec.tasks())
    assert warm.aggregate_json() == cold.aggregate_json()
    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
    }


class _NoStoreMemo(dict):
    """Memo stand-in that never retains entries (disables the disguise memo)."""

    def __setitem__(self, key, value):  # pragma: no cover - trivial
        pass


def measure_disguise_memo() -> dict:
    """Time a serial run with the per-worker disguise memo disabled vs enabled.

    The grid shares one disguise stream per (scheme, seed) across all miners,
    so the memo skips ``(miners - 1) / miners`` of the disguise work.  Both
    runs must stay byte-identical — the memo is a pure lookup keyed on the
    full disguise inputs.
    """
    spec = _spec()
    original = pipeline_runner._DISGUISE_MEMO
    try:
        pipeline_runner._DISGUISE_MEMO = _NoStoreMemo()
        start = time.perf_counter()
        unmemoized = run_pipeline(spec, n_jobs=1)
        unmemoized_seconds = time.perf_counter() - start

        memo: dict = {}
        pipeline_runner._DISGUISE_MEMO = memo
        start = time.perf_counter()
        memoized = run_pipeline(spec, n_jobs=1)
        memoized_seconds = time.perf_counter() - start
    finally:
        pipeline_runner._DISGUISE_MEMO = original

    assert memoized.aggregate_json() == unmemoized.aggregate_json()
    n_cells = len(spec.tasks())
    unique = len(SCHEMES) * N_SEEDS
    assert len(memo) == unique  # one memo entry per distinct disguise stream
    return {
        "n_cells": n_cells,
        "unmemoized_seconds": unmemoized_seconds,
        "memoized_seconds": memoized_seconds,
        "speedup": unmemoized_seconds / memoized_seconds,
        "redundant_disguises_skipped": n_cells - unique,
    }


def _record_memo(result: dict) -> None:
    record_bench(
        "pipeline",
        "disguise_memo",
        {"schemes": len(SCHEMES), "miners": len(MINERS), "seeds": N_SEEDS},
        result["memoized_seconds"],
        reference_seconds=result["unmemoized_seconds"],
        redundant_disguises_skipped=result["redundant_disguises_skipped"],
    )


def test_pipeline_disguise_memo_saves_redundant_work():
    """The per-worker memo must skip every redundant disguise while keeping
    the aggregate byte-identical (asserted inside the measurement)."""
    result = measure_disguise_memo()
    _record_memo(result)
    print(
        f"\npipeline disguise memo: unmemoized {result['unmemoized_seconds']:.2f} s, "
        f"memoized {result['memoized_seconds']:.2f} s, "
        f"{result['redundant_disguises_skipped']} redundant disguises skipped"
    )
    assert result["redundant_disguises_skipped"] == len(SCHEMES) * N_SEEDS * (len(MINERS) - 1)


def test_pipeline_byte_determinism_across_jobs_and_cache():
    """The acceptance smoke: byte-identical aggregates across worker counts
    and warm/cold cache states (asserted inside both measurements)."""
    scaling_free_spec = _spec()
    serial = run_pipeline(scaling_free_spec, n_jobs=1)
    parallel = run_pipeline(scaling_free_spec, n_jobs=2)
    assert parallel.aggregate_json() == serial.aggregate_json()
    replay = measure_cache_replay()
    _record_replay(replay)
    print(
        f"\npipeline cache replay: cold {replay['cold_seconds']:.2f} s, "
        f"warm {replay['warm_seconds']:.2f} s, speedup {replay['speedup']:.1f}x"
    )
    assert replay["speedup"] >= 3.0


def test_pipeline_parallel_speedup():
    """A cold 4-worker pipeline must beat the serial run on multi-core hosts
    (bar scaled by available cores, skipped on single-core ones)."""
    cores = _usable_cores()
    if cores < 2:
        pytest.skip(f"host exposes {cores} usable core(s); parallel speedup not measurable")
    result = measure_pipeline_scaling()
    _record_scaling(result)
    print(
        f"\npipeline scaling ({len(SCHEMES)} schemes x {N_SEEDS} seeds x "
        f"{len(MINERS)} miners = {result['n_cells']} cells): "
        f"serial {result['serial_seconds']:.2f} s, {N_JOBS} workers "
        f"{result['parallel_seconds']:.2f} s, speedup {result['speedup']:.2f}x"
    )
    required = MIN_SPEEDUP * min(1.0, (cores / float(N_JOBS)))
    assert result["speedup"] >= required, (
        f"pipeline speedup {result['speedup']:.2f}x at {N_JOBS} workers on "
        f"{cores} cores is below the required {required:.2f}x"
    )


def main() -> None:
    scaling = measure_pipeline_scaling()
    _record_scaling(scaling)
    print(
        f"pipeline scaling   cells={scaling['n_cells']}  "
        f"serial={scaling['serial_seconds']:6.2f} s  "
        f"jobs={N_JOBS}: {scaling['parallel_seconds']:6.2f} s  "
        f"speedup={scaling['speedup']:5.2f}x  "
        f"(usable cores: {_usable_cores()})"
    )
    replay = measure_cache_replay()
    _record_replay(replay)
    print(
        f"pipeline cache     cold={replay['cold_seconds']:6.2f} s  "
        f"warm={replay['warm_seconds']:6.2f} s  speedup={replay['speedup']:5.1f}x"
    )
    memo = measure_disguise_memo()
    _record_memo(memo)
    print(
        f"pipeline memo      unmemoized={memo['unmemoized_seconds']:6.2f} s  "
        f"memoized={memo['memoized_seconds']:6.2f} s  "
        f"skipped={memo['redundant_disguises_skipped']} redundant disguises"
    )


if __name__ == "__main__":
    main()
