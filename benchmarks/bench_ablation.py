"""Ablation benchmarks for the design choices discussed in Section V.

Two design decisions of the paper are made checkable here:

* **EMOO algorithm choice** — the paper selects SPEA2 (with its own
  modifications) over alternatives, and argues that collapsing the two
  objectives into one weighted sum is inadequate.  The ablation runs the same
  RR-matrix problem through the OptRR driver (SPEA2 + Ω), plain NSGA-II and a
  weighted-sum GA with the same evaluation budget and compares the fronts via
  hypervolume and front size.
* **The optimal set Ω** — the paper keeps a large privacy-indexed archive of
  good matrices evicted from the bounded SPEA2 archive.  The ablation runs
  the optimizer with and without Ω (by shrinking Ω to a single slot) and
  compares the size and coverage of the resulting fronts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.front import ParetoFront
from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.problem import RRMatrixProblem
from repro.data.synthetic import normal_distribution
from repro.emoo.indicators import hypervolume_2d
from repro.emoo.nsga2 import NSGA2, NSGA2Settings
from repro.emoo.termination import MaxGenerations
from repro.emoo.weighted_sum import WeightedSumGA, WeightedSumSettings
from repro.experiments.base import default_generations, default_population

N_RECORDS = 10_000
DELTA = 0.8


def _workload():
    return normal_distribution(10)


def _reference_point(fronts: list[np.ndarray]) -> tuple[float, float]:
    stacked = np.vstack(fronts)
    return (float(stacked[:, 0].max()) + 1e-6, float(stacked[:, 1].max()) * 1.1 + 1e-12)


def test_emoo_algorithm_ablation(run_once):
    """OptRR (SPEA2 + Ω) vs NSGA-II vs weighted-sum GA on the same problem."""
    prior = _workload()
    generations = max(50, default_generations() // 4)
    population = default_population()

    def run_all():
        config = OptRRConfig(
            population_size=population,
            archive_size=population,
            n_generations=generations,
            delta=DELTA,
            seed=0,
        )
        optrr_result = OptRROptimizer(prior, N_RECORDS, config).run()
        optrr_front = ParetoFront.from_result("optrr", optrr_result)

        nsga_problem = RRMatrixProblem(prior, N_RECORDS, delta=DELTA)
        nsga_result = NSGA2(
            nsga_problem,
            NSGA2Settings(population_size=population),
            termination=MaxGenerations(generations),
            seed=0,
        ).run()
        nsga_front = ParetoFront.from_points(
            "nsga2",
            [
                (ind.metadata["privacy"], ind.metadata["utility"])
                for ind in nsga_result.front
                if ind.feasible and np.isfinite(ind.metadata["utility"])
            ],
        )

        ws_problem = RRMatrixProblem(prior, N_RECORDS, delta=DELTA)
        ws_result = WeightedSumGA(
            ws_problem,
            WeightedSumSettings(
                population_size=population,
                n_generations=max(10, generations // 10),
                n_weights=11,
            ),
            seed=0,
        ).run()
        ws_front = ParetoFront.from_points(
            "weighted-sum",
            [
                (ind.metadata["privacy"], ind.metadata["utility"])
                for ind in ws_result.best_per_weight
                if ind.feasible and np.isfinite(ind.metadata["utility"])
            ],
        )
        return optrr_front, nsga_front, ws_front

    optrr_front, nsga_front, ws_front = run_once(
        run_all,
        op="emoo_algorithm_ablation",
        params={"population": population, "generations": generations},
    )

    arrays = {
        name: front.as_minimization_array()
        for name, front in (("optrr", optrr_front), ("nsga2", nsga_front),
                            ("weighted-sum", ws_front))
        if not front.is_empty
    }
    reference = _reference_point(list(arrays.values()))
    hypervolumes = {name: hypervolume_2d(array, reference) for name, array in arrays.items()}

    print()
    print("  EMOO ablation (same evaluation budget per algorithm):")
    for name, front in (("optrr", optrr_front), ("nsga2", nsga_front), ("weighted-sum", ws_front)):
        if front.is_empty:
            print(f"    {name:14s}: empty front")
            continue
        low, high = front.privacy_range
        print(f"    {name:14s}: {len(front):4d} points, privacy range "
              f"[{low:.3f}, {high:.3f}], hypervolume {hypervolumes[name]:.3e}")

    # The paper's design choice: the SPEA2-based OptRR front should dominate
    # the weighted-sum front (more points, at least comparable hypervolume).
    assert len(optrr_front) > len(ws_front)
    assert hypervolumes["optrr"] >= hypervolumes.get("weighted-sum", 0.0) * 0.95
    # NSGA-II is a credible alternative; OptRR should at least be comparable.
    assert hypervolumes["optrr"] >= hypervolumes.get("nsga2", 0.0) * 0.8


def test_optimal_set_ablation(run_once):
    """The Ω optimal set enlarges the recovered front at negligible cost."""
    prior = _workload()
    generations = max(50, default_generations() // 4)
    population = default_population()

    def run_both():
        with_omega = OptRROptimizer(
            prior,
            N_RECORDS,
            OptRRConfig(
                population_size=population,
                archive_size=population,
                optimal_set_size=1000,
                n_generations=generations,
                delta=DELTA,
                seed=1,
            ),
        ).run()
        without_omega = OptRROptimizer(
            prior,
            N_RECORDS,
            OptRRConfig(
                population_size=population,
                archive_size=population,
                optimal_set_size=1,  # effectively disables the privacy-indexed store
                n_generations=generations,
                delta=DELTA,
                seed=1,
            ),
        ).run()
        return with_omega, without_omega

    with_omega, without_omega = run_once(
        run_both,
        op="optimal_set_ablation",
        params={"population": population, "generations": generations},
    )
    front_with = ParetoFront.from_result("with-omega", with_omega)
    front_without = ParetoFront.from_result("without-omega", without_omega)

    print()
    print("  Optimal-set (Ω) ablation:")
    for name, front in (("with Ω (1000 slots)", front_with), ("without Ω (1 slot)", front_without)):
        low, high = front.privacy_range
        print(f"    {name:22s}: {len(front):4d} front points, privacy range "
              f"[{low:.3f}, {high:.3f}]")

    # Ω's purpose is breadth: it must recover at least as many distinct
    # trade-off points as the archive alone.
    assert len(front_with) >= len(front_without)
