"""Benchmark: campaign scaling across worker processes and cache replay.

The campaign orchestrator runs a grid of ``experiments x seeds`` through a
process pool.  The tasks are independent CPU-bound optimizations, so on a
multi-core host the campaign must scale: this benchmark times the same cold
campaign serially and with ``--jobs 4`` and asserts the wall-clock speedup
bar (>= 2x at 4 workers by default).  On hosts with fewer cores the speedup
assertion is skipped — a process pool cannot beat physics — but the
determinism guarantee (byte-identical aggregates) is asserted everywhere,
as is the cache-replay speedup, which does not depend on core count.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_campaign.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign.py -q -s
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.experiments.campaign import plan_campaign, run_campaign

#: The campaign workload: two front-comparison experiments, four seeds each.
EXPERIMENTS = ("fig4a", "fig5a")
N_SEEDS = 4
BUDGET = {"n_generations": 60, "population_size": 24}
N_JOBS = 4

#: Required parallel speedup at 4 workers on a >= 4-core host.  CI and
#: laptops with fewer usable cores scale the bar down automatically (a pool
#: of 4 workers on 2 cores can at best approach 2x).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_campaign_scaling() -> dict:
    """Time a cold serial campaign against a cold 4-worker campaign."""
    spec = plan_campaign(EXPERIMENTS, range(N_SEEDS), BUDGET)

    start = time.perf_counter()
    serial = run_campaign(spec, n_jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_campaign(spec, n_jobs=N_JOBS)
    parallel_seconds = time.perf_counter() - start

    # The speedup claim is meaningless unless both runs agree byte-for-byte.
    assert parallel.aggregate_json() == serial.aggregate_json()
    return {
        "n_tasks": len(spec.tasks()),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
    }


def _record_scaling(result: dict) -> None:
    record_bench(
        "campaign",
        "parallel_workers",
        {"experiments": len(EXPERIMENTS), "seeds": N_SEEDS, "jobs": N_JOBS},
        result["parallel_seconds"],
        reference_seconds=result["serial_seconds"],
    )


def _record_replay(result: dict) -> None:
    record_bench(
        "campaign",
        "cache_replay",
        {"experiments": len(EXPERIMENTS), "seeds": N_SEEDS},
        result["warm_seconds"],
        reference_seconds=result["cold_seconds"],
    )


def measure_cache_replay() -> dict:
    """Time a cold campaign against a fully-cached replay."""
    spec = plan_campaign(EXPERIMENTS, range(N_SEEDS), BUDGET)
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = run_campaign(spec, n_jobs=1, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_campaign(spec, n_jobs=1, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start

    assert warm.n_cache_hits == len(spec.tasks())
    assert warm.aggregate_json() == cold.aggregate_json()
    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
    }


def test_campaign_parallel_speedup():
    """A cold 4-worker campaign must beat the serial run >= 2x on >= 4 usable
    cores (bar scaled down for smaller hosts, skipped on single-core ones)."""
    cores = _usable_cores()
    if cores < 2:
        # Skip before the minutes-scale measurement, not after.
        pytest.skip(f"host exposes {cores} usable core(s); parallel speedup not measurable")
    result = measure_campaign_scaling()
    _record_scaling(result)
    print(
        f"\ncampaign scaling ({len(EXPERIMENTS)} experiments x {N_SEEDS} seeds = "
        f"{result['n_tasks']} tasks): serial {result['serial_seconds']:.2f} s, "
        f"{N_JOBS} workers {result['parallel_seconds']:.2f} s, "
        f"speedup {result['speedup']:.2f}x"
    )
    required = MIN_SPEEDUP * min(1.0, (cores / float(N_JOBS)))
    assert result["speedup"] >= required, (
        f"campaign speedup {result['speedup']:.2f}x at {N_JOBS} workers on "
        f"{cores} cores is below the required {required:.2f}x"
    )


def test_campaign_cache_replay_speedup():
    """A fully-cached replay must be at least 5x faster than the cold run
    (it does no optimization work at all, only JSON loads)."""
    result = measure_cache_replay()
    _record_replay(result)
    print(
        f"\ncampaign cache replay: cold {result['cold_seconds']:.2f} s, "
        f"warm {result['warm_seconds']:.2f} s, speedup {result['speedup']:.1f}x"
    )
    assert result["speedup"] >= 5.0


def main() -> None:
    scaling = measure_campaign_scaling()
    _record_scaling(scaling)
    print(
        f"campaign scaling   tasks={scaling['n_tasks']}  "
        f"serial={scaling['serial_seconds']:6.2f} s  "
        f"jobs={N_JOBS}: {scaling['parallel_seconds']:6.2f} s  "
        f"speedup={scaling['speedup']:5.2f}x  "
        f"(usable cores: {_usable_cores()})"
    )
    replay = measure_cache_replay()
    _record_replay(replay)
    print(
        f"campaign cache     cold={replay['cold_seconds']:6.2f} s  "
        f"warm={replay['warm_seconds']:6.2f} s  speedup={replay['speedup']:5.1f}x"
    )


if __name__ == "__main__":
    main()
