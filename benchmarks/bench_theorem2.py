"""Benchmark harness for Theorem 2: Warner, UP and FRAPP are the same family.

The experiment sweeps the three parametric schemes over matched parameter
grids and verifies that (a) each UP / FRAPP matrix equals the Warner matrix
with the corresponding retention probability, and (b) the resulting
(privacy, utility) solution sets are identical.
"""

from __future__ import annotations

from benchmarks.conftest import report_experiment
from repro.experiments.runner import run_experiment


def test_theorem2_scheme_equivalence(run_once):
    result = run_once(run_experiment, "thm2", seed=0)
    report_experiment(result, plot=False)
    assert result.reproduced
    assert result.metrics["max_matrix_gap"] < 1e-9
    assert result.metrics["max_front_gap"] < 1e-9
