"""Benchmark harness for Fact 1: the size of the discretised search space.

The paper motivates the evolutionary search with the observation that, for
n = 10 categories and grid resolution d = 100, there are about 1.98e126
candidate RR matrices.  The benchmark recomputes the count and also times the
combinatorial evaluation across a sweep of domain sizes.
"""

from __future__ import annotations

from benchmarks.conftest import record_benchmark_stats, report_experiment
from repro.core.search_space import log10_rr_matrix_combinations
from repro.experiments.runner import run_experiment


def test_fact1_search_space_size(run_once):
    result = run_once(run_experiment, "fact1", seed=0)
    report_experiment(result, plot=False)
    assert result.reproduced
    # n=10, d=100 -> ~1.98e126 (log10 ~ 126.297).
    assert abs(result.metrics["log10_combinations"] - 126.297) < 0.5


def test_fact1_growth_sweep(benchmark):
    """Search-space size grows explosively with the number of categories."""

    def sweep():
        return [log10_rr_matrix_combinations(n, 100) for n in range(2, 16)]

    exponents = benchmark(sweep)
    record_benchmark_stats(
        benchmark, "fact1", "search_space_growth_sweep", {"n_max": 15, "resolution": 100}
    )
    print()
    print("  n (categories) -> log10(#RR matrices) at d=100")
    for n, exponent in zip(range(2, 16), exponents):
        print(f"  {n:3d} -> 10^{exponent:.1f}")
    # Monotone, super-linear growth.
    assert all(b > a for a, b in zip(exponents, exponents[1:]))
    assert exponents[-1] > 200
