"""Benchmark harness for Figure 5: gamma / uniform / Adult workloads and the
iterative-estimator check.

* 5(a) gamma(1.0, 2.0), delta = 0.75 — OptRR has roughly twice Warner's
  privacy range and lower MSE at high privacy;
* 5(b) discrete uniform, delta = 0.75 — OptRR matches Warner's privacy range
  (the one case where the ranges coincide) but still finds better matrices;
* 5(c) Adult first attribute (age), delta = 0.75 — OptRR consistently
  outperforms Warner (run on the synthetic Adult-like data, see DESIGN.md);
* 5(d) gamma workload with utility re-measured by actually disguising data
  and running the iterative estimator (Eq. 3) — OptRR still wins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report_experiment
from repro.experiments.runner import run_experiment


@pytest.mark.parametrize("experiment_id", ["fig5a", "fig5c"])
def test_figure5_skewed_priors(run_once, experiment_id: str):
    """Gamma and Adult workloads: wider privacy range plus utility wins."""
    result = run_once(run_experiment, experiment_id, seed=0)
    report_experiment(result)
    comparison = result.comparison
    assert comparison is not None
    assert comparison.extra_privacy_range > -5e-3
    probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
    assert probes == 0 or comparison.candidate_wins + comparison.ties >= comparison.baseline_wins
    assert result.reproduced


def test_figure5b_uniform_prior(run_once):
    """Uniform prior: the privacy ranges of OptRR and Warner coincide."""
    result = run_once(run_experiment, "fig5b", seed=0)
    report_experiment(result)
    comparison = result.comparison
    assert comparison is not None
    # The ranges should be nearly identical (paper: "the same privacy range").
    assert abs(comparison.extra_privacy_range) < 0.05
    probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
    assert probes == 0 or comparison.candidate_wins + comparison.ties >= comparison.baseline_wins
    assert result.reproduced


def test_figure5d_iterative_estimator(run_once):
    """Iterative-estimator re-measurement: OptRR still outperforms Warner."""
    result = run_once(run_experiment, "fig5d", seed=0)
    report_experiment(result)
    comparison = result.comparison
    assert comparison is not None
    # Empirical MSE is noisy; the headline claims are the wider (or equal)
    # privacy range and not losing the majority of utility probes.
    assert comparison.extra_privacy_range > -0.05
    probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
    assert probes == 0 or comparison.candidate_wins + comparison.ties >= comparison.baseline_wins
    assert result.reproduced
