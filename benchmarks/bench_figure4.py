"""Benchmark harness for Figure 4: normal-distribution workload, four deltas.

The paper's Figure 4 plots the Pareto fronts of the Warner scheme and OptRR
for a 10-category discretised-normal prior (10 000 records) under the
worst-case privacy bounds delta = 0.6, 0.7, 0.8 and 0.9.  The qualitative
claims checked here:

* the delta-feasible Warner front cannot reach low privacy values, while the
  OptRR front extends well below it (paper: Warner stops around
  0.6 / 0.5 / 0.4 / 0.22, OptRR reaches about 0.4 / 0.3 / 0.22 / 0.17);
* within the shared privacy range OptRR's MSE is at or below Warner's.

Absolute MSE values are not expected to match the paper's axes exactly (they
depend on the random seed and on the reduced generation budget); the printed
summary records the measured numbers next to the paper's.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report_experiment
from repro.experiments.runner import run_experiment


@pytest.mark.parametrize(
    "experiment_id, delta",
    [("fig4a", 0.6), ("fig4b", 0.7), ("fig4c", 0.8), ("fig4d", 0.9)],
)
def test_figure4(run_once, experiment_id: str, delta: float):
    """Regenerate one panel of Figure 4 and check the paper's claim."""
    result = run_once(run_experiment, experiment_id, seed=0)
    report_experiment(result)
    comparison = result.comparison
    assert comparison is not None
    # Shape check 1: OptRR extends the privacy range (strictly, except for
    # tiny budgets where equality is tolerated).
    assert comparison.extra_privacy_range > -5e-3, (
        f"{experiment_id}: OptRR should reach at least as low a privacy value "
        f"as the Warner scheme (got extra range {comparison.extra_privacy_range:.4f})"
    )
    # Shape check 2: OptRR does not lose the utility comparison in the shared
    # privacy range.
    probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
    assert probes == 0 or comparison.candidate_wins + comparison.ties >= comparison.baseline_wins, (
        f"{experiment_id}: OptRR should match or beat Warner at most probed "
        f"privacy levels (wins {comparison.candidate_wins}, losses {comparison.baseline_wins})"
    )
    # Record the overall verdict computed by the experiment itself.
    assert result.reproduced, f"{experiment_id} diverged from the paper's qualitative claim"
