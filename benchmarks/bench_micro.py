"""Micro-benchmarks of the primitives the optimizer executes millions of times.

These are not paper figures; they document the cost model that makes the
evolutionary search practical (the paper notes that the closed-form utility
is what allows fast per-generation evaluation, unlike the iterative
estimator) and guard against performance regressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_benchmark_stats

from repro.core.operators import (
    column_crossover,
    enforce_privacy_bound,
    proportional_column_mutation,
)
from repro.data.synthetic import normal_distribution
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.estimation import InversionEstimator, IterativeEstimator
from repro.rr.matrix import random_rr_matrix
from repro.rr.randomize import RandomizedResponse
from repro.rr.schemes import warner_matrix

N_CATEGORIES = 10
N_RECORDS = 10_000


@pytest.fixture(scope="module")
def prior():
    return normal_distribution(N_CATEGORIES)


@pytest.fixture(scope="module")
def matrix():
    return warner_matrix(N_CATEGORIES, 0.7)


def test_matrix_evaluation_speed(benchmark, prior):
    """Privacy + utility evaluation of one candidate matrix (the inner loop
    of the optimizer)."""
    evaluator = MatrixEvaluator(prior, N_RECORDS, delta=0.8)
    candidates = [random_rr_matrix(N_CATEGORIES, seed=i) for i in range(64)]
    index = iter(range(10**9))

    def evaluate():
        return evaluator.evaluate(candidates[next(index) % len(candidates)])

    evaluation = benchmark(evaluate)
    record_benchmark_stats(
        benchmark, "micro", "matrix_evaluation",
        {"n_categories": N_CATEGORIES, "n_records": N_RECORDS},
    )
    assert 0.0 <= evaluation.privacy <= 1.0


def test_crossover_speed(benchmark):
    rng = np.random.default_rng(0)
    a = random_rr_matrix(N_CATEGORIES, seed=1)
    b = random_rr_matrix(N_CATEGORIES, seed=2)
    child_a, _child_b = benchmark(column_crossover, a, b, rng)
    record_benchmark_stats(benchmark, "micro", "column_crossover", {"n_categories": N_CATEGORIES})
    assert child_a.n_categories == N_CATEGORIES


def test_mutation_speed(benchmark):
    rng = np.random.default_rng(0)
    matrix = random_rr_matrix(N_CATEGORIES, seed=3)
    mutated = benchmark(proportional_column_mutation, matrix, rng)
    record_benchmark_stats(benchmark, "micro", "column_mutation", {"n_categories": N_CATEGORIES})
    assert mutated.n_categories == N_CATEGORIES


def test_bound_repair_speed(benchmark, prior):
    matrix = random_rr_matrix(N_CATEGORIES, seed=4, diagonal_bias=20.0)
    repaired = benchmark(enforce_privacy_bound, matrix, prior.probabilities, 0.7)
    record_benchmark_stats(benchmark, "micro", "bound_repair", {"n_categories": N_CATEGORIES})
    assert repaired.n_categories == N_CATEGORIES


def test_randomization_speed(benchmark, prior, matrix):
    """Disguising 10 000 records (the paper's dataset size)."""
    mechanism = RandomizedResponse(matrix)
    codes = prior.sample(N_RECORDS, seed=5)
    disguised = benchmark(mechanism.randomize_codes, codes, 6)
    record_benchmark_stats(benchmark, "micro", "randomization", {"n_records": N_RECORDS})
    assert disguised.shape == codes.shape


def test_inversion_estimation_speed(benchmark, prior, matrix):
    """The closed-form (inversion) estimator used inside the optimizer."""
    codes = prior.sample(N_RECORDS, seed=7)
    disguised = RandomizedResponse(matrix).randomize_codes(codes, seed=8)
    estimator = InversionEstimator()
    estimate = benchmark(estimator.estimate_from_codes, disguised, matrix)
    record_benchmark_stats(benchmark, "micro", "inversion_estimation", {"n_records": N_RECORDS})
    assert estimate.probabilities.sum() == pytest.approx(1.0)


def test_iterative_estimation_speed(benchmark, prior, matrix):
    """The iterative estimator (Eq. 3) — the slower alternative the paper
    avoids inside the optimization loop."""
    codes = prior.sample(N_RECORDS, seed=9)
    disguised = RandomizedResponse(matrix).randomize_codes(codes, seed=10)
    estimator = IterativeEstimator(max_iterations=500, tolerance=1e-8)
    estimate = benchmark(estimator.estimate_from_codes, disguised, matrix)
    record_benchmark_stats(benchmark, "micro", "iterative_estimation", {"n_records": N_RECORDS})
    assert estimate.probabilities.sum() == pytest.approx(1.0)
