"""Benchmark: full-evaluation savings of the multi-fidelity scheduler.

The fidelity scheduler (:mod:`repro.emoo.fidelity`) evaluates each offspring
generation at a cheap subsampled fidelity and promotes only the
rank/crowding survivors to full fidelity before selection and archive
offers.  This benchmark runs the same seeded OptRR workload twice — once at
the exact single-fidelity path (``low_fidelity_fraction=1.0``) and once
fidelity-scheduled — and records:

- ``full_eval_reduction``: baseline full-fidelity evaluations divided by the
  scheduled run's full-fidelity evaluations.  The acceptance bar is >= 5x
  (the gated ``speedup`` field).
- ``hypervolume_parity``: hypervolume of the scheduled front divided by the
  baseline front's, both measured against a common reference point built
  from the union of the two fronts.  Parity within noise (>= MIN_PARITY)
  proves the cheap evaluations did not degrade front quality.

Both are gated by ``tools/check_perf.py`` against
``benchmarks/perf_baseline.json``.  Wall time is recorded for the
trajectory but not gated: at the benchmark's small ``n_records`` the
closed-form evaluation is matrix-bound, so the win is in *evaluation
budget*, which is what matters when a full-fidelity evaluation is
expensive.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fidelity.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_fidelity.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.data.synthetic import normal_distribution
from repro.emoo.indicators import finite_front_hypervolume_2d

N_CATEGORIES = 10
N_RECORDS = 10_000
DELTA = 0.8
SEED = 7
POPULATION = 40
BASELINE_SEEDS = 101
LOW_FIDELITY_FRACTION = 0.2
PROMOTION_FRACTION = 0.15
#: Generation budget (env-tunable so CI can run a quick profile).  The
#: promotion arithmetic needs >= 80 generations for the setup-phase full
#: evaluations (population + baseline seeds, always full fidelity) to
#: amortize below the 5x bar.
GENERATIONS = int(os.environ.get("REPRO_BENCH_FIDELITY_GENERATIONS", "200"))
#: Required full-evaluation reduction (the acceptance bar from the issue).
MIN_REDUCTION = float(os.environ.get("REPRO_BENCH_MIN_FIDELITY_REDUCTION", "5.0"))
#: Required scheduled/baseline hypervolume ratio.  Locally the scheduled
#: front matches or beats the baseline (parity ~1.00); the bar leaves room
#: for seed-level noise while still failing a real quality regression.
MIN_PARITY = float(os.environ.get("REPRO_BENCH_MIN_FIDELITY_PARITY", "0.95"))


def _config(low_fidelity_fraction: float) -> OptRRConfig:
    return OptRRConfig(
        population_size=POPULATION,
        archive_size=POPULATION,
        n_generations=GENERATIONS,
        delta=DELTA,
        baseline_seeds=BASELINE_SEEDS,
        low_fidelity_fraction=low_fidelity_fraction,
        promotion_fraction=PROMOTION_FRACTION,
        seed=SEED,
    )


def _run(low_fidelity_fraction: float) -> dict:
    prior = normal_distribution(N_CATEGORIES)
    optimizer = OptRROptimizer(prior, N_RECORDS, _config(low_fidelity_fraction))
    driver = optimizer.driver()
    start = time.perf_counter()
    last = None
    for snapshot in driver.steps():
        last = snapshot
    seconds = time.perf_counter() - start
    result = driver.result()
    return {
        "seconds": seconds,
        "front": np.array(
            [(-point.privacy, point.utility) for point in result], dtype=np.float64
        ),
        "n_full": last.n_full_evaluations,
        "n_low": last.n_low_evaluations,
        "front_size": len(result),
    }


def _parity(baseline_front: np.ndarray, scheduled_front: np.ndarray) -> tuple[float, float, float]:
    """Hypervolumes against a common reference from the union of both fronts."""
    union = np.vstack([baseline_front, scheduled_front])
    union = union[np.all(np.isfinite(union), axis=1)]
    nadir = union.max(axis=0)
    reference = (float(nadir[0] + 1e-6), float(nadir[1] * 1.01 + 1e-12))
    baseline_hv = finite_front_hypervolume_2d(baseline_front, reference)
    scheduled_hv = finite_front_hypervolume_2d(scheduled_front, reference)
    assert baseline_hv is not None and baseline_hv > 0.0, "degenerate baseline front"
    assert scheduled_hv is not None, "scheduled run produced no finite front"
    return baseline_hv, scheduled_hv, scheduled_hv / baseline_hv


def measure_fidelity() -> dict:
    """Same seeded workload, exact path vs fidelity-scheduled path."""
    baseline = _run(1.0)
    scheduled = _run(LOW_FIDELITY_FRACTION)
    assert baseline["n_low"] == 0, "exact path must not emit low-fidelity evaluations"
    assert scheduled["n_low"] > 0, "scheduled path emitted no low-fidelity evaluations"
    baseline_hv, scheduled_hv, parity = _parity(baseline["front"], scheduled["front"])
    return {
        "baseline": baseline,
        "scheduled": scheduled,
        "reduction": baseline["n_full"] / scheduled["n_full"],
        "baseline_hv": baseline_hv,
        "scheduled_hv": scheduled_hv,
        "parity": parity,
    }


def _params(extra: dict) -> dict:
    return {
        "n_categories": N_CATEGORIES,
        "n_records": N_RECORDS,
        "delta": DELTA,
        "population": POPULATION,
        "generations": GENERATIONS,
        "baseline_seeds": BASELINE_SEEDS,
        "low_fidelity_fraction": LOW_FIDELITY_FRACTION,
        "promotion_fraction": PROMOTION_FRACTION,
        **extra,
    }


_RESULT_CACHE: dict | None = None


def _measured() -> dict:
    """Run the comparison once and share it across both gated test items."""
    global _RESULT_CACHE
    if _RESULT_CACHE is None:
        _RESULT_CACHE = measure_fidelity()
    return _RESULT_CACHE


def test_full_eval_reduction():
    """The scheduled run must finish with >= 5x fewer full-fidelity
    evaluations than the exact single-fidelity run."""
    result = _measured()
    record_bench(
        "fidelity",
        "full_eval_reduction",
        _params({}),
        result["scheduled"]["seconds"],
        reference_seconds=result["baseline"]["seconds"],
        speedup=result["reduction"],
        baseline_full_evaluations=result["baseline"]["n_full"],
        scheduled_full_evaluations=result["scheduled"]["n_full"],
        scheduled_low_evaluations=result["scheduled"]["n_low"],
    )
    print(
        f"\nfull_eval_reduction (gens={GENERATIONS}): baseline "
        f"{result['baseline']['n_full']} full evals, scheduled "
        f"{result['scheduled']['n_full']} full + {result['scheduled']['n_low']} "
        f"low, reduction {result['reduction']:.2f}x"
    )
    assert result["reduction"] >= MIN_REDUCTION, (
        f"full-evaluation reduction {result['reduction']:.2f}x below the "
        f"required {MIN_REDUCTION:.1f}x"
    )


def test_hypervolume_parity():
    """The scheduled front's hypervolume must stay within noise of the exact
    run's (the savings are worthless if quality degrades)."""
    result = _measured()
    record_bench(
        "fidelity",
        "hypervolume_parity",
        _params(
            {
                "baseline_front_size": result["baseline"]["front_size"],
                "scheduled_front_size": result["scheduled"]["front_size"],
            }
        ),
        result["scheduled"]["seconds"],
        reference_seconds=result["baseline"]["seconds"],
        speedup=result["parity"],
        baseline_hypervolume=result["baseline_hv"],
        scheduled_hypervolume=result["scheduled_hv"],
    )
    print(
        f"\nhypervolume_parity (gens={GENERATIONS}): baseline "
        f"{result['baseline_hv']:.6f} ({result['baseline']['front_size']} pts), "
        f"scheduled {result['scheduled_hv']:.6f} "
        f"({result['scheduled']['front_size']} pts), parity {result['parity']:.4f}"
    )
    assert result["parity"] >= MIN_PARITY, (
        f"hypervolume parity {result['parity']:.4f} below the required "
        f"{MIN_PARITY:.2f}"
    )


def main() -> None:
    test_full_eval_reduction()
    test_hypervolume_parity()


if __name__ == "__main__":
    main()
