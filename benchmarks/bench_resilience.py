"""Benchmark: the resilience layer must be (nearly) free on the fault-free path.

The retry/quarantine machinery added to the grid executor runs on *every*
campaign — including the overwhelmingly common fault-free one — so its cost
there is the cost everyone pays.  Two measurements:

* ``campaign_fault_free`` — the same cold campaign twice: once with the
  minimal policy (no retries, fail-fast: the historical execution path) and
  once under a full resilience policy (``retries=2, keep_going=True``).
  With no faults firing, both runs execute the identical work; the ratio
  plain/resilient is the overhead of the bookkeeping and is gated at
  >= 0.9 in ``perf_baseline.json`` (i.e. at most ~11%% overhead, with the
  committed bar set below the locally measured ~1.00 so shared-runner
  timing noise cannot flake the gate; the ISSUE budget is <= 5%%).
* ``grid_fault_free`` — 400 trivial cells through ``run_grid`` under both
  policies, isolating the per-cell fixed cost (the fault hook is a single
  ``None`` check per cell when no plan is active).  Recorded for the
  trajectory; not gated (trivial cells amplify constant-factor noise).

Both measurements assert byte-identical results between the two policies
first — an overhead number is meaningless if the resilient path changed the
answer.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_resilience.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q -s
"""

from __future__ import annotations

import json
import os
import time

try:
    from benchmarks.conftest import record_bench
except ImportError:  # standalone execution: benchmarks/ itself is sys.path[0]
    from conftest import record_bench

from repro.experiments.campaign import plan_campaign, run_campaign
from repro.experiments.grid import RetryPolicy, run_grid

#: The campaign workload: one front-comparison experiment, three seeds.
EXPERIMENTS = ("fig4a",)
N_SEEDS = 3
BUDGET = {"n_generations": 40, "population_size": 16}

#: Trivial-cell grid size for the per-cell fixed-cost measurement.
N_TRIVIAL_CELLS = 400

#: Required plain/resilient wall-time ratio on the fault-free campaign.
MIN_FAULT_FREE_RATIO = float(
    os.environ.get("REPRO_BENCH_MIN_RESILIENCE_RATIO", "0.9")
)

#: Full resilience configuration measured against the minimal policy.
RESILIENT = dict(retries=2, keep_going=True)


def measure_campaign_overhead() -> dict:
    """Time the same cold fault-free campaign under both policies."""
    spec = plan_campaign(EXPERIMENTS, range(N_SEEDS), BUDGET)

    start = time.perf_counter()
    plain = run_campaign(spec, retries=0, keep_going=False)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    resilient = run_campaign(spec, **RESILIENT)
    resilient_seconds = time.perf_counter() - start

    # Overhead is only meaningful over identical results: fault-free runs
    # must agree byte for byte (no failure_manifest, same aggregates).
    assert resilient.aggregate_json() == plain.aggregate_json()
    assert resilient.failure_manifest is None
    return {
        "n_tasks": len(spec.tasks()),
        "plain_seconds": plain_seconds,
        "resilient_seconds": resilient_seconds,
        "ratio": plain_seconds / resilient_seconds,
    }


def _trivial_worker(payload):
    return {"type": "bench_doc", "value": payload["value"]}


def measure_grid_overhead() -> dict:
    """Per-cell fixed cost: trivial cells under both policies."""
    payloads = [{"value": value} for value in range(N_TRIVIAL_CELLS)]

    start = time.perf_counter()
    plain = run_grid(payloads, _trivial_worker, parse=lambda d: d["value"])
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    resilient = run_grid(
        payloads, _trivial_worker, parse=lambda d: d["value"],
        policy=RetryPolicy(max_attempts=3, keep_going=True),
    )
    resilient_seconds = time.perf_counter() - start

    assert json.dumps([o.document for o in plain.outcomes]) == \
        json.dumps([o.document for o in resilient.outcomes])
    return {
        "plain_seconds": plain_seconds,
        "resilient_seconds": resilient_seconds,
        "ratio": plain_seconds / resilient_seconds,
    }


def _record_campaign(result: dict) -> None:
    record_bench(
        "resilience",
        "campaign_fault_free",
        {"experiments": len(EXPERIMENTS), "seeds": N_SEEDS, **BUDGET},
        result["resilient_seconds"],
        reference_seconds=result["plain_seconds"],
    )


def _record_grid(result: dict) -> None:
    record_bench(
        "resilience",
        "grid_fault_free",
        {"cells": N_TRIVIAL_CELLS},
        result["resilient_seconds"],
        reference_seconds=result["plain_seconds"],
    )


def test_fault_free_campaign_overhead():
    """The resilient fault-free campaign must stay within the committed
    overhead bar of the minimal-policy run (byte-identical results asserted
    inside the measurement)."""
    result = measure_campaign_overhead()
    _record_campaign(result)
    print(
        f"\nresilience overhead ({result['n_tasks']} tasks): "
        f"plain {result['plain_seconds']:.2f} s, "
        f"resilient {result['resilient_seconds']:.2f} s, "
        f"ratio {result['ratio']:.3f}"
    )
    assert result["ratio"] >= MIN_FAULT_FREE_RATIO, (
        f"fault-free campaign under the resilience policy is "
        f"{1 / result['ratio']:.2f}x the plain run (ratio {result['ratio']:.3f} "
        f"below required {MIN_FAULT_FREE_RATIO:.2f})"
    )


def test_trivial_grid_overhead_recorded():
    """Record the per-cell fixed cost (trajectory only, no hard bar)."""
    result = measure_grid_overhead()
    _record_grid(result)
    print(
        f"\ntrivial-grid overhead ({N_TRIVIAL_CELLS} cells): "
        f"plain {result['plain_seconds']:.3f} s, "
        f"resilient {result['resilient_seconds']:.3f} s, "
        f"ratio {result['ratio']:.3f}"
    )


def main() -> None:
    campaign = measure_campaign_overhead()
    _record_campaign(campaign)
    print(
        f"resilience campaign  tasks={campaign['n_tasks']}  "
        f"plain={campaign['plain_seconds']:6.2f} s  "
        f"resilient={campaign['resilient_seconds']:6.2f} s  "
        f"ratio={campaign['ratio']:.3f}"
    )
    grid = measure_grid_overhead()
    _record_grid(grid)
    print(
        f"resilience grid      cells={N_TRIVIAL_CELLS}  "
        f"plain={grid['plain_seconds']:6.3f} s  "
        f"resilient={grid['resilient_seconds']:6.3f} s  "
        f"ratio={grid['ratio']:.3f}"
    )


if __name__ == "__main__":
    main()
