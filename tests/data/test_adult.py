"""Tests for repro.data.adult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.adult import (
    adult_attribute_distribution,
    adult_attribute_names,
    adult_marginals,
    load_adult_like,
)
from repro.exceptions import DataError


class TestMarginals:
    def test_attribute_names_present(self):
        names = adult_attribute_names()
        assert "age" in names
        assert "workclass" in names
        assert "income" in names

    def test_every_marginal_is_a_distribution(self):
        for name in adult_attribute_names():
            dist = adult_attribute_distribution(name)
            assert dist.probabilities.sum() == pytest.approx(1.0)
            assert dist.n_categories >= 2

    def test_age_attribute_is_skewed_like_census(self):
        age = adult_attribute_distribution("age")
        # The working-age bands dominate and the oldest band is rare.
        assert age.probabilities[1] > age.probabilities[-1]
        assert age.max_probability < 0.5

    def test_unknown_attribute_raises(self):
        with pytest.raises(DataError, match="unknown Adult attribute"):
            adult_attribute_distribution("shoe_size")

    def test_marginals_view_is_a_copy(self):
        view = adult_marginals()
        view["age"]["17-24"] = 99.0
        assert adult_attribute_distribution("age").probabilities.sum() == pytest.approx(1.0)


class TestLoadAdultLike:
    def test_default_shape(self):
        dataset = load_adult_like(500, seed=0)
        assert dataset.n_records == 500
        assert set(dataset.attribute_names) == set(adult_attribute_names())

    def test_subset_of_attributes(self):
        dataset = load_adult_like(200, attributes=("age", "sex"), seed=0)
        assert dataset.attribute_names == ("age", "sex")

    def test_reproducible_with_seed(self):
        first = load_adult_like(300, attributes=("age",), seed=11)
        second = load_adult_like(300, attributes=("age",), seed=11)
        np.testing.assert_array_equal(first.records, second.records)

    def test_empirical_marginal_matches_specification(self):
        dataset = load_adult_like(60_000, attributes=("workclass",), seed=2)
        empirical = dataset.distribution("workclass")
        specified = adult_attribute_distribution("workclass")
        assert specified.total_variation(empirical) < 0.02

    def test_rejects_empty_attribute_tuple(self):
        with pytest.raises(DataError):
            load_adult_like(10, attributes=())
