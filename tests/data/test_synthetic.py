"""Tests for repro.data.synthetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    DISTRIBUTION_FACTORIES,
    custom_distribution,
    gamma_distribution,
    geometric_distribution,
    make_distribution,
    normal_distribution,
    sample_dataset,
    uniform_distribution,
    zipf_distribution,
)
from repro.exceptions import DataError


class TestNormalDistribution:
    def test_is_probability_vector(self):
        dist = normal_distribution(10)
        assert dist.n_categories == 10
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_is_symmetric_and_unimodal(self):
        probs = normal_distribution(10).probabilities
        np.testing.assert_allclose(probs, probs[::-1], atol=1e-12)
        # Mass increases towards the centre.
        assert probs[4] > probs[1] > probs[0]

    def test_rejects_bad_std(self):
        with pytest.raises(DataError):
            normal_distribution(10, std=0.0)


class TestGammaDistribution:
    def test_is_probability_vector(self):
        dist = gamma_distribution(10, alpha=1.0, beta=2.0)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_exponential_case_is_decreasing(self):
        # alpha = 1 is the exponential distribution: monotone decreasing bins.
        probs = gamma_distribution(10, alpha=1.0, beta=2.0).probabilities
        assert np.all(np.diff(probs) < 0)

    def test_shape_2_is_unimodal_with_interior_mode(self):
        probs = gamma_distribution(12, alpha=3.0, beta=1.0).probabilities
        mode = int(np.argmax(probs))
        assert 0 < mode < 11

    def test_rejects_bad_parameters(self):
        with pytest.raises(DataError):
            gamma_distribution(10, alpha=-1.0)
        with pytest.raises(DataError):
            gamma_distribution(10, beta=0.0)


class TestOtherDistributions:
    def test_uniform(self):
        np.testing.assert_allclose(uniform_distribution(5).probabilities, 0.2)

    def test_zipf_is_decreasing(self):
        probs = zipf_distribution(8, exponent=1.2).probabilities
        assert np.all(np.diff(probs) < 0)

    def test_geometric_is_decreasing(self):
        probs = geometric_distribution(8, success_probability=0.5).probabilities
        assert np.all(np.diff(probs) < 0)

    def test_custom(self):
        dist = custom_distribution([1, 1, 2], categories=("a", "b", "c"))
        np.testing.assert_allclose(dist.probabilities, [0.25, 0.25, 0.5])

    def test_registry_contains_paper_distributions(self):
        assert {"normal", "gamma", "uniform"} <= set(DISTRIBUTION_FACTORIES)

    def test_make_distribution_lookup(self):
        dist = make_distribution("zipf", 6)
        assert dist.n_categories == 6

    def test_make_distribution_unknown(self):
        with pytest.raises(DataError, match="unknown distribution"):
            make_distribution("cauchy", 6)


class TestSampleDataset:
    def test_shape_and_domain(self, rng):
        dist = normal_distribution(10)
        dataset = sample_dataset(dist, 1000, name="attr", seed=rng)
        assert dataset.n_records == 1000
        assert dataset.attribute("attr").n_categories == 10

    def test_empirical_distribution_close_to_prior(self):
        dist = gamma_distribution(10)
        dataset = sample_dataset(dist, 100_000, seed=1)
        empirical = dataset.distribution("attribute")
        assert dist.total_variation(empirical) < 0.01

    def test_rejects_non_positive_records(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            sample_dataset(uniform_distribution(3), 0)
