"""Tests for repro.data.discretize."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.discretize import discretize_equal_frequency, discretize_equal_width
from repro.exceptions import DataError


class TestEqualWidth:
    def test_codes_cover_all_bins(self, rng):
        values = rng.uniform(0, 100, size=5000)
        result = discretize_equal_width(values, 10)
        assert result.n_bins == 10
        assert set(np.unique(result.codes)) == set(range(10))

    def test_edges_are_monotone(self):
        result = discretize_equal_width([1.0, 2.0, 3.0, 10.0], 3)
        assert np.all(np.diff(result.edges) > 0)

    def test_max_value_lands_in_last_bin(self):
        result = discretize_equal_width([0.0, 5.0, 10.0], 5)
        assert result.codes[-1] == 4

    def test_constant_values_raise(self):
        with pytest.raises(DataError, match="constant"):
            discretize_equal_width([3.0, 3.0, 3.0], 4)

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            discretize_equal_width([1.0, np.nan], 2)

    def test_labels_count_matches_bins(self):
        result = discretize_equal_width([0.0, 1.0, 2.0], 4)
        assert len(result.labels) == 4


class TestEqualFrequency:
    def test_bins_are_roughly_balanced(self, rng):
        values = rng.normal(size=10_000)
        result = discretize_equal_frequency(values, 10)
        counts = np.bincount(result.codes, minlength=result.n_bins)
        assert counts.min() > 0.5 * counts.mean()

    def test_ties_collapse_bins(self):
        values = np.array([1.0] * 50 + [2.0] * 50)
        result = discretize_equal_frequency(values, 10)
        assert result.n_bins <= 2

    def test_constant_values_raise(self):
        with pytest.raises(DataError):
            discretize_equal_frequency([1.0, 1.0], 3)
