"""Tests for the mining-workload builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.workload import (
    CLASS_ATTRIBUTE,
    CONTEXT_ATTRIBUTE,
    SENSITIVE_ATTRIBUTE,
    build_workload,
    resolve_workload_prior,
)
from repro.exceptions import DataError, ValidationError


class TestResolveWorkloadPrior:
    def test_adult_attribute_resolves_to_its_marginal(self):
        prior = resolve_workload_prior("adult:education")
        assert prior.n_categories == 10

    def test_adult_conflicting_categories_rejected(self):
        with pytest.raises(DataError, match="conflicts"):
            resolve_workload_prior("adult:sex", 10)

    def test_adult_matching_categories_accepted(self):
        assert resolve_workload_prior("adult:sex", 2).n_categories == 2

    def test_synthetic_family_with_default_categories(self):
        assert resolve_workload_prior("normal").n_categories == 10

    def test_synthetic_family_with_explicit_categories(self):
        assert resolve_workload_prior("zipf", 6).n_categories == 6

    def test_unknown_family_rejected(self):
        with pytest.raises(DataError):
            resolve_workload_prior("not-a-family")


class TestBuildWorkload:
    def test_schema_and_shape(self):
        workload = build_workload("normal", 500, 0, n_categories=6)
        assert workload.dataset.attribute_names == (
            SENSITIVE_ATTRIBUTE, CONTEXT_ATTRIBUTE, CLASS_ATTRIBUTE,
        )
        assert workload.n_records == 500
        assert workload.n_categories == 6
        assert workload.dataset.attribute(CLASS_ATTRIBUTE).n_categories == 2

    def test_deterministic_given_seed(self):
        first = build_workload("adult:education", 400, 7)
        second = build_workload("adult:education", 400, 7)
        np.testing.assert_array_equal(first.dataset.records, second.dataset.records)

    def test_different_seeds_differ(self):
        first = build_workload("normal", 400, 0)
        second = build_workload("normal", 400, 1)
        assert not np.array_equal(first.dataset.records, second.dataset.records)

    def test_outcome_rate_increases_with_sensitive_code(self):
        # The planted signal: the positive rate must rise monotonically
        # enough for the top half to clearly beat the bottom half.
        workload = build_workload("uniform", 20_000, 3, n_categories=6)
        sensitive = workload.dataset.column(SENSITIVE_ATTRIBUTE)
        outcome = workload.dataset.column(CLASS_ATTRIBUTE)
        low = outcome[sensitive <= 1].mean()
        high = outcome[sensitive >= 4].mean()
        assert high > low + 0.3

    def test_context_is_noise(self):
        workload = build_workload("uniform", 20_000, 3, n_categories=6)
        context = workload.dataset.column(CONTEXT_ATTRIBUTE)
        outcome = workload.dataset.column(CLASS_ATTRIBUTE)
        rates = [outcome[context == code].mean() for code in range(3)]
        assert max(rates) - min(rates) < 0.05

    def test_rejects_nonpositive_records(self):
        with pytest.raises(ValidationError):
            build_workload("normal", 0, 0)
