"""Tests for repro.data.dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import CategoricalAttribute, CategoricalDataset
from repro.exceptions import DataError


@pytest.fixture
def two_attribute_dataset() -> CategoricalDataset:
    records = np.array([[0, 1], [1, 0], [2, 1], [0, 0], [1, 1]])
    attributes = (
        CategoricalAttribute("color", ("red", "green", "blue")),
        CategoricalAttribute("size", ("small", "large")),
    )
    return CategoricalDataset(attributes, records)


class TestCategoricalAttribute:
    def test_code_and_label_round_trip(self):
        attribute = CategoricalAttribute("color", ("red", "green", "blue"))
        assert attribute.code_of("green") == 1
        assert attribute.label_of(2) == "blue"

    def test_unknown_label_raises(self):
        attribute = CategoricalAttribute("color", ("red", "green"))
        with pytest.raises(DataError, match="unknown category"):
            attribute.code_of("purple")

    def test_out_of_range_code_raises(self):
        attribute = CategoricalAttribute("color", ("red", "green"))
        with pytest.raises(DataError):
            attribute.label_of(5)

    def test_needs_two_categories(self):
        with pytest.raises(DataError):
            CategoricalAttribute("flag", ("only",))

    def test_rejects_duplicate_categories(self):
        with pytest.raises(DataError, match="duplicate"):
            CategoricalAttribute("flag", ("a", "a"))

    def test_rejects_empty_name(self):
        with pytest.raises(DataError):
            CategoricalAttribute("", ("a", "b"))


class TestCategoricalDataset:
    def test_shape_properties(self, two_attribute_dataset):
        assert two_attribute_dataset.n_records == 5
        assert two_attribute_dataset.n_attributes == 2
        assert two_attribute_dataset.attribute_names == ("color", "size")
        assert len(two_attribute_dataset) == 5

    def test_column_returns_copy(self, two_attribute_dataset):
        column = two_attribute_dataset.column("color")
        column[0] = 2
        assert two_attribute_dataset.column("color")[0] == 0

    def test_distribution(self, two_attribute_dataset):
        dist = two_attribute_dataset.distribution("size")
        np.testing.assert_allclose(dist.probabilities, [0.4, 0.6])

    def test_select(self, two_attribute_dataset):
        subset = two_attribute_dataset.select(["size"])
        assert subset.attribute_names == ("size",)
        assert subset.n_records == 5

    def test_with_column_replaces_values(self, two_attribute_dataset):
        new_values = np.zeros(5, dtype=np.int64)
        updated = two_attribute_dataset.with_column("size", new_values)
        assert updated.column("size").sum() == 0
        # original untouched
        assert two_attribute_dataset.column("size").sum() == 3

    def test_with_column_checks_shape(self, two_attribute_dataset):
        with pytest.raises(DataError):
            two_attribute_dataset.with_column("size", np.zeros(3, dtype=np.int64))

    def test_unknown_attribute_raises(self, two_attribute_dataset):
        with pytest.raises(DataError, match="unknown attribute"):
            two_attribute_dataset.column("weight")

    def test_rejects_out_of_domain_codes(self):
        attribute = CategoricalAttribute("size", ("small", "large"))
        with pytest.raises(DataError, match="outside"):
            CategoricalDataset((attribute,), np.array([[0], [5]]))

    def test_rejects_empty_records(self):
        attribute = CategoricalAttribute("size", ("small", "large"))
        with pytest.raises(DataError):
            CategoricalDataset((attribute,), np.empty((0, 1), dtype=np.int64))

    def test_rejects_mismatched_columns(self):
        attribute = CategoricalAttribute("size", ("small", "large"))
        with pytest.raises(DataError):
            CategoricalDataset((attribute,), np.zeros((3, 2), dtype=np.int64))

    def test_from_single_attribute(self):
        dataset = CategoricalDataset.from_single_attribute([0, 1, 1], 2, name="flag")
        assert dataset.attribute_names == ("flag",)
        assert dataset.attribute("flag").n_categories == 2

    def test_from_columns(self):
        dataset = CategoricalDataset.from_columns(
            {"a": [0, 1], "b": [1, 1]},
            {"a": ("x", "y"), "b": ("u", "v")},
        )
        assert dataset.n_records == 2
        assert dataset.n_attributes == 2

    def test_one_dimensional_records_are_reshaped(self):
        attribute = CategoricalAttribute("flag", ("no", "yes"))
        dataset = CategoricalDataset((attribute,), np.array([0, 1, 1]))
        assert dataset.n_attributes == 1
        assert dataset.n_records == 3
