"""Tests for repro.data.distribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distribution import CategoricalDistribution, empirical_distribution
from repro.exceptions import DataError


class TestConstruction:
    def test_basic_construction(self):
        dist = CategoricalDistribution(np.array([0.2, 0.3, 0.5]))
        assert dist.n_categories == 3
        assert dist.categories == ("c1", "c2", "c3")

    def test_custom_categories(self):
        dist = CategoricalDistribution(np.array([0.5, 0.5]), ("yes", "no"))
        assert dist.categories == ("yes", "no")

    def test_rejects_wrong_label_count(self):
        with pytest.raises(DataError, match="labels"):
            CategoricalDistribution(np.array([0.5, 0.5]), ("only-one",))

    def test_rejects_duplicate_labels(self):
        with pytest.raises(DataError, match="unique"):
            CategoricalDistribution(np.array([0.5, 0.5]), ("a", "a"))

    def test_rejects_unnormalised(self):
        with pytest.raises(DataError):
            CategoricalDistribution(np.array([0.5, 0.6]))

    def test_from_weights(self):
        dist = CategoricalDistribution.from_weights([2, 6, 2])
        np.testing.assert_allclose(dist.probabilities, [0.2, 0.6, 0.2])

    def test_from_counts_mapping(self):
        dist = CategoricalDistribution.from_counts({"a": 30, "b": 70})
        assert dist.as_dict() == {"a": pytest.approx(0.3), "b": pytest.approx(0.7)}

    def test_from_samples(self):
        dist = CategoricalDistribution.from_samples([0, 0, 1, 2], 3)
        np.testing.assert_allclose(dist.probabilities, [0.5, 0.25, 0.25])

    def test_from_samples_rejects_out_of_range(self):
        with pytest.raises(DataError):
            CategoricalDistribution.from_samples([0, 5], 3)

    def test_uniform(self):
        dist = CategoricalDistribution.uniform(4)
        np.testing.assert_allclose(dist.probabilities, 0.25)

    def test_uniform_rejects_zero(self):
        with pytest.raises(DataError):
            CategoricalDistribution.uniform(0)


class TestProtocol:
    def test_len_iter_getitem(self, small_prior):
        assert len(small_prior) == 4
        assert list(small_prior) == pytest.approx([0.4, 0.3, 0.2, 0.1])
        assert small_prior[0] == pytest.approx(0.4)

    def test_as_array_returns_copy(self, small_prior):
        array = small_prior.as_array()
        array[0] = 99.0
        assert small_prior[0] == pytest.approx(0.4)


class TestStatistics:
    def test_max_probability_and_mode(self, small_prior):
        assert small_prior.max_probability == pytest.approx(0.4)
        assert small_prior.mode == 0

    def test_entropy_of_uniform_is_log_n(self):
        dist = CategoricalDistribution.uniform(8)
        assert dist.entropy() == pytest.approx(np.log(8))

    def test_entropy_of_point_mass_is_zero(self):
        dist = CategoricalDistribution(np.array([1.0, 0.0]))
        assert dist.entropy() == pytest.approx(0.0)

    def test_total_variation(self):
        a = CategoricalDistribution(np.array([1.0, 0.0]))
        b = CategoricalDistribution(np.array([0.0, 1.0]))
        assert a.total_variation(b) == pytest.approx(1.0)

    def test_total_variation_requires_same_domain(self, small_prior):
        other = CategoricalDistribution.uniform(3)
        with pytest.raises(DataError):
            small_prior.total_variation(other)

    def test_mse_zero_for_identical(self, small_prior):
        assert small_prior.mean_squared_error(small_prior) == pytest.approx(0.0)

    def test_kl_divergence_zero_for_identical(self, small_prior):
        assert small_prior.kl_divergence(small_prior) == pytest.approx(0.0)

    def test_kl_divergence_infinite_when_support_mismatch(self):
        a = CategoricalDistribution(np.array([0.5, 0.5]))
        b = CategoricalDistribution(np.array([1.0, 0.0]))
        assert a.kl_divergence(b) == np.inf


class TestSampling:
    def test_sample_shape_and_range(self, small_prior, rng):
        samples = small_prior.sample(500, seed=rng)
        assert samples.shape == (500,)
        assert samples.min() >= 0 and samples.max() < 4

    def test_sample_reproducible_with_seed(self, small_prior):
        first = small_prior.sample(100, seed=3)
        second = small_prior.sample(100, seed=3)
        np.testing.assert_array_equal(first, second)

    def test_sample_converges_to_prior(self, small_prior):
        samples = small_prior.sample(200_000, seed=0)
        empirical = empirical_distribution(samples, 4)
        assert small_prior.total_variation(empirical) < 0.01

    def test_sample_rejects_non_positive(self, small_prior):
        with pytest.raises(DataError):
            small_prior.sample(0)
