"""Equivalence of the array-native generation engine and the list-based loop.

The structure-of-arrays engine (PR 4) must not change what the optimizer
computes — only how fast.  Three layers of evidence:

* **Trajectory** — fixed-seed end-to-end runs of the array-native
  :class:`~repro.core.optimizer.OptRROptimizer` reproduce the frozen
  list-based loop (:mod:`repro.core.reference`) bit-for-bit, fronts, Ω and
  matrices included, when the reference applies the same fitness-reuse fix
  (``reuse_archive_fitness=True``).  The RNG stream is untouched by the
  refactor, so this holds exactly, not approximately.
* **Documented divergence** — the *only* intentional semantic change is that
  mating selection reuses the union fitness environmental selection just
  assigned instead of re-running SPEA2 fitness assignment on the archive
  alone (the canonical SPEA2 reading; see ``docs/architecture.md``).  The
  pre-PR behaviour remains available as ``reuse_archive_fitness=False``.
* **Components** — Hypothesis property tests assert the incremental
  truncation and the index-native environmental selection match the pre-PR
  reference implementations on arbitrary (duplicate-heavy) populations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.registry import backend_names, use_backend
from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.problem import RRMatrixProblem
from repro.core.reference import (
    reference_environmental_selection,
    reference_optrr_run,
    reference_truncate_archive,
)
from repro.data.synthetic import normal_distribution
from repro.emoo.nsga2 import NSGA2, NSGA2Settings
from repro.emoo.spea2 import SPEA2, SPEA2Settings
from repro.emoo.termination import MaxGenerations
from repro.emoo.selection import (
    binary_tournament,
    binary_tournament_indices,
    environmental_selection,
    truncate_archive,
)
from tests.emoo.conftest import make_individual

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Objective values drawn from a tiny grid so exact duplicates (the hard
#: truncation case: zero-distance clusters) appear constantly.
coordinate = st.integers(min_value=0, max_value=4).map(lambda v: v / 4.0)
point = st.tuples(coordinate, coordinate)
point_sets = st.lists(point, min_size=2, max_size=24)


def _config(**overrides) -> OptRRConfig:
    base = dict(
        population_size=16,
        archive_size=16,
        n_generations=20,
        delta=0.8,
        baseline_seeds=101,
        seed=11,
    )
    base.update(overrides)
    return OptRRConfig(**base)


def _points(result) -> np.ndarray:
    return np.array([(p.privacy, p.utility) for p in result.points])


def _omega(result) -> np.ndarray:
    return np.array([(p.privacy, p.utility) for p in result.optimal_set_points])


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("seed", [0, 11, 202])
    def test_front_and_omega_bit_for_bit(self, seed):
        """Same seed, same trajectory: fronts and Ω spectra are identical
        arrays, not approximately equal ones."""
        prior = normal_distribution(8)
        config = _config(seed=seed)
        array_result = OptRROptimizer(prior, 5_000, config).run()
        reference = reference_optrr_run(
            prior, 5_000, config, reuse_archive_fitness=True
        )
        assert np.array_equal(_points(array_result), _points(reference))
        assert np.array_equal(_omega(array_result), _omega(reference))
        assert array_result.n_evaluations == reference.n_evaluations
        assert array_result.n_generations == reference.n_generations

    def test_front_matrices_bit_for_bit(self):
        """The recovered RR matrices themselves match, entry for entry."""
        prior = normal_distribution(6)
        config = _config(n_generations=12)
        array_result = OptRROptimizer(prior, 5_000, config).run()
        reference = reference_optrr_run(
            prior, 5_000, config, reuse_archive_fitness=True
        )
        assert len(array_result.points) == len(reference.points)
        for ours, theirs in zip(array_result.points, reference.points):
            assert np.array_equal(ours.matrix.probabilities, theirs.matrix.probabilities)

    def test_no_delta_configuration(self):
        """Equivalence also holds without a privacy bound (no repair step)."""
        prior = normal_distribution(6)
        config = _config(delta=None, n_generations=10)
        array_result = OptRROptimizer(prior, 5_000, config).run()
        reference = reference_optrr_run(
            prior, 5_000, config, reuse_archive_fitness=True
        )
        assert np.array_equal(_points(array_result), _points(reference))

    def test_documented_divergence_from_pre_pr_loop(self):
        """With the redundant archive fitness re-assignment restored
        (``reuse_archive_fitness=False``), the reference reproduces the
        pre-PR trajectory — same budget, same determinism, but a different
        (non-canonical) mating-selection fitness.  This is the one documented
        semantic change of the array engine."""
        prior = normal_distribution(8)
        config = _config()
        pre_pr = reference_optrr_run(prior, 5_000, config)
        again = reference_optrr_run(prior, 5_000, config)
        assert np.array_equal(_points(pre_pr), _points(again))  # still deterministic
        array_result = OptRROptimizer(prior, 5_000, config).run()
        assert array_result.n_evaluations == pre_pr.n_evaluations
        assert len(array_result.points) > 0 and len(pre_pr.points) > 0


class TestTruncationEquivalence:
    @SETTINGS
    @given(points=point_sets, data=st.data())
    def test_incremental_truncation_matches_reference(self, points, data):
        """The incremental truncation (bulk duplicate phase + maintained
        nearest-neighbour state) removes exactly the same individuals in the
        same implicit order as the per-removal full re-sort."""
        target = data.draw(st.integers(min_value=1, max_value=len(points)))
        archive = [make_individual(list(p)) for p in points]
        fast = truncate_archive(archive, target)
        slow = reference_truncate_archive(archive, target)
        assert len(fast) == len(slow)
        assert all(ours is theirs for ours, theirs in zip(fast, slow))

    @SETTINGS
    @given(points=point_sets, data=st.data())
    def test_environmental_selection_matches_reference(self, points, data):
        """Index-native environmental selection (shared distance matrix,
        truncation included) selects the same individuals in the same order
        as the pre-PR list implementation."""
        archive_size = data.draw(st.integers(min_value=1, max_value=len(points) + 2))
        union_fast = [make_individual(list(p)) for p in points]
        union_slow = [make_individual(list(p)) for p in points]
        fast = environmental_selection(union_fast, archive_size)
        slow = reference_environmental_selection(union_slow, archive_size)
        fast_positions = [
            next(k for k, u in enumerate(union_fast) if u is chosen) for chosen in fast
        ]
        slow_positions = [
            next(k for k, u in enumerate(union_slow) if u is chosen) for chosen in slow
        ]
        assert fast_positions == slow_positions
        # The wrapper writes the same fitness values back.
        assert np.allclose(
            [i.fitness for i in union_fast], [i.fitness for i in union_slow]
        )

    def test_duplicate_heavy_truncation_keeps_exact_reference_order(self):
        """Regression: a population dominated by duplicate clusters (the Ω
        re-injection pattern) goes through the bulk-removal fast path and
        must still match the reference removal-by-removal."""
        rng = np.random.default_rng(5)
        base = rng.random((6, 2))
        points = np.vstack([base[rng.integers(0, 6)] for _ in range(40)])
        archive = [make_individual(list(p)) for p in points]
        for target in (1, 3, 5, 7, 12, 30):
            fast = truncate_archive(archive, target)
            slow = reference_truncate_archive(archive, target)
            assert all(ours is theirs for ours, theirs in zip(fast, slow))


#: Every backend that can actually be activated in this environment (numba
#: joins automatically where the package is importable).
BACKENDS = backend_names()


class TestBackendTrajectoryEquivalence:
    """Backend choice may change kernels, never trajectories.

    For every registered array backend, a fixed-seed short run of each engine
    (OptRR, SPEA2, NSGA-II) is compared against the same run on the ``numpy``
    reference backend:

    * the final RNG bit-generator state must be *identical* — backend kernels
      are RNG-free by contract, so backend choice can never reorder or add
      draws;
    * the evaluation budget must be identical;
    * the resulting front must match within the equivalence tolerance
      (``rtol=1e-9``), and bit for bit when the backend only has bit-exact
      kernels.
    """

    _cache: dict = {}

    @classmethod
    def _run(cls, engine: str, backend: str):
        key = (engine, backend)
        if key not in cls._cache:
            with use_backend(backend):
                if engine == "optrr":
                    optimizer = OptRROptimizer(
                        normal_distribution(8), 5_000, _config(n_generations=10)
                    )
                    driver = optimizer.driver()
                    result = optimizer.run_driver(driver)
                    front = _points(result)
                else:
                    problem = RRMatrixProblem(normal_distribution(6), 4_000, delta=0.85)
                    if engine == "spea2":
                        algorithm = SPEA2(
                            problem,
                            SPEA2Settings(population_size=8, archive_size=8),
                            termination=MaxGenerations(6),
                            seed=3,
                        )
                    else:
                        algorithm = NSGA2(
                            problem,
                            NSGA2Settings(population_size=8),
                            termination=MaxGenerations(6),
                            seed=3,
                        )
                    driver = algorithm.driver()
                    for _ in driver.steps():
                        pass
                    result = driver.result()
                    front = np.array(
                        sorted(tuple(m.objectives) for m in result.front)
                    )
                cls._cache[key] = (
                    front,
                    result.n_evaluations,
                    driver.rng.bit_generator.state,
                )
        return cls._cache[key]

    @pytest.mark.parametrize("engine", ["optrr", "spea2", "nsga2"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trajectory_matches_numpy_reference(self, engine, backend):
        front, evaluations, rng_state = self._run(engine, backend)
        expected_front, expected_evaluations, expected_rng_state = self._run(
            engine, "numpy"
        )
        assert rng_state == expected_rng_state
        assert evaluations == expected_evaluations
        assert front.shape == expected_front.shape
        np.testing.assert_allclose(front, expected_front, rtol=1e-9, atol=1e-12)

    def test_explicit_numpy_activation_is_bit_exact(self):
        """Activating ``numpy`` explicitly is the same run as not selecting a
        backend at all — the seam's default dispatches to the identical
        kernels, so nothing about the trajectory may move."""
        implicit = OptRROptimizer(
            normal_distribution(8), 5_000, _config(n_generations=10)
        ).run()
        with use_backend("numpy"):
            explicit = OptRROptimizer(
                normal_distribution(8), 5_000, _config(n_generations=10)
            ).run()
        assert np.array_equal(_points(implicit), _points(explicit))
        assert np.array_equal(_omega(implicit), _omega(explicit))


class TestMatingSelectionEquivalence:
    def test_tournament_wrapper_matches_index_function(self):
        pool = [make_individual([float(i), float(-i)]) for i in range(6)]
        for index, individual in enumerate(pool):
            individual.fitness = float(index % 3)
        fitness = np.array([individual.fitness for individual in pool])
        winners_list = binary_tournament(pool, 40, seed=np.random.default_rng(9))
        winners_index = binary_tournament_indices(
            fitness, 40, np.random.default_rng(9)
        )
        positions = [
            next(k for k, candidate in enumerate(pool) if candidate is winner)
            for winner in winners_list
        ]
        assert positions == [int(index) for index in winners_index]
