"""Tests for cross-seed aggregation (repro.analysis.aggregate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.aggregate import (
    aggregate_campaign_runs,
    aggregate_experiment_runs,
    aggregate_to_document,
    format_aggregate_table,
)
from repro.exceptions import ValidationError
from repro.experiments.base import ExperimentResult


def _result(experiment_id: str, *, reproduced: bool = True, **metrics: float) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        reproduced=reproduced,
        metrics={key: float(value) for key, value in metrics.items()},
    )


class TestAggregateExperimentRuns:
    def test_statistics_match_numpy(self):
        values = [0.2, 0.5, 0.9, 0.4]
        runs = [
            (seed, _result("fig4a", optrr_hypervolume=value))
            for seed, value in enumerate(values)
        ]
        aggregate = aggregate_experiment_runs("fig4a", runs)
        stats = aggregate.metrics["optrr_hypervolume"]
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values))
        assert stats.min == pytest.approx(min(values))
        assert stats.max == pytest.approx(max(values))
        assert aggregate.seeds == (0, 1, 2, 3)
        assert aggregate.n_runs == 4

    def test_reproduction_rate(self):
        runs = [
            (0, _result("fig4a", reproduced=True)),
            (1, _result("fig4a", reproduced=False)),
            (2, _result("fig4a", reproduced=True)),
            (3, _result("fig4a", reproduced=True)),
        ]
        aggregate = aggregate_experiment_runs("fig4a", runs)
        assert aggregate.reproduction_rate == pytest.approx(0.75)

    def test_only_shared_metric_keys_are_aggregated(self):
        runs = [
            (0, _result("fig4a", a=1.0, b=2.0)),
            (1, _result("fig4a", a=3.0)),
        ]
        aggregate = aggregate_experiment_runs("fig4a", runs)
        assert set(aggregate.metrics) == {"a"}

    def test_empty_runs_rejected(self):
        with pytest.raises(ValidationError, match="no runs"):
            aggregate_experiment_runs("fig4a", [])

    def test_mismatched_experiment_rejected(self):
        with pytest.raises(ValidationError, match="cannot be aggregated"):
            aggregate_experiment_runs("fig4a", [(0, _result("fig4b"))])


class TestAggregateCampaignRuns:
    def test_grouping_preserves_first_occurrence_order(self):
        runs = [
            ("thm2", 0, _result("thm2")),
            ("fig4a", 0, _result("fig4a", a=1.0)),
            ("thm2", 1, _result("thm2")),
            ("fig4a", 1, _result("fig4a", a=2.0)),
        ]
        aggregates = aggregate_campaign_runs(runs)
        assert list(aggregates) == ["thm2", "fig4a"]
        assert aggregates["fig4a"].seeds == (0, 1)
        assert aggregates["fig4a"].metrics["a"].mean == pytest.approx(1.5)


class TestAggregateDocument:
    def test_document_shape(self):
        aggregates = aggregate_campaign_runs(
            [("fig4a", seed, _result("fig4a", a=float(seed))) for seed in range(3)]
        )
        document = aggregate_to_document(aggregates)
        assert document["type"] == "campaign_aggregate"
        entry = document["experiments"]["fig4a"]
        assert entry["seeds"] == [0, 1, 2]
        assert entry["n_runs"] == 3
        assert entry["metrics"]["a"] == {
            "mean": 1.0, "std": pytest.approx(np.std([0.0, 1.0, 2.0])),
            "min": 0.0, "max": 2.0,
        }

    def test_table_lists_every_experiment(self):
        aggregates = aggregate_campaign_runs(
            [
                ("fig4a", 0, _result("fig4a", optrr_hypervolume=0.4)),
                ("thm2", 0, _result("thm2")),
            ]
        )
        table = format_aggregate_table(aggregates)
        assert "fig4a" in table
        assert "thm2" in table
        assert "100%" in table
