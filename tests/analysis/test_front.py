"""Tests for repro.analysis.front."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.front import FrontPoint, ParetoFront
from repro.core.optimizer import OptRROptimizer
from repro.exceptions import ValidationError
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.family import WarnerFamily
from repro.rr.schemes import warner_matrix


class TestFrontPoint:
    def test_dominates(self):
        better = FrontPoint(privacy=0.6, utility=1e-4)
        worse = FrontPoint(privacy=0.5, utility=2e-4)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_tradeoff_points_incomparable(self):
        a = FrontPoint(privacy=0.6, utility=2e-4)
        b = FrontPoint(privacy=0.5, utility=1e-4)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = FrontPoint(privacy=0.5, utility=1e-4)
        assert not a.dominates(FrontPoint(privacy=0.5, utility=1e-4))


class TestFromPoints:
    def test_sorted_by_privacy(self):
        front = ParetoFront.from_points("test", [(0.7, 1e-4), (0.3, 5e-5), (0.5, 8e-5)],
                                        keep_dominated=True)
        privacies = front.privacy_values()
        assert np.all(np.diff(privacies) >= 0)

    def test_dominated_points_removed_by_default(self):
        front = ParetoFront.from_points(
            "test", [(0.5, 1e-4), (0.6, 5e-5), (0.4, 2e-4)]
        )
        # (0.6, 5e-5) dominates both other points.
        assert len(front) == 1
        assert front.privacy_values()[0] == pytest.approx(0.6)

    def test_keep_dominated_flag(self):
        front = ParetoFront.from_points(
            "test", [(0.5, 1e-4), (0.6, 5e-5)], keep_dominated=True
        )
        assert len(front) == 2

    def test_empty_front(self):
        front = ParetoFront.from_points("empty", [])
        assert front.is_empty
        with pytest.raises(ValidationError):
            front.privacy_range


class TestFromResultAndFamily:
    def test_from_result(self, small_prior, fast_config):
        result = OptRROptimizer(small_prior, 10_000, fast_config).run()
        front = ParetoFront.from_result("optrr", result)
        assert not front.is_empty
        assert all(point.matrix is not None for point in front)

    def test_from_family_filters_bound_violations(self, normal_prior):
        delta = 0.7
        front = ParetoFront.from_family(
            WarnerFamily(10), normal_prior, 10_000, delta=delta, n_points=101
        )
        evaluator = MatrixEvaluator(normal_prior, 10_000, delta)
        for point in front:
            assert evaluator.evaluate(point.matrix).feasible

    def test_from_family_without_bound_spans_full_range(self, normal_prior):
        front = ParetoFront.from_family(WarnerFamily(10), normal_prior, 10_000, n_points=101)
        low, high = front.privacy_range
        assert low == pytest.approx(0.0, abs=1e-6)
        assert high > 0.7

    def test_from_matrices_excludes_singular(self, small_prior, evaluator):
        from repro.rr.matrix import RRMatrix

        front = ParetoFront.from_matrices(
            "mixed", [RRMatrix.uniform(4), warner_matrix(4, 0.8)], evaluator
        )
        assert len(front) == 1


class TestQueries:
    @pytest.fixture
    def simple_front(self) -> ParetoFront:
        return ParetoFront.from_points(
            "simple", [(0.2, 1e-5), (0.4, 5e-5), (0.6, 2e-4), (0.8, 1e-3)], keep_dominated=True
        )

    def test_utility_at_privacy(self, simple_front):
        assert simple_front.utility_at_privacy(0.5) == pytest.approx(2e-4)
        assert simple_front.utility_at_privacy(0.2) == pytest.approx(1e-5)

    def test_utility_at_unreachable_privacy_is_inf(self, simple_front):
        assert simple_front.utility_at_privacy(0.95) == np.inf

    def test_best_point_for_privacy(self, simple_front):
        point = simple_front.best_point_for_privacy(0.5)
        assert point.privacy == pytest.approx(0.6)
        assert simple_front.best_point_for_privacy(0.95) is None

    def test_restrict_privacy(self, simple_front):
        restricted = simple_front.restrict_privacy(0.3, 0.7)
        assert len(restricted) == 2

    def test_as_arrays(self, simple_front):
        array = simple_front.as_array()
        minimisation = simple_front.as_minimization_array()
        assert array.shape == (4, 2)
        np.testing.assert_allclose(minimisation[:, 0], -array[:, 0])
        np.testing.assert_allclose(minimisation[:, 1], array[:, 1])
