"""Tests for repro.analysis.plot and repro.analysis.report."""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_fronts
from repro.analysis.front import ParetoFront
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import (
    format_comparison_table,
    format_front_table,
    format_paper_vs_measured,
)
from repro.exceptions import ValidationError


@pytest.fixture
def front() -> ParetoFront:
    return ParetoFront.from_points(
        "optrr", [(0.2, 1e-5), (0.5, 1e-4), (0.8, 1e-3)], keep_dominated=True
    )


@pytest.fixture
def baseline() -> ParetoFront:
    return ParetoFront.from_points(
        "warner", [(0.5, 2e-4), (0.8, 2e-3)], keep_dominated=True
    )


class TestAsciiScatter:
    def test_contains_markers_and_legend(self, front, baseline):
        plot = ascii_scatter([front, baseline])
        assert "o = optrr" in plot
        assert "x = warner" in plot
        assert "privacy" in plot
        assert "o" in plot and "x" in plot

    def test_respects_dimensions(self, front):
        plot = ascii_scatter([front], width=40, height=10)
        lines = plot.splitlines()
        plot_rows = [line for line in lines if line.startswith("|")]
        assert len(plot_rows) == 10
        assert all(len(line) <= 41 for line in plot_rows)

    def test_empty_fronts_rejected(self):
        with pytest.raises(ValidationError):
            ascii_scatter([ParetoFront.from_points("empty", [])])

    def test_too_small_plot_rejected(self, front):
        with pytest.raises(ValidationError):
            ascii_scatter([front], width=5, height=2)


class TestFrontTable:
    def test_contains_header_and_rows(self, front):
        table = format_front_table(front)
        assert "optrr" in table
        assert "privacy" in table
        assert "0.2000" in table

    def test_empty_front(self):
        table = format_front_table(ParetoFront.from_points("empty", []))
        assert "(empty)" in table

    def test_subsamples_long_fronts(self):
        pairs = [(i / 200, 1e-4) for i in range(100)]
        front = ParetoFront.from_points("long", pairs, keep_dominated=True)
        table = format_front_table(front, max_rows=10)
        # Header + column header + at most 10 data rows.
        assert len(table.splitlines()) <= 12


class TestComparisonTable:
    def test_contains_names_and_counts(self, front, baseline):
        comparison = compare_fronts(front, baseline)
        table = format_comparison_table([comparison])
        assert "optrr" in table
        assert "warner" in table

    def test_empty_input(self):
        assert "no comparisons" in format_comparison_table([])


class TestPaperVsMeasured:
    def test_reproduced_flag(self):
        line = format_paper_vs_measured("fig4a", "claim", "measured", True)
        assert line.startswith("[REPRODUCED]")
        assert "fig4a" in line

    def test_diverged_flag(self):
        line = format_paper_vs_measured("fig4a", "claim", "measured", False)
        assert line.startswith("[DIVERGED]")
