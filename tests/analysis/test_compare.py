"""Tests for repro.analysis.compare."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.compare import compare_fronts
from repro.analysis.front import ParetoFront
from repro.exceptions import ValidationError


def make_front(name: str, pairs) -> ParetoFront:
    return ParetoFront.from_points(name, pairs, keep_dominated=True)


class TestCompareFronts:
    def test_clearly_better_candidate(self):
        candidate = make_front("cand", [(0.2, 1e-5), (0.5, 5e-5), (0.8, 2e-4)])
        baseline = make_front("base", [(0.5, 1e-4), (0.8, 4e-4)])
        comparison = compare_fronts(candidate, baseline)
        assert comparison.covers_wider_privacy_range
        assert comparison.extra_privacy_range == pytest.approx(0.3)
        assert comparison.candidate_wins > 0
        assert comparison.baseline_wins == 0
        assert comparison.candidate_dominates_shared_range
        assert comparison.mean_utility_ratio > 1.0
        assert comparison.hypervolume_candidate > comparison.hypervolume_baseline

    def test_identical_fronts_tie(self):
        pairs = [(0.3, 1e-4), (0.6, 5e-4)]
        comparison = compare_fronts(make_front("a", pairs), make_front("b", pairs))
        assert comparison.candidate_wins == 0
        assert comparison.baseline_wins == 0
        assert comparison.ties > 0
        assert comparison.extra_privacy_range == pytest.approx(0.0)
        assert comparison.mean_utility_ratio == pytest.approx(1.0)

    def test_worse_candidate_detected(self):
        candidate = make_front("cand", [(0.5, 2e-4), (0.7, 8e-4)])
        baseline = make_front("base", [(0.3, 5e-6), (0.5, 1e-4), (0.7, 4e-4)])
        comparison = compare_fronts(candidate, baseline)
        assert comparison.baseline_wins > 0
        assert not comparison.covers_wider_privacy_range
        assert comparison.mean_utility_ratio < 1.0

    def test_coverage_and_epsilon_direction(self):
        candidate = make_front("cand", [(0.3, 1e-5), (0.6, 5e-5)])
        baseline = make_front("base", [(0.3, 1e-4), (0.6, 5e-4)])
        comparison = compare_fronts(candidate, baseline)
        assert comparison.coverage_candidate_over_baseline == pytest.approx(1.0)
        assert comparison.additive_epsilon <= 0.0

    def test_disjoint_privacy_ranges(self):
        candidate = make_front("cand", [(0.1, 1e-5), (0.2, 2e-5)])
        baseline = make_front("base", [(0.7, 1e-4), (0.8, 2e-4)])
        comparison = compare_fronts(candidate, baseline)
        # No shared range: no wins/losses/ties recorded.
        assert comparison.candidate_wins + comparison.baseline_wins + comparison.ties == 0

    def test_empty_front_rejected(self):
        empty = ParetoFront.from_points("empty", [])
        nonempty = make_front("a", [(0.5, 1e-4)])
        with pytest.raises(ValidationError):
            compare_fronts(empty, nonempty)

    def test_n_probes_validation(self):
        front = make_front("a", [(0.5, 1e-4)])
        with pytest.raises(ValidationError):
            compare_fronts(front, front, n_probes=1)

    def test_mean_ratio_nan_when_no_shared_range(self):
        candidate = make_front("cand", [(0.1, 1e-5)])
        baseline = make_front("base", [(0.9, 1e-4)])
        comparison = compare_fronts(candidate, baseline)
        assert np.isnan(comparison.mean_utility_ratio)
