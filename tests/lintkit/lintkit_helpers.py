"""Helpers shared by the repro-lint self-tests."""

from __future__ import annotations

from pathlib import Path

from repro.lintkit import ProjectContext, all_rules, collect_files, run_rules
from repro.lintkit.model import Violation

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_tree(root: Path, rule_ids: set[str] | None = None) -> list[Violation]:
    """Run the analyzer over a fixture tree, optionally filtered by rule id."""
    rules = all_rules()
    if rule_ids is not None:
        rules = [rule for rule in rules if rule.rule_id in rule_ids]
    project = ProjectContext(root=root, files=collect_files(root, [root / "src"]))
    return run_rules(project, rules)
