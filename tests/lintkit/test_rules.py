"""Fixture-tree self-tests: every rule fires on tree_bad, stays silent on
tree_good.

The fixture trees under ``lint_fixtures/`` mirror the real repo layout
(``src/repro/...``) so scope prefixes and the project-level cache-key rule
resolve the same way they do on the actual tree.
"""

from __future__ import annotations

from pathlib import Path

from lintkit_helpers import lint_tree

from repro.lintkit import all_rules


def _by_rule(violations) -> dict[str, list]:
    grouped: dict[str, list] = {}
    for violation in violations:
        grouped.setdefault(violation.rule_id, []).append(violation)
    return grouped


def test_registry_exposes_the_documented_rules() -> None:
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
    ]
    names = {rule.rule_id: rule.name for rule in rules}
    assert names == {
        "RL001": "rng-discipline",
        "RL002": "wall-clock",
        "RL003": "checkpoint-symmetry",
        "RL004": "cache-key-completeness",
        "RL005": "ordering-hazard",
        "RL006": "backend-seam-discipline",
        "RL007": "exception-discipline",
    }


def test_good_tree_is_completely_clean(good_tree: Path) -> None:
    assert lint_tree(good_tree) == []


def test_bad_tree_total(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree)
    counts = {rule_id: len(found) for rule_id, found in _by_rule(violations).items()}
    assert counts == {
        "RL001": 5, "RL002": 5, "RL003": 3, "RL004": 3, "RL005": 2, "RL006": 4,
        "RL007": 3,
    }


def test_rng_discipline_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL001"})
    messages = [violation.message for violation in violations]
    assert len(violations) == 5
    assert all(violation.relpath == "src/repro/rng_helpers.py" for violation in violations)
    assert any("stdlib `random`" in message for message in messages)
    assert any("np.random.seed" in message for message in messages)
    assert any("np.random.rand" in message for message in messages)
    assert any("unseeded default_rng()" in message for message in messages)
    assert any("np.random.RandomState" in message for message in messages)


def test_rng_discipline_silent_on_seeded_generators(good_tree: Path) -> None:
    assert lint_tree(good_tree, {"RL001"}) == []


def test_wall_clock_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL002"})
    assert len(violations) == 5
    assert all(violation.relpath == "src/repro/timers.py" for violation in violations)
    joined = "\n".join(violation.message for violation in violations)
    assert "from time import perf_counter" in joined
    assert "time.time()" in joined
    assert "datetime.now()" in joined
    assert "os.urandom()" in joined
    assert "uuid.uuid4()" in joined


def test_wall_clock_allows_the_deadline_sites(good_tree: Path) -> None:
    # tree_good/src/repro/emoo/termination.py calls time.perf_counter — the
    # allowlisted timing site must not fire.
    assert lint_tree(good_tree, {"RL002"}) == []


def test_checkpoint_symmetry_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL003"})
    messages = [violation.message for violation in violations]
    assert len(violations) == 3
    assert any("writes key 'rng_state'" in message for message in messages)
    assert any("reads key 'extra'" in message for message in messages)
    assert any("SaveOnly defines state_document without restore_state" in m for m in messages)


def test_checkpoint_symmetry_accepts_conditional_writes(good_tree: Path) -> None:
    # SymmetricCodec writes "rng_state" via a conditional subscript store and
    # reads it back with .get(...) — both sides must be extracted.
    assert lint_tree(good_tree, {"RL003"}) == []


def test_cache_key_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL004"})
    messages = [violation.message for violation in violations]
    assert len(violations) == 3
    # The accepted-but-unmaterialized override key...
    assert any(
        "override key 'low_fidelity_fraction' is accepted but never materialized" in m
        for m in messages
    )
    # ...and both config fields missing from materialization and exemptions.
    assert any("OptRRConfig.low_fidelity_fraction" in m for m in messages)
    assert any("OptRRConfig.smoothing_epsilon" in m for m in messages)


def test_cache_key_silent_when_everything_is_materialized(good_tree: Path) -> None:
    assert lint_tree(good_tree, {"RL004"}) == []


def test_ordering_hazard_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL005"})
    messages = [violation.message for violation in violations]
    assert len(violations) == 2
    assert any("iteration directly over a set" in message for message in messages)
    assert any("first-match next(...)" in message for message in messages)


def test_ordering_hazard_accepts_sorted_iteration(good_tree: Path) -> None:
    assert lint_tree(good_tree, {"RL005"}) == []


def test_backend_seam_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL006"})
    messages = [violation.message for violation in violations]
    assert len(violations) == 4
    by_file = {violation.relpath for violation in violations}
    assert by_file == {
        "src/repro/metrics/evaluation.py",
        "src/repro/emoo/density.py",
    }
    assert any("np.linalg.slogdet" in message for message in messages)
    assert any("np.linalg.inv" in message for message in messages)
    assert any(
        "bypasses the backend's batched_safe_inverses kernel" in message
        for message in messages
    )
    assert any("from scipy.spatial.distance import" in message for message in messages)


def test_backend_seam_silent_on_backend_dispatch(good_tree: Path) -> None:
    # The good-tree seam modules go through active_backend() and import only
    # the DEFAULT_CONDITION_LIMIT configuration constant from utils.linalg.
    assert lint_tree(good_tree, {"RL006"}) == []


def test_backend_seam_ignores_out_of_scope_files(bad_tree: Path) -> None:
    # tree_bad/src/repro/rng_helpers.py et al. are outside the seam-owned
    # file list; RL006 must not wander beyond its three modules.
    violations = lint_tree(bad_tree, {"RL006"})
    assert all(
        violation.relpath
        in ("src/repro/metrics/evaluation.py", "src/repro/emoo/density.py")
        for violation in violations
    )


def test_exception_discipline_findings(bad_tree: Path) -> None:
    violations = lint_tree(bad_tree, {"RL007"})
    messages = [violation.message for violation in violations]
    assert len(violations) == 3
    assert all(
        violation.relpath == "src/repro/experiments/guards.py"
        for violation in violations
    )
    assert any("`except Exception:` swallows" in message for message in messages)
    assert any("bare `except:` swallows" in message for message in messages)
    assert any("`except BaseException:` swallows" in message for message in messages)


def test_exception_discipline_ignores_narrow_handlers(bad_tree: Path) -> None:
    # guards.py ends with an `except OSError:` that swallows — naming the
    # exception type is already a classification decision, so RL007 must not
    # anchor any violation there.
    violations = lint_tree(bad_tree, {"RL007"})
    last_handler_line = max(
        violation.line for violation in violations
    )
    text = (bad_tree / "src/repro/experiments/guards.py").read_text(encoding="utf-8")
    oserror_line = next(
        number
        for number, line in enumerate(text.splitlines(), start=1)
        if "except OSError" in line
    )
    assert last_handler_line < oserror_line


def test_exception_discipline_silent_on_disciplined_handlers(good_tree: Path) -> None:
    # tree_good/src/repro/experiments/guards.py re-raises, logs, uses the
    # bound exception, and pragma-justifies its one intentional silent site.
    assert lint_tree(good_tree, {"RL007"}) == []


def test_syntax_error_reported_once(tmp_path: Path) -> None:
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "broken.py").write_text("def oops(:\n", encoding="utf-8")
    violations = lint_tree(tmp_path)
    assert [violation.rule_id for violation in violations] == ["RL000"]
    assert "does not parse" in violations[0].message
