"""Shared fixtures for the repro-lint self-tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from lintkit_helpers import FIXTURES


@pytest.fixture
def bad_tree() -> Path:
    return FIXTURES / "tree_bad"


@pytest.fixture
def good_tree() -> Path:
    return FIXTURES / "tree_good"
