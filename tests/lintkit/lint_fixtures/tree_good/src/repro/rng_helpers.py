"""RL001 fixture (fixed): all randomness through a seeded Generator."""

import numpy as np


def sample_well(n, rng: np.random.Generator):
    return rng.random(n)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def make_streamed_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, 17]))
