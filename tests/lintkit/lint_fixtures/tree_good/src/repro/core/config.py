"""RL004 fixture (fixed): every field materialized or exempt."""

from dataclasses import dataclass


@dataclass(frozen=True)
class OptRRConfig:
    population_size: int = 40
    n_generations: int = 300
    seed: int | None = None
    low_fidelity_fraction: float = 1.0
