"""RL006 fixture (fixed): evaluation dispatches through the active backend."""

from repro.backend.registry import active_backend
from repro.utils.linalg import DEFAULT_CONDITION_LIMIT


def evaluate_stack(stack, prior, n_records):
    backend = active_backend()
    return backend.evaluate_stack(
        stack,
        prior,
        n_records,
        condition_limit=DEFAULT_CONDITION_LIMIT,
        cheap_posterior_bound=True,
    )
