"""RL006 fixture (fixed): distances dispatch through the active backend."""

from repro.backend.registry import active_backend


def pairwise_distances(points):
    return active_backend().pairwise_distances(points)
