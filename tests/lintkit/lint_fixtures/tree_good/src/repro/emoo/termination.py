"""RL002 allowlist fixture: this path IS the sanctioned timing site."""

import time


class Deadline:
    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self._started = time.perf_counter()

    def expired(self) -> bool:
        return time.perf_counter() - self._started >= self.seconds
