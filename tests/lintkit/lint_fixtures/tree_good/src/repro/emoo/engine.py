"""RL003/RL005 fixture (fixed): symmetric codec, sorted iteration."""


class SymmetricCodec:
    def __init__(self) -> None:
        self.population = []
        self.generation = 0
        self.rng_state = b""

    def state_document(self) -> dict:
        document = {
            "population": list(self.population),
            "generation": self.generation,
        }
        if self.rng_state:
            document["rng_state"] = self.rng_state.hex()
        return document

    def restore_state(self, document: dict) -> None:
        self.population = list(document["population"])
        self.generation = int(document["generation"])
        self.rng_state = bytes.fromhex(document.get("rng_state", ""))


def drain(jobs, weights):
    total = 0.0
    for job in sorted(set(jobs)):
        total += weights[job]
    first = next(
        (weight for key in sorted(weights) for weight in [weights[key]] if weight > 0.5),
        None,
    )
    return total, first
