"""RL007 good fixture: every broad handler classifies the failure."""

from __future__ import annotations

from repro.utils.logging import get_logger

logger = get_logger("repro.experiments.guards")


def load_optional_document(path):
    # Using the bound exception (rendering it into the fallback document)
    # counts as handling it.
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except Exception as exc:
        return {"status": "failed", "error": f"{type(exc).__name__}: {exc}"}


def best_effort_cleanup(resources) -> None:
    for resource in resources:
        try:
            resource.close()
        except Exception:  # repro-lint: allow[RL007] — teardown must not mask the original failure
            pass


def run_step(step, payload):
    try:
        return step(payload)
    except BaseException:
        logger.warning("step %r failed; re-raising", step)
        raise


def guard_transient(operation):
    try:
        return operation()
    except Exception:
        logger.error("operation failed without a narrow classification")
        return None
