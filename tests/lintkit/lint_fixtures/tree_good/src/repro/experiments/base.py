"""RL004 fixture (fixed): the registry materializes every accepted key."""

import os

DEFAULT_ACCEPTED_OVERRIDES = ("n_generations", "population_size", "low_fidelity_fraction")


def default_generations(fallback: int = 400) -> int:
    raw = os.environ.get("REPRO_GENERATIONS")
    return fallback if raw is None else int(raw)


def default_population(fallback: int = 40) -> int:
    raw = os.environ.get("REPRO_POPULATION")
    return fallback if raw is None else int(raw)


def default_low_fidelity_fraction(fallback: float = 1.0) -> float:
    raw = os.environ.get("REPRO_LOW_FIDELITY")
    return fallback if raw is None else float(raw)


def environment_override_defaults() -> dict[str, object]:
    return {
        "n_generations": default_generations(),
        "population_size": default_population(),
        "low_fidelity_fraction": default_low_fidelity_fraction(),
    }
