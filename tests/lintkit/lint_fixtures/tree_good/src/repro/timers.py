"""RL002 fixture (fixed): timestamps arrive as data from the caller."""


def stamp_result(result, elapsed_seconds: float, run_token: str):
    result["elapsed_seconds"] = float(elapsed_seconds)
    result["token"] = run_token
    return result
