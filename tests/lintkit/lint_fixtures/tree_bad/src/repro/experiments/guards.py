"""RL007 bad fixture: broad handlers that swallow the failure outright."""

from __future__ import annotations


def load_optional_document(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except Exception:
        return None


def best_effort_cleanup(resources) -> None:
    for resource in resources:
        try:
            resource.close()
        except:  # noqa: E722
            pass


def run_step(step, payload):
    try:
        return step(payload)
    except (ValueError, BaseException) as exc:
        return {"status": "failed"}


def read_sidecar(path):
    # Narrow handlers are a classification decision already: out of scope.
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return None
