"""RL004 fixture: the materialization registry misses an accepted key."""

import os

DEFAULT_ACCEPTED_OVERRIDES = ("n_generations", "population_size", "low_fidelity_fraction")


def default_generations(fallback: int = 400) -> int:
    raw = os.environ.get("REPRO_GENERATIONS")
    return fallback if raw is None else int(raw)


def default_population(fallback: int = 40) -> int:
    raw = os.environ.get("REPRO_POPULATION")
    return fallback if raw is None else int(raw)


def environment_override_defaults() -> dict[str, object]:
    # low_fidelity_fraction is missing: two runs under different
    # REPRO_LOW_FIDELITY values would share a cache key.
    return {
        "n_generations": default_generations(),
        "population_size": default_population(),
    }
