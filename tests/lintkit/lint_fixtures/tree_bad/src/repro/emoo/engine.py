"""RL003/RL005 fixture: broken checkpoint codecs and order hazards."""


class AsymmetricCodec:
    """Writes a key resume never reads, reads a key never written."""

    def __init__(self) -> None:
        self.population = []
        self.generation = 0
        self.rng_state = b""

    def state_document(self) -> dict:
        return {
            "population": list(self.population),
            "generation": self.generation,
            "rng_state": self.rng_state.hex(),  # seeded violation: never read back
        }

    def restore_state(self, document: dict) -> None:
        self.population = list(document["population"])
        self.generation = int(document["generation"])
        self.extra = document.get("extra")  # seeded violation: never written


class SaveOnly:
    """Seeded violation: a codec with no restore half at all."""

    def state_document(self) -> dict:
        return {"weights": [1.0]}


def drain(jobs, weights):
    total = 0.0
    for job in set(jobs):  # seeded violation: set iteration order
        total += weights[job]
    first = next(  # seeded violation below: first-match over a dict view
        (weight for weight in weights.values() if weight > 0.5),
        None,
    )
    return total, first
