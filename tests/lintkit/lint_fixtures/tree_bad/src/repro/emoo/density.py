"""RL006 fixture (broken): scipy smuggled past the pairwise-distance kernel."""

from scipy.spatial.distance import pdist, squareform


def pairwise_distances(points):
    return squareform(pdist(points))
