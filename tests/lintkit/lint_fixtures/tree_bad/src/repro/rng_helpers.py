"""RL001 fixture: every way randomness can escape the Generator channel."""

import random  # seeded violation: stdlib random import

import numpy as np


def sample_badly(n):
    np.random.seed(7)                  # seeded violation: legacy global seed
    values = np.random.rand(n)         # seeded violation: legacy global draw
    rng = np.random.default_rng()      # seeded violation: unseeded Generator
    return values + rng.random(n) + random.random()


def legacy_state():
    return np.random.RandomState(0)    # seeded violation: legacy RandomState
