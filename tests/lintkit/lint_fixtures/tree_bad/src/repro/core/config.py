"""RL004 fixture: config fields that never reach the cache key."""

from dataclasses import dataclass


@dataclass(frozen=True)
class OptRRConfig:
    population_size: int = 40
    n_generations: int = 300
    seed: int | None = None
    # Seeded violation: accepted as an override (see experiments/base.py)
    # but never materialized into environment_override_defaults().
    low_fidelity_fraction: float = 1.0
    # Seeded violation: brand-new evaluation knob, neither materialized nor
    # exempted — the PR-6 bug class.
    smoothing_epsilon: float = 0.0
