"""RL006 fixture (broken): private linear-algebra path next to the seam."""

import numpy as np

from repro.utils.linalg import batched_safe_inverses


def evaluate_stack(stack, prior, n_records):
    signs, _ = np.linalg.slogdet(stack)
    inverses = np.linalg.inv(stack[signs != 0])
    _, invertible = batched_safe_inverses(stack, condition_limit=1e12)
    disguised = stack @ prior[None, :, None]
    linear = (inverses @ disguised[signs != 0])[..., 0]
    return linear / float(n_records), invertible
