"""RL002 fixture: wall-clock and entropy reads outside the timing sites."""

import os
import time
import uuid
from datetime import datetime
from time import perf_counter  # seeded violation: smuggled clock read


def stamp_result(result):
    result["at"] = time.time()          # seeded violation: wall-clock read
    result["day"] = datetime.now()      # seeded violation: wall-clock read
    result["token"] = os.urandom(8)     # seeded violation: OS entropy
    result["id"] = uuid.uuid4()         # seeded violation: random UUID
    result["tick"] = perf_counter()
    return result
