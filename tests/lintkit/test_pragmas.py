"""Pragma parsing and suppression semantics."""

from __future__ import annotations

from pathlib import Path

from lintkit_helpers import lint_tree

from repro.lintkit.pragmas import parse_pragmas


def _tree_with(tmp_path: Path, body: str) -> Path:
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "module.py").write_text(body, encoding="utf-8")
    return tmp_path


def test_parse_pragmas_maps_lines_to_tokens() -> None:
    text = (
        "x = 1  # repro-lint: allow[rng-discipline]\n"
        "y = 2\n"
        "z = 3  # repro-lint: allow[RL002, wall-clock]\n"
    )
    pragmas = parse_pragmas(text)
    assert pragmas == {
        1: frozenset({"rng-discipline"}),
        3: frozenset({"RL002", "wall-clock"}),
    }


def test_pragma_inside_string_literal_is_not_a_pragma() -> None:
    text = 's = "# repro-lint: allow[rng-discipline]"\n'
    assert parse_pragmas(text) == {}


def test_pragma_suppresses_by_rule_name(tmp_path: Path) -> None:
    tree = _tree_with(
        tmp_path,
        "import random  # repro-lint: allow[rng-discipline]\n",
    )
    assert lint_tree(tree, {"RL001"}) == []


def test_pragma_suppresses_by_rule_id(tmp_path: Path) -> None:
    tree = _tree_with(
        tmp_path,
        "import random  # repro-lint: allow[RL001]\n",
    )
    assert lint_tree(tree, {"RL001"}) == []


def test_pragma_wildcard_suppresses_every_rule(tmp_path: Path) -> None:
    tree = _tree_with(
        tmp_path,
        "import random  # repro-lint: allow[*]\n",
    )
    assert lint_tree(tree) == []


def test_pragma_for_a_different_rule_does_not_suppress(tmp_path: Path) -> None:
    tree = _tree_with(
        tmp_path,
        "import random  # repro-lint: allow[wall-clock]\n",
    )
    violations = lint_tree(tree, {"RL001"})
    assert len(violations) == 1
    assert violations[0].rule_id == "RL001"


def test_pragma_only_covers_its_own_line(tmp_path: Path) -> None:
    tree = _tree_with(
        tmp_path,
        "# repro-lint: allow[rng-discipline]\nimport random\n",
    )
    violations = lint_tree(tree, {"RL001"})
    assert len(violations) == 1


def test_string_literal_pragma_does_not_suppress(tmp_path: Path) -> None:
    tree = _tree_with(
        tmp_path,
        'import random; s = "# repro-lint: allow[rng-discipline]"\n',
    )
    violations = lint_tree(tree, {"RL001"})
    assert len(violations) == 1
