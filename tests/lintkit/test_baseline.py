"""Baseline workflow: write -> justify -> stale -> forbid."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lintkit.baseline import (
    JUSTIFICATION_PLACEHOLDER,
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.lintkit.model import Violation
from repro.lintkit.runner import main


def _violation(snippet: str = "import random") -> Violation:
    return Violation(
        rule_id="RL001",
        rule_name="rng-discipline",
        relpath="src/repro/module.py",
        line=3,
        column=1,
        message="stdlib `random` is banned",
        snippet=snippet,
    )


def _tree(tmp_path: Path) -> tuple[Path, Path]:
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "module.py").write_text("import random\n", encoding="utf-8")
    return tmp_path, tmp_path / "baseline.json"


def _run(tree: Path, baseline: Path, *extra: str) -> int:
    return main(["--root", str(tree), "--baseline", str(baseline), "src", *extra])


def _justify_all(baseline: Path, reason: str) -> None:
    document = json.loads(baseline.read_text(encoding="utf-8"))
    for entry in document["entries"]:
        entry["justification"] = reason
    baseline.write_text(json.dumps(document), encoding="utf-8")


def test_fingerprint_survives_line_drift() -> None:
    anchored_low = _violation()
    anchored_high = Violation(**{**anchored_low.__dict__, "line": 99, "column": 5})
    assert anchored_low.fingerprint() == anchored_high.fingerprint()


def test_fingerprint_normalizes_whitespace_only() -> None:
    assert _violation("import   random").fingerprint() == _violation().fingerprint()
    assert _violation("import randoms").fingerprint() != _violation().fingerprint()


def test_load_absent_baseline_is_empty(tmp_path: Path) -> None:
    baseline = load_baseline(tmp_path / "missing.json")
    assert len(baseline) == 0
    assert not baseline.matches(_violation())


def test_load_rejects_wrong_version(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="version-1"):
        load_baseline(path)


def test_write_then_load_round_trips(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline(path, [_violation()])
    baseline = load_baseline(path)
    assert len(baseline) == 1
    assert baseline.matches(_violation())
    assert baseline.unjustified_entries() == list(baseline.entries)
    assert baseline.entries[0].justification == JUSTIFICATION_PLACEHOLDER


def test_stale_entries_detect_fixed_violations(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    baseline = write_baseline(path, [_violation()])
    assert baseline.stale_entries([_violation()]) == []
    assert len(baseline.stale_entries([])) == 1


def test_workflow_write_justify_fix(tmp_path: Path) -> None:
    tree, baseline = _tree(tmp_path)

    # A fresh violation fails the run.
    assert _run(tree, baseline) == 1

    # Snapshot it; the run now exits 0 from --write-baseline itself...
    assert _run(tree, baseline, "--write-baseline") == 0
    document = json.loads(baseline.read_text(encoding="utf-8"))
    assert len(document["entries"]) == 1
    assert document["entries"][0]["rule"] == "RL001"

    # ...but the placeholder justification still fails a normal run.
    assert _run(tree, baseline) == 1

    # Filling in the justification makes the tree pass.
    _justify_all(baseline, "legacy seed helper, scheduled for PR 8")
    assert _run(tree, baseline) == 0

    # Fixing the violation turns the entry stale — which also fails.
    (tree / "src" / "repro" / "module.py").write_text("x = 1\n", encoding="utf-8")
    assert _run(tree, baseline) == 1


def test_forbid_baseline_fails_on_any_entry(tmp_path: Path) -> None:
    tree, baseline = _tree(tmp_path)
    assert _run(tree, baseline, "--write-baseline") == 0
    _justify_all(baseline, "justified, but CI must still flag it")
    assert _run(tree, baseline) == 0
    assert _run(tree, baseline, "--forbid-baseline") == 1


def test_no_baseline_flag_reports_everything(tmp_path: Path) -> None:
    tree, baseline = _tree(tmp_path)
    assert _run(tree, baseline, "--write-baseline") == 0
    _justify_all(baseline, "fine")
    assert _run(tree, baseline) == 0
    assert _run(tree, baseline, "--no-baseline") == 1


def test_unreadable_baseline_is_a_usage_error(tmp_path: Path) -> None:
    tree, baseline = _tree(tmp_path)
    baseline.write_text("not json", encoding="utf-8")
    assert _run(tree, baseline) == 2


def test_empty_baseline_has_nothing_to_report() -> None:
    baseline = Baseline()
    assert len(baseline) == 0
    assert not baseline.matches(_violation())
    assert baseline.stale_entries([]) == []
    assert baseline.unjustified_entries() == []
