"""Entry points and the self-gate: ``tools/lint_repro.py``, ``optrr lint``,
the real tree staying clean, and the cache-key acceptance check."""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from lintkit_helpers import REPO_ROOT, lint_tree

from repro.cli import main as cli_main
from repro.lintkit.runner import main as runner_main

MATERIALIZATION_LINE = '"low_fidelity_fraction": default_low_fidelity_fraction(),'


def test_list_rules_prints_all_five(capsys: pytest.CaptureFixture[str]) -> None:
    assert runner_main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in output


def test_missing_path_is_a_usage_error(tmp_path: Path) -> None:
    assert runner_main(["--root", str(tmp_path), "no/such/dir"]) == 2


def test_bad_root_is_a_usage_error(tmp_path: Path) -> None:
    assert runner_main(["--root", str(tmp_path / "missing")]) == 2


def test_cli_subcommand_dispatches(bad_tree: Path, capsys: pytest.CaptureFixture[str]) -> None:
    assert cli_main(["lint", "--list-rules"]) == 0
    assert "rng-discipline" in capsys.readouterr().out
    assert (
        cli_main(["lint", "--root", str(bad_tree), "--no-baseline", "src"]) == 1
    )
    assert "RL001[rng-discipline]" in capsys.readouterr().out


def test_tools_wrapper_runs_without_pythonpath(tmp_path: Path) -> None:
    # The wrapper must bootstrap src/ onto sys.path on its own.
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint_repro.py"), "--list-rules"],
        capture_output=True,
        text=True,
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr
    assert "RL005" in result.stdout


def test_real_tree_is_clean() -> None:
    """The self-gate: the repository must pass its own analyzer.

    Mirrors the CI invocation (default roots, committed baseline,
    --forbid-baseline).
    """
    assert runner_main(["--root", str(REPO_ROOT), "--forbid-baseline"]) == 0


def test_committed_baseline_is_empty() -> None:
    import json

    document = json.loads(
        (REPO_ROOT / "tools" / "repro_lint_baseline.json").read_text(encoding="utf-8")
    )
    assert document == {"entries": [], "version": 1}


def _copy_real_pair(tmp_path: Path) -> Path:
    """A tmp tree holding copies of the real config + materialization files."""
    for relpath in ("src/repro/core/config.py", "src/repro/experiments/base.py"):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / relpath, target)
    return tmp_path


def test_cache_key_rule_passes_on_real_files(tmp_path: Path) -> None:
    tree = _copy_real_pair(tmp_path)
    assert lint_tree(tree, {"RL004"}) == []


def test_cache_key_rule_catches_dropped_materialization(tmp_path: Path) -> None:
    """Acceptance check from the issue: deleting the low_fidelity_fraction
    materialization from experiments/base.py must make RL004 fire."""
    tree = _copy_real_pair(tmp_path)
    base = tree / "src" / "repro" / "experiments" / "base.py"
    needle = MATERIALIZATION_LINE.replace(" ", "")
    lines = [
        line
        for line in base.read_text(encoding="utf-8").splitlines(keepends=True)
        if needle not in line.replace(" ", "")
    ]
    base.write_text("".join(lines), encoding="utf-8")
    assert needle not in base.read_text(encoding="utf-8").replace(" ", "")

    violations = lint_tree(tree, {"RL004"})
    assert violations, "RL004 must fire when the materialization line is deleted"
    assert all(violation.rule_id == "RL004" for violation in violations)
    assert any("low_fidelity_fraction" in violation.message for violation in violations)
