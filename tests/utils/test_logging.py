"""Tests for repro.utils.logging."""

from __future__ import annotations

from repro.utils.logging import get_logger


def test_root_logger_name():
    assert get_logger().name == "repro"


def test_namespaced_logger():
    assert get_logger("core.optimizer").name == "repro.core.optimizer"


def test_already_namespaced_logger_is_not_doubled():
    assert get_logger("repro.rr").name == "repro.rr"
