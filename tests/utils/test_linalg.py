"""Tests for repro.utils.linalg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SingularMatrixError
from repro.utils.linalg import condition_number, is_invertible, safe_inverse


class TestConditionNumber:
    def test_identity_has_condition_one(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)

    def test_singular_matrix_has_huge_condition(self):
        singular = np.ones((3, 3))
        assert condition_number(singular) > 1e12


class TestIsInvertible:
    def test_identity_is_invertible(self):
        assert is_invertible(np.eye(3))

    def test_uniform_matrix_is_not(self):
        assert not is_invertible(np.full((3, 3), 1.0 / 3))

    def test_respects_custom_limit(self):
        nearly_singular = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-9]])
        assert is_invertible(nearly_singular, condition_limit=1e12)
        assert not is_invertible(nearly_singular, condition_limit=1e6)


class TestSafeInverse:
    def test_inverts_identity(self):
        np.testing.assert_allclose(safe_inverse(np.eye(3)), np.eye(3))

    def test_round_trip(self):
        matrix = np.array([[0.8, 0.1], [0.2, 0.9]])
        inverse = safe_inverse(matrix)
        np.testing.assert_allclose(matrix @ inverse, np.eye(2), atol=1e-12)

    def test_raises_on_singular(self):
        with pytest.raises(SingularMatrixError):
            safe_inverse(np.ones((3, 3)))
