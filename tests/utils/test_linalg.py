"""Tests for repro.utils.linalg."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SingularMatrixError
from repro.exceptions import ValidationError
from repro.utils.linalg import (
    DEFAULT_CONDITION_LIMIT,
    batched_condition_numbers,
    batched_safe_inverses,
    condition_number,
    is_invertible,
    one_norm_condition_estimate,
    safe_inverse,
)


class TestConditionNumber:
    def test_identity_has_condition_one(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)

    def test_singular_matrix_has_huge_condition(self):
        singular = np.ones((3, 3))
        assert condition_number(singular) > 1e12


class TestIsInvertible:
    def test_identity_is_invertible(self):
        assert is_invertible(np.eye(3))

    def test_uniform_matrix_is_not(self):
        assert not is_invertible(np.full((3, 3), 1.0 / 3))

    def test_respects_custom_limit(self):
        nearly_singular = np.array([[1.0, 1.0], [1.0, 1.0 + 1e-9]])
        assert is_invertible(nearly_singular, condition_limit=1e12)
        assert not is_invertible(nearly_singular, condition_limit=1e6)


class TestSafeInverse:
    def test_inverts_identity(self):
        np.testing.assert_allclose(safe_inverse(np.eye(3)), np.eye(3))

    def test_round_trip(self):
        matrix = np.array([[0.8, 0.1], [0.2, 0.9]])
        inverse = safe_inverse(matrix)
        np.testing.assert_allclose(matrix @ inverse, np.eye(2), atol=1e-12)

    def test_raises_on_singular(self):
        with pytest.raises(SingularMatrixError):
            safe_inverse(np.ones((3, 3)))


class TestBatchedConditionNumbers:
    def test_matches_scalar_per_matrix(self):
        rng = np.random.default_rng(0)
        stack = rng.dirichlet(np.ones(5), size=(6, 5)).transpose(0, 2, 1)
        batched = batched_condition_numbers(stack)
        for index in range(stack.shape[0]):
            assert batched[index] == pytest.approx(condition_number(stack[index]))

    def test_singular_member_gets_inf(self):
        stack = np.stack([np.eye(3), np.ones((3, 3)) / 3.0])
        batched = batched_condition_numbers(stack)
        assert batched[0] == pytest.approx(1.0)
        assert batched[1] > 1e12 or np.isinf(batched[1])

    def test_empty_stack(self):
        assert batched_condition_numbers(np.empty((0, 3, 3))).size == 0

    def test_rejects_non_stack(self):
        with pytest.raises(ValidationError):
            batched_condition_numbers(np.eye(3))


class TestOneNormConditionEstimate:
    def test_identity_estimate_is_one(self):
        assert one_norm_condition_estimate(np.eye(3), np.eye(3)) == pytest.approx(1.0)

    def test_scalar_and_stack_forms_agree(self):
        rng = np.random.default_rng(3)
        stack = rng.dirichlet(np.ones(4) * 2, size=(6, 4)).transpose(0, 2, 1)
        inverses = np.linalg.inv(stack)
        batched = one_norm_condition_estimate(stack, inverses)
        for index in range(stack.shape[0]):
            scalar = one_norm_condition_estimate(stack[index], inverses[index])
            assert float(batched[index]) == pytest.approx(float(scalar))

    def test_bounds_two_norm_condition_within_factor_n(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            matrix = rng.dirichlet(np.ones(5), size=5).T
            estimate = float(one_norm_condition_estimate(matrix, np.linalg.inv(matrix)))
            cond2 = condition_number(matrix)
            assert estimate / 5.0 <= cond2 * (1 + 1e-9)
            assert cond2 / 5.0 <= estimate * (1 + 1e-9)


def _near_singular_stochastic(t: float) -> np.ndarray:
    """Column-stochastic matrix whose second column is a ``t``-blend away from
    the first — near-singular for tiny ``t``."""
    base = np.array([0.5, 0.3, 0.2])
    other = np.array([0.2, 0.5, 0.3])
    matrix = np.column_stack([base, (1 - t) * base + t * other, [0.1, 0.1, 0.8]])
    return matrix / matrix.sum(axis=0)


class TestDivergenceBandRegression:
    """The former 1-norm/2-norm divergence band (PR 1's documented wart).

    The batch path always classified by the 1-norm estimate while the scalar
    path used the SVD 2-norm condition number; the two bound each other only
    within a factor of ``n``, so matrices whose estimates straddle the
    condition limit were classified differently.  Classification is now
    unified on the 1-norm estimate, so every path must agree for every matrix
    — in particular inside the band.
    """

    BLENDS = np.geomspace(1e-13, 1e-10, 60)

    def _band_matrices(self):
        found = []
        for t in self.BLENDS:
            matrix = _near_singular_stochastic(float(t))
            try:
                estimate = float(
                    one_norm_condition_estimate(matrix, np.linalg.inv(matrix))
                )
            except np.linalg.LinAlgError:
                continue
            if (condition_number(matrix) < DEFAULT_CONDITION_LIMIT) != (
                estimate < DEFAULT_CONDITION_LIMIT
            ):
                found.append(matrix)
        return found

    def test_band_is_nonempty(self):
        # Guard: the scan actually produces matrices where the old scalar
        # (2-norm) rule and the batch (1-norm) rule disagree.
        assert self._band_matrices()

    def test_scalar_and_batch_agree_inside_the_band(self):
        for matrix in self._band_matrices():
            scalar = is_invertible(matrix)
            _, invertible = batched_safe_inverses(matrix[None])
            assert scalar == bool(invertible[0])
            if scalar:
                safe_inverse(matrix)
            else:
                with pytest.raises(SingularMatrixError):
                    safe_inverse(matrix)

    def test_scalar_and_batch_agree_across_the_whole_scan(self):
        stack = np.stack([_near_singular_stochastic(float(t)) for t in self.BLENDS])
        _, invertible = batched_safe_inverses(stack)
        for index in range(stack.shape[0]):
            assert bool(invertible[index]) == is_invertible(stack[index])


class TestBatchedSafeInverses:
    def test_round_trip_for_invertible_members(self):
        rng = np.random.default_rng(1)
        stack = rng.dirichlet(np.ones(4) * 3, size=(5, 4)).transpose(0, 2, 1)
        inverses, invertible = batched_safe_inverses(stack)
        assert invertible.all()
        for index in range(stack.shape[0]):
            np.testing.assert_allclose(
                stack[index] @ inverses[index], np.eye(4), atol=1e-9
            )

    def test_singular_members_are_masked_with_zero_rows(self):
        stack = np.stack([np.eye(3), np.ones((3, 3)) / 3.0, np.eye(3)])
        inverses, invertible = batched_safe_inverses(stack)
        np.testing.assert_array_equal(invertible, [True, False, True])
        np.testing.assert_array_equal(inverses[1], np.zeros((3, 3)))

    def test_classification_matches_is_invertible(self):
        rng = np.random.default_rng(2)
        matrices = [rng.dirichlet(np.ones(4), size=4).T for _ in range(8)]
        matrices.append(np.full((4, 4), 0.25))
        duplicated = rng.dirichlet(np.ones(4), size=4).T
        duplicated[:, 1] = duplicated[:, 0]
        matrices.append(duplicated)
        stack = np.stack(matrices)
        _, invertible = batched_safe_inverses(stack)
        for index in range(stack.shape[0]):
            assert invertible[index] == is_invertible(stack[index])

    def test_empty_stack(self):
        inverses, invertible = batched_safe_inverses(np.empty((0, 2, 2)))
        assert inverses.shape == (0, 2, 2)
        assert invertible.size == 0
