"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, RRMatrixError, ValidationError
from repro.utils.validation import (
    check_in_unit_interval,
    check_positive_int,
    check_probability_vector,
    check_square_matrix,
    check_stochastic_columns,
    normalize_probabilities,
)


class TestCheckPositiveInt:
    def test_accepts_positive_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")


class TestCheckInUnitInterval:
    def test_accepts_bounds_by_default(self):
        assert check_in_unit_interval(0.0, "p") == 0.0
        assert check_in_unit_interval(1.0, "p") == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval(0.0, "p", inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval(1.0, "p", inclusive_high=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval(1.2, "p")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_in_unit_interval(float("nan"), "p")


class TestCheckProbabilityVector:
    def test_accepts_valid_vector(self):
        result = check_probability_vector([0.25, 0.25, 0.5])
        assert result.sum() == pytest.approx(1.0)

    def test_rejects_non_normalised(self):
        with pytest.raises(DataError, match="sum to 1"):
            check_probability_vector([0.5, 0.6])

    def test_rejects_negative(self):
        with pytest.raises(DataError, match="non-negative"):
            check_probability_vector([1.2, -0.2])

    def test_rejects_matrix(self):
        with pytest.raises(DataError, match="one-dimensional"):
            check_probability_vector(np.eye(2))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            check_probability_vector([])

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="finite"):
            check_probability_vector([np.nan, 1.0])

    def test_clips_tiny_negatives(self):
        result = check_probability_vector(np.array([1.0 + 1e-12, -1e-12]))
        assert result.min() >= 0.0


class TestNormalizeProbabilities:
    def test_normalises(self):
        result = normalize_probabilities([2.0, 2.0])
        np.testing.assert_allclose(result, [0.5, 0.5])

    def test_rejects_zero_sum(self):
        with pytest.raises(DataError, match="positive sum"):
            normalize_probabilities([0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(DataError):
            normalize_probabilities([1.0, -1.0])


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        result = check_square_matrix(np.eye(3))
        assert result.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(RRMatrixError, match="square"):
            check_square_matrix(np.ones((2, 3)))

    def test_rejects_nan(self):
        matrix = np.eye(2)
        matrix[0, 0] = np.nan
        with pytest.raises(RRMatrixError, match="finite"):
            check_square_matrix(matrix)


class TestCheckStochasticColumns:
    def test_accepts_column_stochastic(self):
        matrix = np.array([[0.7, 0.2], [0.3, 0.8]])
        result = check_stochastic_columns(matrix)
        np.testing.assert_allclose(result.sum(axis=0), 1.0)

    def test_rejects_bad_column_sum(self):
        with pytest.raises(RRMatrixError, match="sum to 1"):
            check_stochastic_columns(np.array([[0.7, 0.2], [0.4, 0.8]]))

    def test_rejects_entries_above_one(self):
        with pytest.raises(RRMatrixError, match=r"\[0, 1\]"):
            check_stochastic_columns(np.array([[1.5, 0.0], [-0.5, 1.0]]))
