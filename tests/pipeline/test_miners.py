"""Tests for the miner registry and the built-in miners."""

from __future__ import annotations

import pytest

from repro.data.workload import build_workload
from repro.exceptions import ValidationError
from repro.pipeline.miners import (
    Miner,
    available_miners,
    get_miner,
    register_miner,
)
from repro.pipeline.runner import disguise_workload
from repro.rr.schemes import warner_matrix


@pytest.fixture(scope="module")
def workload():
    return build_workload("adult:education", 5000, 0)


@pytest.fixture(scope="module")
def matrix(workload):
    return warner_matrix(workload.n_categories, 0.7)


@pytest.fixture(scope="module")
def disguised(workload, matrix):
    return disguise_workload(workload, matrix)


class TestRegistry:
    def test_builtins_available(self):
        assert {"tree", "rules", "distribution"} <= set(available_miners())

    def test_alias_resolves(self):
        assert get_miner("dist").name == "distribution"

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError, match="unknown miner"):
            get_miner("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_miner(Miner("tree", "dupe", lambda *a: {}))

    def test_effective_params_merges_and_casts(self):
        params = get_miner("rules").effective_params({"min_support": "0.2"})
        assert params["min_support"] == 0.2
        assert params["min_confidence"] == 0.5

    def test_effective_params_rejects_unknown_key(self):
        with pytest.raises(ValidationError, match="does not accept"):
            get_miner("tree").effective_params({"bogus": 1})


class TestTreeMiner:
    def test_metrics_shape_and_sanity(self, workload, disguised, matrix):
        miner = get_miner("tree")
        metrics = miner.run(workload, disguised, matrix, miner.effective_params(None))
        assert set(metrics) >= {
            "accuracy", "clean_accuracy", "accuracy_ratio", "majority_baseline",
        }
        # The planted signal must be learnable from clean data...
        assert metrics["clean_accuracy"] > metrics["majority_baseline"] + 0.02
        # ...and mostly survive a mild disguise.
        assert metrics["accuracy"] > metrics["majority_baseline"]
        assert 0.0 < metrics["accuracy_ratio"] <= 1.05

    def test_deterministic(self, workload, disguised, matrix):
        miner = get_miner("tree")
        params = miner.effective_params(None)
        assert miner.run(workload, disguised, matrix, params) == miner.run(
            workload, disguised, matrix, params
        )


class TestRulesMiner:
    def test_metrics_shape_and_bounds(self, workload, disguised, matrix):
        miner = get_miner("rules")
        metrics = miner.run(workload, disguised, matrix, miner.effective_params(None))
        assert set(metrics) == {"precision", "recall", "f1", "n_rules", "n_clean_rules"}
        for key in ("precision", "recall", "f1"):
            assert 0.0 <= metrics[key] <= 1.0
        assert metrics["n_clean_rules"] > 0

    def test_identity_disguise_recovers_clean_rules(self, workload):
        from repro.rr.matrix import RRMatrix

        identity = RRMatrix.identity(workload.n_categories)
        miner = get_miner("rules")
        metrics = miner.run(
            workload, workload.dataset, identity, miner.effective_params(None)
        )
        assert metrics["precision"] == 1.0
        assert metrics["recall"] == 1.0


class TestDistributionMiner:
    def test_metrics_shape(self, workload, disguised, matrix):
        miner = get_miner("distribution")
        metrics = miner.run(workload, disguised, matrix, miner.effective_params(None))
        assert set(metrics) == {"l1_error", "l2_error", "mse"}
        assert 0.0 <= metrics["l1_error"] <= 2.0
        assert metrics["l2_error"] <= metrics["l1_error"] + 1e-12

    def test_identity_disguise_has_zero_error(self, workload):
        from repro.rr.matrix import RRMatrix

        identity = RRMatrix.identity(workload.n_categories)
        miner = get_miner("distribution")
        metrics = miner.run(
            workload, workload.dataset, identity, miner.effective_params(None)
        )
        assert metrics["l1_error"] < 1e-12

    def test_iterative_method_accepted(self, workload, disguised, matrix):
        miner = get_miner("distribution")
        metrics = miner.run(
            workload, disguised, matrix, miner.effective_params({"method": "iterative"})
        )
        assert metrics["l1_error"] < 0.5
