"""Tests for pipeline execution: determinism, caching, degradation.

The two properties the subsystem guarantees:

* **Byte-determinism** — the same spec produces byte-identical aggregate and
  result documents across worker counts and cache states (the acceptance
  criterion of the pipeline subsystem).
* **Monotone utility degradation** — as the disguise strengthens (privacy
  rises), every miner's utility metric degrades monotonically: this is the
  paper's privacy/utility trade-off measured end to end through real mining.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.io import (
    dump_canonical_json,
    load_pipeline_result,
    pipeline_result_from_dict,
    pipeline_result_to_dict,
    save_pipeline_result,
)
from repro.pipeline import (
    PipelineScheme,
    disguise_workload,
    plan_pipeline,
    run_pipeline,
)
from repro.data.workload import build_workload
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix

#: Small but signal-bearing workload shared by the determinism tests.
FAST = dict(n_records=3000)


@pytest.fixture(scope="module")
def spec():
    return plan_pipeline(
        "adult:education",
        schemes=["warner:0.8", "warner:0.5"],
        miners=["tree", "rules", "distribution"],
        seeds=[0, 1],
        **FAST,
    )


@pytest.fixture(scope="module")
def serial_cold(spec):
    return run_pipeline(spec, n_jobs=1)


class TestRunPipeline:
    def test_cells_follow_grid_order(self, spec, serial_cold):
        expected = [
            (task.scheme.name, task.seed, task.miner) for task in spec.tasks()
        ]
        actual = [(cell.scheme, cell.seed, cell.miner) for cell in serial_cold.cells]
        assert actual == expected

    def test_evaluations_cover_every_scheme_in_order(self, spec, serial_cold):
        assert [e.scheme for e in serial_cold.evaluations] == [
            s.name for s in spec.schemes
        ]
        # Stronger disguise => more privacy, less utility.
        assert serial_cold.evaluations[1].privacy > serial_cold.evaluations[0].privacy

    def test_metrics_for_lookup(self, serial_cold):
        metrics = serial_cold.metrics_for("warner:0.8", "tree", 0)
        assert "accuracy" in metrics
        with pytest.raises(ValidationError, match="not part"):
            serial_cold.metrics_for("warner:0.8", "tree", 99)

    def test_singular_scheme_rejected_up_front(self):
        n = 4
        uniform = PipelineScheme("uniform", RRMatrix.uniform(n))
        spec = plan_pipeline("normal", schemes=[uniform], miners=["tree"],
                             seeds=[0], n_records=500, n_categories=n)
        with pytest.raises(ValidationError, match="not invertible"):
            run_pipeline(spec)


class TestDeterminism:
    """The acceptance property: byte-identical documents no matter how the
    pipeline was executed (worker count, cache state)."""

    def test_parallel_matches_serial_byte_for_byte(self, spec, serial_cold):
        parallel = run_pipeline(spec, n_jobs=2)
        assert parallel.aggregate_json() == serial_cold.aggregate_json()
        assert dump_canonical_json(parallel.result_document()) == dump_canonical_json(
            serial_cold.result_document()
        )

    def test_cached_replay_matches_byte_for_byte(self, spec, serial_cold, tmp_path):
        warmup = run_pipeline(spec, n_jobs=2, cache_dir=tmp_path)
        replay = run_pipeline(spec, n_jobs=1, cache_dir=tmp_path)
        assert warmup.n_cache_hits == 0
        assert replay.n_cache_hits == len(spec.tasks())
        assert warmup.aggregate_json() == serial_cold.aggregate_json()
        assert replay.aggregate_json() == serial_cold.aggregate_json()

    def test_adding_a_miner_reuses_existing_cells(self, tmp_path):
        base = plan_pipeline("normal", schemes=["warner:0.8"],
                             miners=["distribution"], seeds=[0, 1], n_records=800)
        run_pipeline(base, cache_dir=tmp_path)
        extended = plan_pipeline("normal", schemes=["warner:0.8"],
                                 miners=["distribution", "rules"], seeds=[0, 1],
                                 n_records=800)
        result = run_pipeline(extended, cache_dir=tmp_path)
        # The distribution cells replay; only the rules cells compute.
        assert result.n_cache_hits == 2

    def test_disguise_is_scheme_and_seed_deterministic(self):
        workload = build_workload("normal", 1000, 3)
        matrix = warner_matrix(10, 0.6)
        first = disguise_workload(workload, matrix)
        second = disguise_workload(workload, matrix)
        np.testing.assert_array_equal(first.records, second.records)
        other_scheme = disguise_workload(workload, warner_matrix(10, 0.61))
        assert not np.array_equal(first.records, other_scheme.records)


class TestMonotoneDegradation:
    """Tightening the privacy (stronger disguise) must degrade every miner's
    utility monotonically — the paper's trade-off, measured through mining."""

    @pytest.fixture(scope="class")
    def aggregate(self):
        spec = plan_pipeline(
            "adult:education",
            schemes=["warner:0.9", "warner:0.6", "warner:0.35", "warner:0.15"],
            miners=["tree", "rules", "distribution"],
            seeds=[0, 1],
            n_records=6000,
        )
        return run_pipeline(spec, n_jobs=2).aggregate_document()

    def _series(self, aggregate, miner, metric):
        return [row["miners"][miner][metric]["mean"] for row in aggregate["schemes"]]

    def test_privacy_increases_along_the_sweep(self, aggregate):
        privacy = [row["privacy"] for row in aggregate["schemes"]]
        assert privacy == sorted(privacy)
        assert privacy[-1] > privacy[0] + 0.3

    def test_tree_accuracy_degrades_monotonically(self, aggregate):
        accuracy = self._series(aggregate, "tree", "accuracy")
        for earlier, later in zip(accuracy, accuracy[1:]):
            assert later <= earlier + 0.01  # noise tolerance per step
        assert accuracy[-1] < accuracy[0] - 0.01

    def test_rule_f1_degrades_monotonically(self, aggregate):
        f1 = self._series(aggregate, "rules", "f1")
        for earlier, later in zip(f1, f1[1:]):
            assert later <= earlier + 0.02
        assert f1[-1] < f1[0]

    def test_distribution_error_grows_strictly(self, aggregate):
        l1 = self._series(aggregate, "distribution", "l1_error")
        for earlier, later in zip(l1, l1[1:]):
            assert later > earlier


class TestPipelineResultIO:
    def test_document_round_trips_byte_identically(self, serial_cold):
        document = pipeline_result_to_dict(serial_cold)
        assert document["type"] == "pipeline_result"
        again = pipeline_result_to_dict(pipeline_result_from_dict(document))
        assert dump_canonical_json(again) == dump_canonical_json(document)

    def test_save_and_load(self, serial_cold, tmp_path):
        path = save_pipeline_result(serial_cold, tmp_path / "result.json")
        loaded = load_pipeline_result(path)
        assert loaded.spec.data == serial_cold.spec.data
        assert loaded.aggregate_json() == serial_cold.aggregate_json()

    def test_loaded_result_resets_cache_provenance(self, serial_cold, tmp_path):
        path = save_pipeline_result(serial_cold, tmp_path / "result.json")
        assert load_pipeline_result(path).n_cache_hits == 0
