"""Tests for pipeline specification, scheme resolution and cache keys."""

from __future__ import annotations

import pytest

import repro
from repro.core.result import OptimizationResult, ParetoPoint
from repro.exceptions import ValidationError
from repro.pipeline.spec import (
    PipelineScheme,
    parse_seed_argument,
    plan_pipeline,
    resolve_scheme_argument,
    schemes_from_front,
)
from repro.rr.schemes import warner_matrix


class TestParseSeedArgument:
    def test_count(self):
        assert parse_seed_argument("5") == (0, 1, 2, 3, 4)

    def test_inclusive_range(self):
        assert parse_seed_argument("0-4") == (0, 1, 2, 3, 4)
        assert parse_seed_argument("2-4") == (2, 3, 4)

    def test_comma_list(self):
        assert parse_seed_argument("0,3,7") == (0, 3, 7)

    @pytest.mark.parametrize("text", ["", "x", "1-", "-3", "0,0", "4-2", "0"])
    def test_invalid_forms_rejected(self, text):
        with pytest.raises(ValidationError):
            parse_seed_argument(text)

    def test_specific_messages_reach_the_caller(self):
        # ValidationError subclasses ValueError; the precise messages must
        # not be swallowed by the generic cannot-parse wrapper.
        with pytest.raises(ValidationError, match="is empty"):
            parse_seed_argument("4-2")
        with pytest.raises(ValidationError, match="at least one seed"):
            parse_seed_argument("0")


class TestResolveSchemeArgument:
    def test_family_member(self):
        scheme = resolve_scheme_argument("warner:0.8", 5)
        assert scheme.name == "warner:0.8"
        assert scheme.matrix.isclose(warner_matrix(5, 0.8))

    def test_up_alias(self):
        assert resolve_scheme_argument("up:0.7", 4).matrix.n_categories == 4

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValidationError, match="family:parameter"):
            resolve_scheme_argument("warner", 5)

    def test_non_numeric_parameter_rejected(self):
        with pytest.raises(ValidationError, match="not a number"):
            resolve_scheme_argument("warner:high", 5)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError):
            resolve_scheme_argument("nope:0.5", 5)


def _front(n_points: int, n_categories: int = 4) -> OptimizationResult:
    points = [
        ParetoPoint(
            matrix=warner_matrix(n_categories, 0.9 - 0.8 * i / max(1, n_points - 1)),
            privacy=i / max(1, n_points - 1),
            utility=1e-4 * (n_points - i),
            max_posterior=0.5,
        )
        for i in range(n_points)
    ]
    return OptimizationResult(points=tuple(points))


class TestSchemesFromFront:
    def test_every_point_becomes_a_scheme(self):
        schemes = schemes_from_front(_front(5))
        assert len(schemes) == 5
        assert schemes[0].name.startswith("front[00]@privacy=")

    def test_names_embed_ascending_privacy(self):
        schemes = schemes_from_front(_front(4))
        assert [s.name for s in schemes] == sorted(s.name for s in schemes)

    def test_thinning_keeps_endpoints(self):
        schemes = schemes_from_front(_front(9), max_schemes=3)
        assert len(schemes) == 3
        assert "privacy=0.0000" in schemes[0].name
        assert "privacy=1.0000" in schemes[-1].name

    def test_thinning_noop_when_front_is_small(self):
        assert len(schemes_from_front(_front(3), max_schemes=10)) == 3

    def test_empty_front_rejected(self):
        with pytest.raises(ValidationError, match="no points"):
            schemes_from_front(OptimizationResult(points=()))


class TestPlanPipeline:
    def test_resolves_strings_and_scheme_objects(self):
        ready = PipelineScheme("custom", warner_matrix(10, 0.66))
        spec = plan_pipeline(
            "adult:education", schemes=["warner:0.8", ready],
            miners=["tree"], seeds=[0],
        )
        assert [s.name for s in spec.schemes] == ["warner:0.8", "custom"]

    def test_miner_aliases_canonicalised(self):
        spec = plan_pipeline("normal", schemes=["warner:0.8"], miners=["dist"], seeds=[0])
        assert spec.miners == ("distribution",)

    def test_grid_order_schemes_outer_seeds_middle_miners_inner(self):
        spec = plan_pipeline(
            "normal", schemes=["warner:0.9", "warner:0.5"],
            miners=["tree", "distribution"], seeds=[0, 1],
        )
        cells = [(t.scheme.name, t.seed, t.miner) for t in spec.tasks()]
        assert cells == [
            ("warner:0.9", 0, "tree"), ("warner:0.9", 0, "distribution"),
            ("warner:0.9", 1, "tree"), ("warner:0.9", 1, "distribution"),
            ("warner:0.5", 0, "tree"), ("warner:0.5", 0, "distribution"),
            ("warner:0.5", 1, "tree"), ("warner:0.5", 1, "distribution"),
        ]

    def test_duplicate_scheme_names_rejected(self):
        with pytest.raises(ValidationError, match="unique"):
            plan_pipeline("normal", schemes=["warner:0.8", "warner:0.8"],
                          miners=["tree"], seeds=[0])

    def test_unknown_miner_rejected(self):
        with pytest.raises(ValidationError, match="unknown miner"):
            plan_pipeline("normal", schemes=["warner:0.8"], miners=["nope"], seeds=[0])

    def test_mismatched_scheme_domain_rejected(self):
        wrong = PipelineScheme("small", warner_matrix(3, 0.8))
        with pytest.raises(ValidationError, match="categories"):
            plan_pipeline("adult:education", schemes=[wrong], miners=["tree"], seeds=[0])

    def test_empty_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            plan_pipeline("normal", schemes=[], miners=["tree"], seeds=[0])
        with pytest.raises(ValidationError):
            plan_pipeline("normal", schemes=["warner:0.8"], miners=[], seeds=[0])
        with pytest.raises(ValidationError):
            plan_pipeline("normal", schemes=["warner:0.8"], miners=["tree"], seeds=[])

    def test_miner_options_merge_into_params(self):
        spec = plan_pipeline(
            "normal", schemes=["warner:0.8"], miners=["rules"], seeds=[0],
            miner_options={"rules": {"min_support": 0.2}},
        )
        assert spec.params_for("rules")["min_support"] == 0.2

    def test_unknown_miner_option_key_rejected(self):
        with pytest.raises(ValidationError, match="does not accept"):
            plan_pipeline(
                "normal", schemes=["warner:0.8"], miners=["rules"], seeds=[0],
                miner_options={"rules": {"bogus": 1}},
            )

    def test_miner_options_accept_aliases(self):
        spec = plan_pipeline(
            "normal", schemes=["warner:0.8"], miners=["dist"], seeds=[0],
            miner_options={"dist": {"method": "iterative"}},
        )
        assert spec.params_for("distribution")["method"] == "iterative"

    def test_colliding_alias_and_canonical_options_rejected(self):
        with pytest.raises(ValidationError, match="more than once"):
            plan_pipeline(
                "normal", schemes=["warner:0.8"], miners=["dist"], seeds=[0],
                miner_options={
                    "dist": {"method": "inversion"},
                    "distribution": {"method": "iterative"},
                },
            )

    def test_options_for_absent_miner_rejected(self):
        with pytest.raises(ValidationError, match="not .*part of the pipeline"):
            plan_pipeline(
                "normal", schemes=["warner:0.8"], miners=["tree"], seeds=[0],
                miner_options={"rules": {"min_support": 0.2}},
            )


class TestCacheKeys:
    def _task(self, **overrides):
        spec = plan_pipeline(
            overrides.pop("data", "normal"),
            schemes=overrides.pop("schemes", ["warner:0.8"]),
            miners=overrides.pop("miners", ["tree"]),
            seeds=overrides.pop("seeds", [0]),
            n_records=overrides.pop("n_records", 1000),
        )
        return spec.tasks()[0]

    def test_stable_for_equal_cells(self):
        assert self._task().cache_key() == self._task().cache_key()

    def test_distinct_across_every_grid_dimension(self):
        base = self._task()
        assert base.cache_key() != self._task(schemes=["warner:0.7"]).cache_key()
        assert base.cache_key() != self._task(seeds=[1]).cache_key()
        assert base.cache_key() != self._task(miners=["distribution"]).cache_key()
        assert base.cache_key() != self._task(data="gamma").cache_key()
        assert base.cache_key() != self._task(n_records=2000).cache_key()

    def test_matrix_entries_not_just_name_feed_the_key(self):
        # Two schemes with the same display name but different matrices must
        # never share a cache entry.
        a = plan_pipeline("normal", schemes=[PipelineScheme("x", warner_matrix(10, 0.8))],
                          miners=["tree"], seeds=[0]).tasks()[0]
        b = plan_pipeline("normal", schemes=[PipelineScheme("x", warner_matrix(10, 0.7))],
                          miners=["tree"], seeds=[0]).tasks()[0]
        assert a.cache_key() != b.cache_key()

    def test_version_is_part_of_the_key(self, monkeypatch):
        task = self._task()
        before = task.cache_key()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert task.cache_key() != before

    def test_miner_params_are_part_of_the_key(self):
        default = plan_pipeline("normal", schemes=["warner:0.8"], miners=["rules"],
                                seeds=[0], n_records=1000).tasks()[0]
        tightened = plan_pipeline("normal", schemes=["warner:0.8"], miners=["rules"],
                                  seeds=[0], n_records=1000,
                                  miner_options={"rules": {"min_support": 0.2}}).tasks()[0]
        assert default.cache_key() != tightened.cache_key()
