"""Promotion-equivalence suite for the multi-fidelity scheduler.

Two invariants make fidelity scheduling safe to adopt:

1. **Exact-path equivalence** — a run with fidelity scheduling disabled
   (OptRR at ``low_fidelity_fraction=1.0``, SPEA2/NSGA-II with no schedule)
   is bit-for-bit the run this repo produced before the scheduler existed:
   same RNG stream, same fronts, same Ω spectrum, same serialized result.
2. **Resume equivalence** — a fidelity-*enabled* run killed after any
   generation and resumed from its checkpoint reproduces the uninterrupted
   run bit for bit, which requires the scheduler state (current low
   fidelity, eval counters) to round-trip through the checkpoint codec.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.problem import RRMatrixProblem
from repro.data.synthetic import normal_distribution
from repro.emoo.fidelity import FidelitySchedule
from repro.emoo.nsga2 import NSGA2, NSGA2Settings
from repro.emoo.spea2 import SPEA2, SPEA2Settings
from repro.emoo.termination import MaxGenerations
from repro.io import load_checkpoint, result_to_dict

N_GENERATIONS = 5
SCHEDULE = FidelitySchedule(low_fidelity=0.25, promotion_fraction=0.4)


def make_optrr(**config_updates) -> OptRROptimizer:
    config = OptRRConfig(
        population_size=10,
        archive_size=10,
        n_generations=N_GENERATIONS,
        delta=0.8,
        seed=11,
        baseline_seeds=101,
        **config_updates,
    )
    return OptRROptimizer(normal_distribution(7), 4000, config)


def make_fidelity_optrr() -> OptRROptimizer:
    return make_optrr(low_fidelity_fraction=0.25, promotion_fraction=0.4)


def make_spea2(fidelity: FidelitySchedule | None) -> SPEA2:
    return SPEA2(
        RRMatrixProblem(normal_distribution(6), 4000, delta=0.85),
        SPEA2Settings(population_size=8, archive_size=8),
        termination=MaxGenerations(N_GENERATIONS),
        seed=3,
        fidelity=fidelity,
    )


def make_nsga2(fidelity: FidelitySchedule | None) -> NSGA2:
    return NSGA2(
        RRMatrixProblem(normal_distribution(6), 4000, delta=0.85),
        NSGA2Settings(population_size=8),
        termination=MaxGenerations(N_GENERATIONS),
        seed=3,
        fidelity=fidelity,
    )


def optrr_result_key(result) -> str:
    return json.dumps(result_to_dict(result, include_optimal_set=True), sort_keys=True)


def generic_result_key(result) -> list:
    return sorted(
        (tuple(member.objectives.tolist()), repr(member.genome))
        for member in result.front
    )


def run_interrupted(factory, kill_after: int, checkpoint_path):
    driver = factory().driver(checkpoint_path=str(checkpoint_path), checkpoint_every=1)
    steps = driver.steps()
    for _ in range(kill_after + 1):
        snapshot = next(steps)
        if snapshot.stopped:
            break
    return load_checkpoint(checkpoint_path)


class TestExactPathEquivalence:
    """Disabled scheduling must reproduce the pre-scheduler trajectories."""

    def test_optrr_fraction_one_is_bit_identical_to_default(self):
        assert optrr_result_key(
            make_optrr(low_fidelity_fraction=1.0).run()
        ) == optrr_result_key(make_optrr().run())

    def test_optrr_fraction_one_matches_default_checkpoints_too(self, tmp_path):
        """The checkpoint documents of the two runs agree except for the
        config echo and its fingerprint (which record the explicit
        fraction); the whole optimization state — populations, Ω, RNG
        stream, counters — is identical."""
        default_doc = run_interrupted(make_optrr, 2, tmp_path / "default.json")
        explicit_doc = run_interrupted(
            lambda: make_optrr(low_fidelity_fraction=1.0), 2, tmp_path / "explicit.json"
        )
        for document in (default_doc, explicit_doc):
            document.pop("config", None)
            document.pop("fingerprint", None)
            document.pop("written_at", None)
            document.pop("elapsed_seconds", None)  # wall clock, not state
        assert json.dumps(default_doc, sort_keys=True, default=str) == json.dumps(
            explicit_doc, sort_keys=True, default=str
        )

    def test_spea2_without_schedule_is_deterministic(self):
        assert generic_result_key(make_spea2(None).run()) == generic_result_key(
            make_spea2(None).run()
        )

    def test_nsga2_without_schedule_is_deterministic(self):
        assert generic_result_key(make_nsga2(None).run()) == generic_result_key(
            make_nsga2(None).run()
        )


class TestFidelityRunInvariants:
    def test_optrr_eval_counts_split_into_full_and_low(self):
        driver = make_fidelity_optrr().driver()
        last = None
        for last in driver.steps():
            assert last.n_full_evaluations + last.n_low_evaluations == last.n_evaluations
        # Setup (population + baseline seeds) runs at full fidelity; each
        # generation adds a full low-fidelity batch of 10 plus the
        # ceil(0.4 * 10) = 4 promoted re-evaluations.
        assert last.n_low_evaluations == N_GENERATIONS * 10
        assert last.n_full_evaluations == (10 + 101) + N_GENERATIONS * 4

    def test_optrr_omega_only_sees_full_fidelity(self):
        driver = make_fidelity_optrr().driver()
        for _ in driver.steps():
            pass
        optimal = driver.optimization.optimal_set
        for member in optimal.members():
            fidelity = member.metadata.get("fidelity")
            assert fidelity is None or fidelity >= 1.0

    def test_fidelity_run_differs_from_exact_run(self):
        """Sanity: scheduling genuinely changes the search (otherwise the
        equivalence tests above would be vacuous)."""
        exact = make_optrr().run()
        scheduled = make_fidelity_optrr().run()
        assert scheduled.n_evaluations > exact.n_evaluations


class TestFidelityResumeEquivalence:
    """Kill-at-every-generation resume of fidelity-enabled runs."""

    @pytest.mark.parametrize("kill_after", range(N_GENERATIONS))
    def test_optrr_fidelity_resume_bit_for_bit(self, tmp_path, kill_after):
        reference = optrr_result_key(make_fidelity_optrr().run())
        document = run_interrupted(make_fidelity_optrr, kill_after, tmp_path / "ck.json")
        optimizer = OptRROptimizer.from_checkpoint(document)
        driver = optimizer.driver()
        driver.restore(document)
        assert optrr_result_key(optimizer.run_driver(driver)) == reference

    @pytest.mark.parametrize("kill_after", range(N_GENERATIONS))
    def test_spea2_fidelity_resume_bit_for_bit(self, tmp_path, kill_after):
        reference = make_spea2(SCHEDULE).run()
        document = run_interrupted(
            lambda: make_spea2(SCHEDULE), kill_after, tmp_path / "ck.json"
        )
        driver = make_spea2(SCHEDULE).driver()
        driver.restore(document)
        resumed = driver.run()
        assert generic_result_key(resumed) == generic_result_key(reference)
        assert resumed.n_evaluations == reference.n_evaluations

    @pytest.mark.parametrize("kill_after", range(N_GENERATIONS))
    def test_nsga2_fidelity_resume_bit_for_bit(self, tmp_path, kill_after):
        reference = make_nsga2(SCHEDULE).run()
        document = run_interrupted(
            lambda: make_nsga2(SCHEDULE), kill_after, tmp_path / "ck.json"
        )
        driver = make_nsga2(SCHEDULE).driver()
        driver.restore(document)
        resumed = driver.run()
        assert generic_result_key(resumed) == generic_result_key(reference)
        assert resumed.n_evaluations == reference.n_evaluations

    def test_checkpoint_carries_scheduler_state(self, tmp_path):
        document = run_interrupted(make_fidelity_optrr, 1, tmp_path / "ck.json")
        state = document["state"]["fidelity"]
        assert state["current_low_fidelity"] == 0.25
        assert state["n_low_evaluations"] == 2 * 10
        assert state["n_full_evaluations"] == 2 * 4

    def test_mismatched_fidelity_schedule_rejects_resume(self, tmp_path):
        """The setup fingerprint pins the schedule: resuming a scheduled
        SPEA2 checkpoint on a driver without the schedule must fail."""
        from repro.exceptions import ValidationError

        document = run_interrupted(
            lambda: make_spea2(SCHEDULE), 1, tmp_path / "ck.json"
        )
        driver = make_spea2(None).driver()
        with pytest.raises(ValidationError, match="fingerprint"):
            driver.restore(document)
