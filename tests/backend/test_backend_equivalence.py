"""Cross-backend equivalence suite: every registered backend vs ``numpy``.

Each kernel of every backend in the registry is run on identical inputs next
to the ``numpy`` reference implementation and compared according to the
exactness the backend declares (:attr:`repro.backend.base.ArrayBackend.
exactness`):

* ``"bit-exact"`` kernels must match ``np.array_equal`` — bit for bit;
* ``"tolerance"`` kernels must match ``np.testing.assert_allclose`` with
  ``rtol=EQUIVALENCE_RTOL`` (= 1e-9) and ``atol=1e-12`` (a small absolute
  floor for outputs that are mathematically zero but reached through a
  different summation order);
* boolean outputs (invertibility masks) must always match exactly,
  regardless of the declared exactness — backends may not reclassify.

Inputs are generated from hypothesis-drawn seeds/shapes, including singular
and duplicated-column stack members, saturated mutation targets, and the
near-singular 1-norm classification band regime from
``tests/utils/test_linalg.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend import registry
from repro.backend.base import EQUIVALENCE_RTOL, KERNELS
from repro.backend.numpy_backend import NumpyBackend
from repro.rr.reference import broadcast_disguise_reference
from repro.utils.linalg import DEFAULT_CONDITION_LIMIT

#: Absolute floor applied alongside ``EQUIVALENCE_RTOL`` for ``"tolerance"``
#: kernels (see the module docstring).
EQUIVALENCE_ATOL = 1e-12

#: A fresh reference instance — deliberately not the registered singleton, so
#: the comparison cannot be short-circuited by object identity.
REFERENCE = NumpyBackend()

BACKENDS = registry.backend_names()

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(0, 2**32 - 1)


def _stochastic_stack(
    seed: int, batch: int, n: int, *, include_singular: bool = False
) -> np.ndarray:
    """A random column-stochastic ``(batch, n, n)`` stack; optionally with a
    uniform (singular) member and a duplicated-column member mixed in.

    C-contiguous, as the seam contract requires (callers canonicalise via
    ``check_matrix_stack``; BLAS rounding depends on operand layout)."""
    rng = np.random.default_rng(seed)
    stack = np.ascontiguousarray(
        rng.dirichlet(np.ones(n), size=(batch, n)).transpose(0, 2, 1)
    )
    if include_singular and batch >= 1:
        stack[0] = 1.0 / n
    if include_singular and batch >= 2:
        stack[1][:, n - 1] = stack[1][:, 0]
    return stack


def _prior(seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(seed).dirichlet(np.ones(n) * 2.0)


def _near_singular_stochastic(t: float) -> np.ndarray:
    """Same construction as ``tests/utils/test_linalg.py``: column-stochastic
    3x3 whose second column is a ``t``-blend away from the first."""
    base = np.array([0.5, 0.3, 0.2])
    other = np.array([0.2, 0.5, 0.3])
    matrix = np.column_stack([base, (1 - t) * base + t * other, [0.1, 0.1, 0.8]])
    return matrix / matrix.sum(axis=0)


#: Blend scan straddling the 1-norm condition-limit classification boundary.
BAND_BLENDS = np.geomspace(1e-13, 1e-10, 60)


def _band_stack() -> np.ndarray:
    return np.stack([_near_singular_stochastic(float(t)) for t in BAND_BLENDS])


def _assert_kernel_matches(backend, kernel: str, actual, expected) -> None:
    """Compare one kernel output against the reference according to the
    backend's declared exactness (masks are always exact)."""
    declared = backend.exactness[kernel]
    assert declared in ("bit-exact", "tolerance")
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    assert actual.shape == expected.shape
    if expected.dtype == bool or declared == "bit-exact":
        np.testing.assert_array_equal(actual, expected)
    else:
        np.testing.assert_allclose(
            actual, expected, rtol=EQUIVALENCE_RTOL, atol=EQUIVALENCE_ATOL
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestProtocolMetadata:
    def test_registered_under_its_own_name(self, name):
        assert registry.get_backend(name).name == name

    def test_declares_every_kernel(self, name):
        backend = registry.get_backend(name)
        assert set(backend.exactness) == set(KERNELS)
        assert all(
            value in ("bit-exact", "tolerance")
            for value in backend.exactness.values()
        )


def test_numba_backend_registered_or_skipped():
    """Registry self-test: numba is either usable or cleanly unavailable."""
    if "numba" not in registry.backend_names():
        assert "numba" in registry.known_backend_names()
        with pytest.raises(registry.BackendUnavailableError, match="pip install numba"):
            registry.get_backend("numba")
        pytest.skip("numba backend not available in this environment")
    assert registry.get_backend("numba").name == "numba"


@pytest.mark.parametrize("name", BACKENDS)
class TestEvaluateStack:
    @pytest.mark.parametrize("cheap", [False, True])
    @given(seed=seeds, batch=st.integers(1, 8), n=st.integers(2, 6))
    @SETTINGS
    def test_matches_reference(self, name, cheap, seed, batch, n):
        backend = registry.get_backend(name)
        stack = _stochastic_stack(seed, batch, n, include_singular=True)
        prior = _prior(seed + 1, n)
        kwargs = dict(
            condition_limit=DEFAULT_CONDITION_LIMIT, cheap_posterior_bound=cheap
        )
        privacy, utility, worst, invertible = backend.evaluate_stack(
            stack, prior, 10_000, **kwargs
        )
        expected = REFERENCE.evaluate_stack(stack, prior, 10_000, **kwargs)
        np.testing.assert_array_equal(invertible, expected[3])
        _assert_kernel_matches(backend, "evaluate_stack", privacy, expected[0])
        _assert_kernel_matches(backend, "evaluate_stack", utility, expected[1])
        _assert_kernel_matches(backend, "evaluate_stack", worst, expected[2])

    def test_empty_stack(self, name):
        backend = registry.get_backend(name)
        kwargs = dict(
            condition_limit=DEFAULT_CONDITION_LIMIT, cheap_posterior_bound=False
        )
        prior = np.array([0.5, 0.5])
        results = backend.evaluate_stack(np.empty((0, 2, 2)), prior, 100, **kwargs)
        expected = REFERENCE.evaluate_stack(np.empty((0, 2, 2)), prior, 100, **kwargs)
        for actual_column, expected_column in zip(results, expected):
            np.testing.assert_array_equal(actual_column, expected_column)

    def test_near_singular_band_classification(self, name):
        # Inside the classification band the invertibility decision is the
        # whole ballgame: every backend must agree with the reference on
        # every matrix of the scan, and the scored columns must match too.
        backend = registry.get_backend(name)
        stack = _band_stack()
        prior = np.array([0.5, 0.3, 0.2])
        kwargs = dict(
            condition_limit=DEFAULT_CONDITION_LIMIT, cheap_posterior_bound=True
        )
        privacy, utility, worst, invertible = backend.evaluate_stack(
            stack, prior, 10_000, **kwargs
        )
        expected = REFERENCE.evaluate_stack(stack, prior, 10_000, **kwargs)
        np.testing.assert_array_equal(invertible, expected[3])
        assert not invertible.all() and invertible.any()
        _assert_kernel_matches(backend, "evaluate_stack", privacy, expected[0])
        _assert_kernel_matches(backend, "evaluate_stack", utility, expected[1])
        _assert_kernel_matches(backend, "evaluate_stack", worst, expected[2])


@pytest.mark.parametrize("name", BACKENDS)
class TestBatchedSafeInverses:
    @given(seed=seeds, batch=st.integers(1, 8), n=st.integers(2, 6))
    @SETTINGS
    def test_matches_reference(self, name, seed, batch, n):
        backend = registry.get_backend(name)
        stack = _stochastic_stack(seed, batch, n, include_singular=True)
        inverses, invertible = backend.batched_safe_inverses(
            stack, condition_limit=DEFAULT_CONDITION_LIMIT
        )
        expected_inverses, expected_invertible = REFERENCE.batched_safe_inverses(
            stack, condition_limit=DEFAULT_CONDITION_LIMIT
        )
        np.testing.assert_array_equal(invertible, expected_invertible)
        _assert_kernel_matches(
            backend, "batched_safe_inverses", inverses, expected_inverses
        )

    def test_near_singular_band(self, name):
        backend = registry.get_backend(name)
        stack = _band_stack()
        inverses, invertible = backend.batched_safe_inverses(
            stack, condition_limit=DEFAULT_CONDITION_LIMIT
        )
        expected_inverses, expected_invertible = REFERENCE.batched_safe_inverses(
            stack, condition_limit=DEFAULT_CONDITION_LIMIT
        )
        np.testing.assert_array_equal(invertible, expected_invertible)
        assert not invertible.all() and invertible.any()
        _assert_kernel_matches(
            backend, "batched_safe_inverses", inverses, expected_inverses
        )

    def test_empty_stack(self, name):
        backend = registry.get_backend(name)
        inverses, invertible = backend.batched_safe_inverses(
            np.empty((0, 3, 3)), condition_limit=DEFAULT_CONDITION_LIMIT
        )
        assert inverses.shape == (0, 3, 3)
        assert invertible.size == 0


@pytest.mark.parametrize("name", BACKENDS)
class TestPairwiseDistances:
    @given(seed=seeds, count=st.integers(0, 12), dimensions=st.integers(1, 5))
    @SETTINGS
    def test_matches_reference(self, name, seed, count, dimensions):
        backend = registry.get_backend(name)
        points = np.random.default_rng(seed).uniform(-5.0, 5.0, (count, dimensions))
        if count >= 2:
            points[1] = points[0]  # coincident rows: exact-zero distances
        _assert_kernel_matches(
            backend,
            "pairwise_distances",
            backend.pairwise_distances(points),
            REFERENCE.pairwise_distances(points),
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestCrossoverColumns:
    @given(seed=seeds, pairs=st.integers(1, 8), n=st.integers(2, 6))
    @SETTINGS
    def test_matches_reference(self, name, seed, pairs, n):
        backend = registry.get_backend(name)
        first = _stochastic_stack(seed, pairs, n)
        second = _stochastic_stack(seed + 1, pairs, n)
        cuts = np.random.default_rng(seed + 2).integers(1, n, size=pairs)
        child_a, child_b = backend.crossover_columns(first, second, cuts)
        expected_a, expected_b = REFERENCE.crossover_columns(first, second, cuts)
        _assert_kernel_matches(backend, "crossover_columns", child_a, expected_a)
        _assert_kernel_matches(backend, "crossover_columns", child_b, expected_b)


@pytest.mark.parametrize("name", BACKENDS)
class TestMutateStack:
    @given(seed=seeds, batch=st.integers(1, 8), n=st.integers(2, 6))
    @SETTINGS
    def test_matches_reference(self, name, seed, batch, n):
        backend = registry.get_backend(name)
        stack = _stochastic_stack(seed, batch, n)
        rng = np.random.default_rng(seed + 3)
        column_indices = rng.integers(0, n, size=batch)
        element_indices = rng.integers(0, n, size=batch)
        magnitudes = rng.uniform(0.0, 0.3, size=batch)
        add = rng.integers(0, 2, size=batch).astype(bool)
        # Saturate one target element (a one-hot column) so the flip rule of
        # the reference mutation is exercised, not just the easy path.
        one_hot = np.zeros(n)
        one_hot[element_indices[0]] = 1.0
        stack[0][:, column_indices[0]] = one_hot
        _assert_kernel_matches(
            backend,
            "mutate_stack",
            backend.mutate_stack(stack, column_indices, element_indices, magnitudes, add),
            REFERENCE.mutate_stack(stack, column_indices, element_indices, magnitudes, add),
        )


def _disguise_inputs(seed: int, n: int, count: int, *, adversarial: bool = True):
    """A stochastic matrix plus codes/uniforms, with the adversarial cases
    planted: a zero-probability-prefix column (its CDF repeats exact values)
    and uniforms that land exactly on CDF boundaries."""
    rng = np.random.default_rng(seed)
    probabilities = _stochastic_stack(seed, 1, n)[0]
    codes = rng.integers(0, n, size=count)
    uniforms = rng.random(count)
    if adversarial and count:
        # Column 0 starts with zero probability: cdf[0, 0] == 0.0 exactly.
        probabilities[:, 0] = 0.0
        probabilities[n - 1, 0] = 1.0
        codes[0] = 0
        cdf = np.cumsum(probabilities, axis=0)
        cdf[-1, :] = 1.0
        # Plant uniforms exactly on CDF boundaries (including the 0.0 and
        # clamped 1.0 edges) — the strict/non-strict comparison choice is
        # exactly what these inputs catch.
        planted = min(count, n)
        uniforms[:planted] = cdf[rng.integers(0, n, size=planted), codes[:planted]]
    return probabilities, codes, uniforms


@pytest.mark.parametrize("name", BACKENDS)
class TestDisguiseCodes:
    @given(seed=seeds, n=st.integers(2, 12), count=st.integers(0, 400))
    @SETTINGS
    def test_matches_reference_and_frozen_broadcast(self, name, seed, n, count):
        backend = registry.get_backend(name)
        probabilities, codes, uniforms = _disguise_inputs(seed, n, count)
        actual = backend.disguise_codes(probabilities, codes, uniforms)
        _assert_kernel_matches(
            backend,
            "disguise_codes",
            actual,
            REFERENCE.disguise_codes(probabilities, codes, uniforms),
        )
        # The frozen (n, N) broadcast is the kernel's executable
        # specification: every backend must reproduce it at its declared
        # exactness ("bit-exact" for all current backends).
        _assert_kernel_matches(
            backend,
            "disguise_codes",
            actual,
            broadcast_disguise_reference(probabilities, codes, uniforms),
        )
        assert actual.dtype == np.int64
        if count:
            assert actual.min() >= 0 and actual.max() < n

    @pytest.mark.parametrize("n", [2, 100])
    def test_extreme_domain_sizes(self, name, n):
        backend = registry.get_backend(name)
        probabilities, codes, uniforms = _disguise_inputs(7, n, 5_000)
        _assert_kernel_matches(
            backend,
            "disguise_codes",
            backend.disguise_codes(probabilities, codes, uniforms),
            broadcast_disguise_reference(probabilities, codes, uniforms),
        )

    def test_identity_matrix_is_noop(self, name):
        backend = registry.get_backend(name)
        rng = np.random.default_rng(11)
        codes = rng.integers(0, 6, size=1_000)
        uniforms = rng.random(codes.size)
        disguised = backend.disguise_codes(np.eye(6), codes, uniforms)
        np.testing.assert_array_equal(disguised, codes)


@pytest.mark.parametrize("name", BACKENDS)
class TestRepairStack:
    @given(
        seed=seeds,
        batch=st.integers(1, 6),
        n=st.integers(2, 5),
        delta=st.sampled_from([0.5, 0.8, 0.999]),
    )
    @SETTINGS
    def test_matches_reference(self, name, seed, batch, n, delta):
        backend = registry.get_backend(name)
        # Diagonally-biased stacks: high posteriors, so the repair actually
        # iterates instead of exiting on the first bound check.
        noise = _stochastic_stack(seed, batch, n)
        stack = 0.7 * np.eye(n)[None, :, :] + 0.3 * noise
        stack = stack / stack.sum(axis=1, keepdims=True)
        prior = _prior(seed + 1, n)
        kwargs = dict(max_passes=5, tolerance=1e-9)
        _assert_kernel_matches(
            backend,
            "repair_stack",
            backend.repair_stack(stack, prior, delta, **kwargs),
            REFERENCE.repair_stack(stack, prior, delta, **kwargs),
        )
