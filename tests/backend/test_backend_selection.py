"""Backend selection: registry precedence, error modes and the CLI surface.

The cross-backend *math* is covered by ``test_backend_equivalence.py``; this
module covers how a backend gets chosen — ``--backend`` flag, the
``REPRO_BACKEND`` environment variable, resume precedence — and how selection
fails: an unknown name must exit 2 listing the registered backends, a known
but unavailable one (``numba`` without the package) must exit 2 with the
install hint.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.backend import registry
from repro.backend.numpy_backend import NumpyBackend
from repro.cli import main
from repro.exceptions import BackendError, BackendUnavailableError

#: Tiny optimize workload shared by the CLI selection tests.
FAST_OPTIMIZE = [
    "optimize", "--distribution", "normal", "--categories", "6",
    "--records", "2000", "--population", "8", "--seed", "3",
]


class TestRegistry:
    def test_default_resolution(self):
        registry.reset_active_backend()
        os.environ.pop(registry.ENV_VAR, None)
        assert registry.resolve_backend_name() == "numpy"
        assert registry.active_backend_name() == "numpy"
        assert isinstance(registry.active_backend(), NumpyBackend)

    def test_explicit_name_beats_environment(self):
        os.environ[registry.ENV_VAR] = "numpy-fused"
        assert registry.resolve_backend_name("numpy") == "numpy"
        assert registry.resolve_backend_name() == "numpy-fused"

    def test_set_active_backend_exports_environment(self):
        registry.set_active_backend("numpy-fused")
        assert os.environ[registry.ENV_VAR] == "numpy-fused"
        assert registry.active_backend_name() == "numpy-fused"

    def test_use_backend_restores_previous_state(self):
        registry.reset_active_backend()
        os.environ.pop(registry.ENV_VAR, None)
        with registry.use_backend("numpy-fused") as backend:
            assert backend.name == "numpy-fused"
            assert registry.active_backend_name() == "numpy-fused"
            assert os.environ[registry.ENV_VAR] == "numpy-fused"
        assert registry.active_backend_name() == "numpy"
        assert registry.ENV_VAR not in os.environ

    def test_unknown_name_lists_registered_backends(self):
        with pytest.raises(BackendError, match="registered backends"):
            registry.get_backend("cupy")

    def test_unavailable_name_carries_install_hint(self):
        if "numba" in registry.backend_names():
            pytest.skip("numba is installed here; the unavailable path is moot")
        with pytest.raises(BackendUnavailableError, match="pip install numba"):
            registry.get_backend("numba")

    def test_unavailable_error_is_a_backend_error(self):
        # One except clause in the CLI covers both failure modes.
        assert issubclass(BackendUnavailableError, BackendError)

    def test_known_names_include_unavailable_ones(self):
        assert "numba" in registry.known_backend_names()
        assert {"numpy", "numpy-fused"} <= set(registry.backend_names())


@pytest.mark.parametrize(
    "argv",
    [
        FAST_OPTIMIZE + ["--generations", "2", "--backend", "cupy"],
        ["run", "fact1", "--backend", "cupy"],
        ["campaign", "fact1", "--backend", "cupy"],
        ["pipeline", "--data", "normal", "--schemes", "warner:0.8",
         "--miners", "dist", "--backend", "cupy"],
    ],
    ids=["optimize", "run", "campaign", "pipeline"],
)
def test_unknown_backend_flag_is_usage_error(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "unknown backend 'cupy'" in err
    assert "numpy-fused" in err  # the registered list is printed


def test_unknown_backend_environment_is_usage_error(capsys):
    os.environ[registry.ENV_VAR] = "cupy"
    registry.reset_active_backend()
    assert main(FAST_OPTIMIZE + ["--generations", "2"]) == 2
    assert "unknown backend 'cupy'" in capsys.readouterr().err


def test_unavailable_numba_backend_exits_with_hint(capsys):
    if "numba" in registry.backend_names():
        pytest.skip("numba is installed here; the unavailable path is moot")
    assert main(FAST_OPTIMIZE + ["--generations", "2", "--backend", "numba"]) == 2
    assert "pip install numba" in capsys.readouterr().err


class TestCLIBackendRuns:
    def test_fused_run_matches_default_front(self, tmp_path, capsys):
        """Same seed, same front bytes: the fused backend is bit-exact."""
        default_out = tmp_path / "default.json"
        fused_out = tmp_path / "fused.json"
        base = FAST_OPTIMIZE + ["--generations", "4"]
        assert main(base + ["--output", str(default_out)]) == 0
        assert main(
            base + ["--backend", "numpy-fused", "--output", str(fused_out)]
        ) == 0
        assert default_out.read_bytes() == fused_out.read_bytes()

    def test_fused_kill_resume_is_byte_identical(self, tmp_path, capsys):
        """A fused run killed mid-flight and resumed retraces the
        uninterrupted fused run byte for byte — and the checkpoint records
        the backend, so the resume picks ``numpy-fused`` back up without the
        flag being repeated."""
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        checkpoint = tmp_path / "ck.json"
        fused = FAST_OPTIMIZE + ["--backend", "numpy-fused"]
        assert main(fused + ["--generations", "6", "--output", str(full)]) == 0
        assert main(
            fused + ["--generations", "2", "--checkpoint", str(checkpoint),
                     "--checkpoint-every", "1"]
        ) == 0
        import json

        document = json.loads(checkpoint.read_text())
        assert document["backend"] == "numpy-fused"
        # Resume WITHOUT --backend: the checkpointed backend must win over
        # the default.
        registry.reset_active_backend()
        os.environ.pop(registry.ENV_VAR, None)
        assert main(
            ["optimize", "--resume", str(checkpoint), "--generations", "6",
             "--output", str(resumed)]
        ) == 0
        assert full.read_bytes() == resumed.read_bytes()
        assert registry.active_backend_name() == "numpy-fused"

    def test_resume_explicit_backend_beats_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        out = tmp_path / "out.json"
        assert main(
            FAST_OPTIMIZE
            + ["--backend", "numpy-fused", "--generations", "2",
               "--checkpoint", str(checkpoint), "--checkpoint-every", "1"]
        ) == 0
        assert main(
            ["optimize", "--resume", str(checkpoint), "--generations", "4",
             "--backend", "numpy", "--output", str(out)]
        ) == 0
        assert registry.active_backend_name() == "numpy"
