"""Tests for repro.metrics.utility (Theorem 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.utility import (
    empirical_mse,
    theoretical_mse,
    theoretical_mse_from_covariance,
    utility_report,
    utility_score,
    variance_covariance,
)
from repro.rr.estimation import InversionEstimator
from repro.rr.matrix import RRMatrix
from repro.rr.randomize import RandomizedResponse
from repro.rr.schemes import warner_matrix


class TestVarianceCovariance:
    def test_diagonal_is_multinomial_variance(self):
        p_star = np.array([0.5, 0.3, 0.2])
        cov = variance_covariance(p_star, 100)
        np.testing.assert_allclose(np.diag(cov), p_star * (1 - p_star) / 100)

    def test_off_diagonal_is_negative_product(self):
        p_star = np.array([0.5, 0.3, 0.2])
        cov = variance_covariance(p_star, 100)
        assert cov[0, 1] == pytest.approx(-0.5 * 0.3 / 100)

    def test_rows_sum_to_zero(self):
        p_star = np.array([0.4, 0.4, 0.2])
        cov = variance_covariance(p_star, 50)
        np.testing.assert_allclose(cov.sum(axis=0), 0.0, atol=1e-15)


class TestTheoreticalMSE:
    def test_identity_matrix_gives_multinomial_variance(self, small_prior):
        mse = theoretical_mse(RRMatrix.identity(4), small_prior.probabilities, 1000)
        expected = small_prior.probabilities * (1 - small_prior.probabilities) / 1000
        np.testing.assert_allclose(mse, expected)

    def test_fast_form_matches_quadratic_form(self, small_prior):
        matrix = warner_matrix(4, 0.55)
        fast = theoretical_mse(matrix, small_prior.probabilities, 5000)
        slow = theoretical_mse_from_covariance(matrix, small_prior.probabilities, 5000)
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_mse_scales_inversely_with_n(self, small_prior):
        matrix = warner_matrix(4, 0.6)
        mse_small = utility_score(matrix, small_prior.probabilities, 1_000)
        mse_large = utility_score(matrix, small_prior.probabilities, 10_000)
        assert mse_small == pytest.approx(10 * mse_large)

    def test_more_randomization_means_higher_mse(self, small_prior):
        strong = utility_score(warner_matrix(4, 0.4), small_prior.probabilities, 1000)
        weak = utility_score(warner_matrix(4, 0.9), small_prior.probabilities, 1000)
        assert strong > weak

    def test_mse_is_nonnegative(self, small_prior, rng):
        from repro.rr.matrix import random_rr_matrix

        for _ in range(20):
            matrix = random_rr_matrix(4, seed=rng)
            if not matrix.is_invertible:
                continue
            mse = theoretical_mse(matrix, small_prior.probabilities, 500)
            assert np.all(mse >= -1e-12)

    def test_domain_mismatch_raises(self, small_prior):
        with pytest.raises(ValidationError):
            theoretical_mse(RRMatrix.identity(3), small_prior.probabilities, 100)


class TestTheoreticalMatchesSimulation:
    def test_monte_carlo_agreement(self, small_prior):
        """The closed-form MSE (Theorem 6) must match a Monte-Carlo estimate."""
        matrix = warner_matrix(4, 0.6)
        n_records = 2_000
        theoretical = theoretical_mse(matrix, small_prior.probabilities, n_records)
        estimator = InversionEstimator(clip_negative=False)
        mechanism = RandomizedResponse(matrix)
        rng = np.random.default_rng(0)
        squared_errors = np.zeros(4)
        n_trials = 400
        for _ in range(n_trials):
            original = small_prior.sample(n_records, seed=rng)
            disguised = mechanism.randomize_codes(original, seed=rng)
            estimate = estimator.estimate_from_codes(disguised, matrix)
            squared_errors += (estimate.raw_probabilities - small_prior.probabilities) ** 2
        empirical = squared_errors / n_trials
        # The Monte-Carlo estimate includes sampling noise of the original
        # data itself, which the closed form (conditional on the prior) does
        # not; agreement within ~25% per component is the expected regime.
        np.testing.assert_allclose(empirical, theoretical, rtol=0.35)


class TestEmpiricalMSE:
    def test_zero_for_exact_estimates(self, small_prior):
        assert empirical_mse([small_prior.probabilities], small_prior.probabilities) == 0.0

    def test_averages_over_estimates(self, small_prior):
        shifted = small_prior.probabilities.copy()
        shifted[0] -= 0.1
        shifted[1] += 0.1
        value = empirical_mse([small_prior.probabilities, shifted], small_prior.probabilities)
        assert value == pytest.approx(np.mean((shifted - small_prior.probabilities) ** 2) / 2)

    def test_requires_at_least_one_estimate(self, small_prior):
        with pytest.raises(ValidationError):
            empirical_mse([], small_prior.probabilities)

    def test_shape_mismatch_raises(self, small_prior):
        with pytest.raises(ValidationError):
            empirical_mse([np.array([0.5, 0.5])], small_prior.probabilities)


class TestUtilityReport:
    def test_report_consistency(self, small_prior):
        matrix = warner_matrix(4, 0.7)
        report = utility_report(matrix, small_prior.probabilities, 2000)
        assert report.utility == pytest.approx(np.mean(report.per_category_mse))
        assert report.n_records == 2000
