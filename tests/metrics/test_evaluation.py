"""Tests for repro.metrics.evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distribution import CategoricalDistribution
from repro.exceptions import ValidationError
from repro.metrics.evaluation import MatrixEvaluator
from repro.metrics.privacy import max_posterior, privacy_score
from repro.metrics.utility import utility_score
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


class TestMatrixEvaluator:
    def test_consistent_with_individual_metrics(self, small_prior, evaluator):
        matrix = warner_matrix(4, 0.65)
        evaluation = evaluator.evaluate(matrix)
        assert evaluation.privacy == pytest.approx(
            privacy_score(matrix, small_prior.probabilities)
        )
        assert evaluation.utility == pytest.approx(
            utility_score(matrix, small_prior.probabilities, 10_000)
        )
        assert evaluation.max_posterior == pytest.approx(
            max_posterior(matrix, small_prior.probabilities)
        )
        assert evaluation.feasible and evaluation.invertible

    def test_accepts_raw_probability_vector_as_prior(self):
        evaluator = MatrixEvaluator(np.array([0.5, 0.5]), 100)
        evaluation = evaluator.evaluate(warner_matrix(2, 0.8))
        assert 0.0 <= evaluation.privacy <= 0.5

    def test_singular_matrix_is_infeasible_with_infinite_utility(self, evaluator):
        evaluation = evaluator.evaluate(RRMatrix.uniform(4))
        assert not evaluation.invertible
        assert not evaluation.feasible
        assert evaluation.utility == np.inf

    def test_bound_violation_is_infeasible(self, small_prior):
        evaluator = MatrixEvaluator(small_prior, 1000, delta=0.6)
        evaluation = evaluator.evaluate(RRMatrix.identity(4))
        assert not evaluation.feasible
        assert evaluation.invertible

    def test_bound_satisfied_is_feasible(self, small_prior):
        evaluator = MatrixEvaluator(small_prior, 1000, delta=0.6)
        evaluation = evaluator.evaluate(warner_matrix(4, 0.4))
        assert evaluation.feasible

    def test_infeasible_delta_rejected_at_construction(self, small_prior):
        # Theorem 5: delta below the largest prior probability is impossible.
        with pytest.raises(ValidationError, match="Theorem 5"):
            MatrixEvaluator(small_prior, 1000, delta=0.2)

    def test_domain_mismatch_raises(self, evaluator):
        with pytest.raises(ValidationError):
            evaluator.evaluate(warner_matrix(3, 0.5))

    def test_objectives_are_minimisation_form(self, evaluator):
        evaluation = evaluator.evaluate(warner_matrix(4, 0.7))
        objectives = evaluation.objectives
        assert objectives[0] == pytest.approx(-evaluation.privacy)
        assert objectives[1] == pytest.approx(evaluation.utility)

    def test_evaluate_many(self, evaluator):
        matrices = [warner_matrix(4, p) for p in (0.3, 0.5, 0.7)]
        evaluations = evaluator.evaluate_many(matrices)
        assert len(evaluations) == 3
        privacies = [evaluation.privacy for evaluation in evaluations]
        assert privacies == sorted(privacies, reverse=True)


class TestPrivacyUtilityTradeoff:
    def test_warner_sweep_shows_conflict(self):
        """Across the Warner family, higher privacy must come with higher MSE
        (the conflicting-objectives premise of the paper)."""
        prior = CategoricalDistribution(np.array([0.4, 0.3, 0.2, 0.1]))
        evaluator = MatrixEvaluator(prior, 5_000)
        ps = np.linspace(0.3, 0.95, 12)
        evaluations = [evaluator.evaluate(warner_matrix(4, float(p))) for p in ps]
        privacies = np.array([evaluation.privacy for evaluation in evaluations])
        utilities = np.array([evaluation.utility for evaluation in evaluations])
        # As p grows, privacy decreases and MSE decreases.
        assert np.all(np.diff(privacies) < 1e-12)
        assert np.all(np.diff(utilities) < 1e-12)
