"""Tests for repro.metrics.privacy (Eq. 8, Eq. 9, Theorem 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InfeasibleBoundError
from repro.metrics.privacy import (
    adversary_accuracy,
    check_bound_feasible,
    map_estimates,
    max_posterior,
    posterior_matrix,
    privacy_report,
    privacy_score,
    satisfies_bound,
)
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


class TestPosteriorMatrix:
    def test_rows_sum_to_one(self, small_prior, warner_half):
        posterior = posterior_matrix(warner_half, small_prior.probabilities)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0)

    def test_identity_matrix_posterior_is_identity(self, small_prior):
        posterior = posterior_matrix(RRMatrix.identity(4), small_prior.probabilities)
        np.testing.assert_allclose(posterior, np.eye(4))

    def test_uniform_matrix_posterior_equals_prior(self, small_prior):
        posterior = posterior_matrix(RRMatrix.uniform(4), small_prior.probabilities)
        for row in posterior:
            np.testing.assert_allclose(row, small_prior.probabilities)

    def test_impossible_reports_get_zero_rows(self):
        # Category 2 can never be reported: its row must be all zeros.
        matrix = RRMatrix(np.array([
            [0.5, 0.5, 0.5],
            [0.5, 0.5, 0.5],
            [0.0, 0.0, 0.0],
        ]))
        prior = np.array([0.3, 0.3, 0.4])
        posterior = posterior_matrix(matrix, prior)
        np.testing.assert_allclose(posterior[2], 0.0)

    def test_hand_computed_example(self):
        matrix = warner_matrix(2, 0.8)
        prior = np.array([0.6, 0.4])
        posterior = posterior_matrix(matrix, prior)
        # P(X=0 | Y=0) = 0.8*0.6 / (0.8*0.6 + 0.2*0.4) = 0.48 / 0.56
        assert posterior[0, 0] == pytest.approx(0.48 / 0.56)
        assert posterior[1, 1] == pytest.approx(0.32 / 0.44)


class TestMapAndAccuracy:
    def test_map_estimates_for_identity(self, small_prior):
        estimates = map_estimates(RRMatrix.identity(4), small_prior.probabilities)
        np.testing.assert_array_equal(estimates, np.arange(4))

    def test_map_estimates_for_uniform_is_prior_mode(self, small_prior):
        estimates = map_estimates(RRMatrix.uniform(4), small_prior.probabilities)
        np.testing.assert_array_equal(estimates, np.zeros(4))

    def test_accuracy_of_identity_is_one(self, small_prior):
        assert adversary_accuracy(RRMatrix.identity(4), small_prior.probabilities) == pytest.approx(1.0)

    def test_accuracy_of_uniform_is_max_prior(self, small_prior):
        accuracy = adversary_accuracy(RRMatrix.uniform(4), small_prior.probabilities)
        assert accuracy == pytest.approx(small_prior.max_probability)


class TestPrivacyScore:
    def test_identity_has_zero_privacy(self, small_prior):
        assert privacy_score(RRMatrix.identity(4), small_prior.probabilities) == pytest.approx(0.0)

    def test_uniform_has_maximum_privacy(self, small_prior):
        privacy = privacy_score(RRMatrix.uniform(4), small_prior.probabilities)
        assert privacy == pytest.approx(1.0 - small_prior.max_probability)

    def test_privacy_decreases_with_retention(self, small_prior):
        low = privacy_score(warner_matrix(4, 0.9), small_prior.probabilities)
        high = privacy_score(warner_matrix(4, 0.4), small_prior.probabilities)
        assert high > low

    def test_privacy_bounded_by_one_minus_max_prior(self, small_prior, rng):
        from repro.rr.matrix import random_rr_matrix

        for _ in range(20):
            matrix = random_rr_matrix(4, seed=rng)
            privacy = privacy_score(matrix, small_prior.probabilities)
            assert 0.0 <= privacy <= 1.0 - small_prior.max_probability + 1e-12


class TestBound:
    def test_max_posterior_of_identity_is_one(self, small_prior):
        assert max_posterior(RRMatrix.identity(4), small_prior.probabilities) == pytest.approx(1.0)

    def test_satisfies_bound(self, small_prior):
        assert satisfies_bound(RRMatrix.uniform(4), small_prior.probabilities, 0.5)
        assert not satisfies_bound(RRMatrix.identity(4), small_prior.probabilities, 0.9)

    def test_theorem5_lower_bound(self, small_prior, rng):
        """Theorem 5: max posterior >= max prior for any RR matrix."""
        from repro.rr.matrix import random_rr_matrix

        for _ in range(30):
            matrix = random_rr_matrix(4, seed=rng)
            assert (
                max_posterior(matrix, small_prior.probabilities)
                >= small_prior.max_probability - 1e-9
            )

    def test_check_bound_feasible(self, small_prior):
        check_bound_feasible(small_prior.probabilities, 0.5)
        with pytest.raises(InfeasibleBoundError):
            check_bound_feasible(small_prior.probabilities, 0.3)


class TestPrivacyReport:
    def test_report_fields_consistent(self, small_prior, warner_half):
        report = privacy_report(warner_half, small_prior.probabilities)
        assert report.privacy == pytest.approx(
            privacy_score(warner_half, small_prior.probabilities)
        )
        assert report.adversary_accuracy == pytest.approx(1.0 - report.privacy)
        assert report.max_posterior == pytest.approx(
            max_posterior(warner_half, small_prior.probabilities)
        )
        assert report.posterior.shape == (4, 4)
        assert report.map_estimates.shape == (4,)

    def test_report_satisfies(self, small_prior, warner_half):
        report = privacy_report(warner_half, small_prior.probabilities)
        assert report.satisfies(report.max_posterior + 0.01)
        assert not report.satisfies(report.max_posterior - 0.01)
