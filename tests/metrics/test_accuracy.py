"""Tests for repro.metrics.accuracy (Bayes estimation, Theorems 3 and 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, ValidationError
from repro.metrics.accuracy import (
    OrdinalAccuracy,
    ZeroOneAccuracy,
    bayes_estimate,
    expected_accuracy,
)
from repro.rr.schemes import warner_matrix


class TestZeroOneAccuracy:
    def test_score_matrix_is_identity(self):
        np.testing.assert_allclose(ZeroOneAccuracy().score_matrix(4), np.eye(4))

    def test_score_pairs(self):
        accuracy = ZeroOneAccuracy()
        assert accuracy.score(2, 2, 4) == 1.0
        assert accuracy.score(2, 3, 4) == 0.0


class TestOrdinalAccuracy:
    def test_width_one_reduces_to_zero_one(self):
        np.testing.assert_allclose(
            OrdinalAccuracy(width=1.0).score_matrix(5), np.eye(5)
        )

    def test_partial_credit_decays_with_distance(self):
        scores = OrdinalAccuracy(width=3.0).score_matrix(5)
        assert scores[0, 0] == 1.0
        assert scores[0, 1] == pytest.approx(2.0 / 3.0)
        assert scores[0, 4] == 0.0

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValidationError):
            OrdinalAccuracy(width=0.0)


class TestBayesEstimate:
    def test_map_for_zero_one_accuracy(self):
        posterior = np.array([0.1, 0.6, 0.3])
        estimate, value = bayes_estimate(posterior)
        assert estimate == 1
        assert value == pytest.approx(0.6)

    def test_ordinal_accuracy_maximises_expected_score(self):
        posterior = np.array([0.15, 0.2, 0.05, 0.25, 0.35])
        accuracy = OrdinalAccuracy(width=3.0)
        choice, value = bayes_estimate(posterior, accuracy)
        expected = accuracy.score_matrix(5) @ posterior
        assert choice == int(np.argmax(expected))
        assert value == pytest.approx(expected.max())

    def test_ordinal_and_zero_one_can_disagree(self):
        # Mass concentrated around the middle but the single mode at an
        # extreme: partial credit pulls the Bayes estimate towards the centre.
        posterior = np.array([0.4, 0.0, 0.3, 0.3, 0.0])
        zero_one_choice, _ = bayes_estimate(posterior)
        ordinal_choice, _ = bayes_estimate(posterior, OrdinalAccuracy(width=2.0))
        assert zero_one_choice == 0
        assert ordinal_choice != zero_one_choice

    def test_rejects_invalid_posterior(self):
        with pytest.raises(DataError):
            bayes_estimate(np.array([0.7, 0.7]))


class TestExpectedAccuracy:
    def test_identity_matrix_gives_accuracy_one(self, small_prior):
        accuracy = expected_accuracy(small_prior.probabilities, np.eye(4))
        assert accuracy == pytest.approx(1.0)

    def test_uniform_matrix_gives_prior_mode(self, small_prior):
        matrix = np.full((4, 4), 0.25)
        accuracy = expected_accuracy(small_prior.probabilities, matrix)
        assert accuracy == pytest.approx(small_prior.max_probability)

    def test_matches_joint_max_formula(self, small_prior):
        matrix = warner_matrix(4, 0.6).probabilities
        accuracy = expected_accuracy(small_prior.probabilities, matrix)
        joint = matrix * small_prior.probabilities[None, :]
        assert accuracy == pytest.approx(joint.max(axis=1).sum())

    def test_shape_mismatch_raises(self, small_prior):
        with pytest.raises(ValidationError):
            expected_accuracy(small_prior.probabilities, np.eye(3))
