"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.backend import registry as backend_registry
from repro.core.config import OptRRConfig
from repro.data.distribution import CategoricalDistribution
from repro.data.synthetic import gamma_distribution, normal_distribution, uniform_distribution
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


@pytest.fixture(autouse=True)
def _isolate_backend_state():
    """Restore the active array backend (and its env var) after every test.

    Backend activation is process-global (``repro.backend.registry``) and
    ``set_active_backend`` also exports ``REPRO_BACKEND`` for worker
    processes; without this guard a test selecting ``numpy-fused`` would
    leak into every later test and silently change what "default backend"
    means for the determinism suites.
    """
    active = backend_registry._ACTIVE
    env = os.environ.get(backend_registry.ENV_VAR)
    try:
        yield
    finally:
        backend_registry._ACTIVE = active
        if env is None:
            os.environ.pop(backend_registry.ENV_VAR, None)
        else:
            os.environ[backend_registry.ENV_VAR] = env


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_prior() -> CategoricalDistribution:
    """A skewed 4-category prior used by most metric tests."""
    return CategoricalDistribution(np.array([0.4, 0.3, 0.2, 0.1]))


@pytest.fixture
def normal_prior() -> CategoricalDistribution:
    """The paper's 10-category discretised normal prior."""
    return normal_distribution(10)


@pytest.fixture
def gamma_prior() -> CategoricalDistribution:
    """The paper's gamma(1.0, 2.0) prior."""
    return gamma_distribution(10, alpha=1.0, beta=2.0)


@pytest.fixture
def uniform_prior() -> CategoricalDistribution:
    """Discrete uniform prior over 10 categories."""
    return uniform_distribution(10)


@pytest.fixture
def warner_half() -> RRMatrix:
    """Warner matrix with p = 0.5 on a 4-category domain."""
    return warner_matrix(4, 0.5)


@pytest.fixture
def evaluator(small_prior: CategoricalDistribution) -> MatrixEvaluator:
    """Evaluator over the small prior with 10 000 records, no bound."""
    return MatrixEvaluator(small_prior, 10_000, delta=None)


@pytest.fixture
def fast_config() -> OptRRConfig:
    """A small-but-meaningful optimizer configuration for tests."""
    return OptRRConfig(
        population_size=16,
        archive_size=16,
        optimal_set_size=200,
        n_generations=25,
        delta=0.8,
        seed=7,
    )
