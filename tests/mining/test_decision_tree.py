"""Tests for repro.mining.decision_tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, ValidationError
from repro.mining.decision_tree import DecisionTreeBuilder


class TestDecisionTreeBuilder:
    def test_builds_a_tree_that_splits_on_the_predictive_attribute(
        self, disguised_survey, survey_matrices
    ):
        builder = DecisionTreeBuilder(
            survey_matrices, class_attribute="buys", max_depth=2
        )
        tree = builder.build(disguised_survey)
        # Income is by construction far more predictive than region.
        assert tree.split_attribute == "income"
        assert tree.count_nodes() > 1

    def test_tree_predictions_beat_majority_class(
        self, survey_dataset, disguised_survey, survey_matrices
    ):
        builder = DecisionTreeBuilder(
            survey_matrices, class_attribute="buys", max_depth=2
        )
        tree = builder.build(disguised_survey)
        records = survey_dataset.records
        names = survey_dataset.attribute_names
        predictions = np.array(
            [tree.predict_one(dict(zip(names, row))) for row in records]
        )
        truth = survey_dataset.column("buys")
        accuracy = float(np.mean(predictions == truth))
        majority = max(np.mean(truth == 0), np.mean(truth == 1))
        assert accuracy > majority + 0.02

    def test_class_distributions_are_valid(self, disguised_survey, survey_matrices):
        builder = DecisionTreeBuilder(survey_matrices, class_attribute="buys", max_depth=2)
        tree = builder.build(disguised_survey)

        def walk(node):
            assert node.class_distribution.sum() == pytest.approx(1.0, abs=1e-6)
            assert np.all(node.class_distribution >= -1e-9)
            for child in node.children.values():
                walk(child)

        walk(tree)

    def test_max_depth_zero_like_behaviour(self, disguised_survey, survey_matrices):
        builder = DecisionTreeBuilder(
            survey_matrices, class_attribute="buys", max_depth=1,
            min_information_gain=10.0,  # impossible gain -> leaf
        )
        tree = builder.build(disguised_survey)
        assert tree.is_leaf
        assert tree.predicted_class in (0, 1)

    def test_unknown_class_attribute_raises(self, disguised_survey, survey_matrices):
        builder = DecisionTreeBuilder(survey_matrices, class_attribute="missing")
        with pytest.raises(DataError):
            builder.build(disguised_survey)

    def test_class_attribute_cannot_be_candidate(self, disguised_survey, survey_matrices):
        builder = DecisionTreeBuilder(survey_matrices, class_attribute="buys")
        with pytest.raises(DataError):
            builder.build(disguised_survey, candidate_attributes=["buys", "income"])

    def test_prediction_falls_back_to_majority_for_unknown_branch(
        self, disguised_survey, survey_matrices
    ):
        builder = DecisionTreeBuilder(survey_matrices, class_attribute="buys", max_depth=1)
        tree = builder.build(disguised_survey)
        # A record missing the split attribute falls back to the node's class.
        prediction = tree.predict_one({"region": 0})
        assert prediction == tree.predicted_class

    def test_parameter_validation(self, survey_matrices):
        with pytest.raises(ValidationError):
            DecisionTreeBuilder(survey_matrices, class_attribute="buys", max_depth=0)
        with pytest.raises(DataError):
            DecisionTreeBuilder(
                survey_matrices, class_attribute="buys", min_information_gain=-1.0
            )
        with pytest.raises(DataError):
            DecisionTreeBuilder(
                survey_matrices, class_attribute="buys", min_node_probability=1.5
            )
