"""Tests for repro.mining.contingency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.mining.contingency import ContingencyEstimator, ContingencyTable


class TestContingencyTable:
    def test_marginal_and_probability(self):
        joint = np.array([[0.1, 0.2], [0.3, 0.4]])
        table = ContingencyTable(("a", "b"), (2, 2), joint)
        np.testing.assert_allclose(table.marginal("a"), [0.3, 0.7])
        np.testing.assert_allclose(table.marginal("b"), [0.4, 0.6])
        assert table.probability({"a": 1, "b": 0}) == pytest.approx(0.3)

    def test_conditional(self):
        joint = np.array([[0.1, 0.2], [0.3, 0.4]])
        table = ContingencyTable(("a", "b"), (2, 2), joint)
        conditional = table.conditional("b", {"a": 1})
        np.testing.assert_allclose(conditional, [0.3 / 0.7, 0.4 / 0.7])

    def test_conditional_rejects_target_in_condition(self):
        table = ContingencyTable(("a",), (2,), np.array([0.5, 0.5]))
        with pytest.raises(DataError):
            table.conditional("a", {"a": 0})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            ContingencyTable(("a", "b"), (2, 3), np.zeros((2, 2)))

    def test_unknown_attribute_marginal(self):
        table = ContingencyTable(("a",), (2,), np.array([0.5, 0.5]))
        with pytest.raises(DataError):
            table.marginal("z")


class TestContingencyEstimator:
    def test_reconstructs_joint_from_disguised_data(
        self, survey_dataset, survey_matrices, disguised_survey
    ):
        estimator = ContingencyEstimator(survey_matrices)
        estimate = estimator.estimate(disguised_survey, ["income", "buys"])
        truth = estimator.estimate_true(survey_dataset, ["income", "buys"])
        assert np.abs(estimate.probabilities - truth.probabilities).max() < 0.05

    def test_undisguised_attributes_use_identity(self, survey_dataset):
        estimator = ContingencyEstimator({})
        estimate = estimator.estimate(survey_dataset, ["income"])
        truth = survey_dataset.distribution("income").probabilities
        np.testing.assert_allclose(estimate.marginal("income"), truth, atol=1e-9)

    def test_three_way_joint(self, survey_dataset, survey_matrices, disguised_survey):
        estimator = ContingencyEstimator(survey_matrices)
        estimate = estimator.estimate(disguised_survey, ["income", "region", "buys"])
        truth = estimator.estimate_true(survey_dataset, ["income", "region", "buys"])
        assert estimate.probabilities.shape == (3, 2, 2)
        assert np.abs(estimate.probabilities - truth.probabilities).max() < 0.06

    def test_domain_mismatch_raises(self, disguised_survey):
        from repro.rr.schemes import warner_matrix

        estimator = ContingencyEstimator({"income": warner_matrix(5, 0.7)})
        with pytest.raises(DataError, match="domain"):
            estimator.estimate(disguised_survey, ["income"])

    def test_empty_attribute_list_raises(self, disguised_survey, survey_matrices):
        estimator = ContingencyEstimator(survey_matrices)
        with pytest.raises(DataError):
            estimator.estimate(disguised_survey, [])

    def test_iterative_method(self, survey_dataset, survey_matrices, disguised_survey):
        estimator = ContingencyEstimator(survey_matrices, method="iterative")
        estimate = estimator.estimate(disguised_survey, ["income", "buys"])
        truth = ContingencyEstimator(survey_matrices).estimate_true(
            survey_dataset, ["income", "buys"]
        )
        assert np.abs(estimate.probabilities - truth.probabilities).max() < 0.05
