"""Tests for repro.mining.association."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, ValidationError
from repro.mining.association import AssociationMiner, ItemsetSupport


class TestItemsetSupport:
    def test_items_are_sorted(self):
        itemset = ItemsetSupport((("b", 1), ("a", 0)), 0.4)
        assert itemset.items == (("a", 0), ("b", 1))
        assert itemset.size == 2


class TestSupportEstimation:
    def test_single_item_support_close_to_truth(
        self, survey_dataset, survey_matrices, disguised_survey
    ):
        miner = AssociationMiner(survey_matrices, min_support=0.05)
        estimated = miner.itemset_support(disguised_survey, [("income", 0)]).support
        truth = float(np.mean(survey_dataset.column("income") == 0))
        assert estimated == pytest.approx(truth, abs=0.05)

    def test_pair_support_close_to_truth(
        self, survey_dataset, survey_matrices, disguised_survey
    ):
        miner = AssociationMiner(survey_matrices, min_support=0.05)
        estimated = miner.itemset_support(
            disguised_survey, [("income", 2), ("buys", 1)]
        ).support
        truth = float(
            np.mean(
                (survey_dataset.column("income") == 2) & (survey_dataset.column("buys") == 1)
            )
        )
        assert estimated == pytest.approx(truth, abs=0.05)

    def test_duplicate_attribute_rejected(self, disguised_survey, survey_matrices):
        miner = AssociationMiner(survey_matrices)
        with pytest.raises(DataError):
            miner.itemset_support(disguised_survey, [("income", 0), ("income", 1)])

    def test_empty_itemset_rejected(self, disguised_survey, survey_matrices):
        miner = AssociationMiner(survey_matrices)
        with pytest.raises(DataError):
            miner.itemset_support(disguised_survey, [])


class TestFrequentItemsets:
    def test_finds_frequent_singletons_and_pairs(self, disguised_survey, survey_matrices):
        miner = AssociationMiner(survey_matrices, min_support=0.15, max_itemset_size=2)
        itemsets = miner.frequent_itemsets(disguised_survey)
        assert any(itemset.size == 1 for itemset in itemsets)
        assert any(itemset.size == 2 for itemset in itemsets)
        assert all(itemset.support >= 0.15 for itemset in itemsets)

    def test_min_support_filters(self, disguised_survey, survey_matrices):
        permissive = AssociationMiner(survey_matrices, min_support=0.05, max_itemset_size=2)
        strict = AssociationMiner(survey_matrices, min_support=0.4, max_itemset_size=2)
        assert len(strict.frequent_itemsets(disguised_survey)) < len(
            permissive.frequent_itemsets(disguised_survey)
        )


class TestRules:
    def test_mines_the_planted_rule(self, disguised_survey, survey_matrices):
        """High income strongly implies buying in the synthetic data; the rule
        should be recoverable from the disguised dataset."""
        miner = AssociationMiner(
            survey_matrices, min_support=0.08, min_confidence=0.6, max_itemset_size=2
        )
        rules = miner.mine_rules(disguised_survey, attributes=("income", "buys"))
        matching = [
            rule
            for rule in rules
            if rule.antecedent == (("income", 2),) and rule.consequent == (("buys", 1),)
        ]
        assert matching, f"expected income=high -> buys=yes among {rules}"
        assert matching[0].confidence > 0.6

    def test_rule_confidence_is_capped_at_one(self, disguised_survey, survey_matrices):
        miner = AssociationMiner(survey_matrices, min_support=0.05, min_confidence=0.1,
                                 max_itemset_size=2)
        rules = miner.mine_rules(disguised_survey, attributes=("income", "buys"))
        assert all(rule.confidence <= 1.0 for rule in rules)

    def test_validation_of_thresholds(self, survey_matrices):
        with pytest.raises(ValidationError):
            AssociationMiner(survey_matrices, min_support=1.5)
        with pytest.raises(DataError):
            AssociationMiner(survey_matrices, max_itemset_size=0)
