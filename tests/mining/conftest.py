"""Fixtures for the privacy-preserving mining tests.

A small synthetic "survey" dataset with a known dependence structure: the
class attribute ``buys`` depends strongly on ``income`` and weakly on
``region``.  The RR matrices disguise the predictive attributes; the class
attribute stays in the clear (the usual miner-side setting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.rr.matrix import RRMatrix
from repro.rr.randomize import randomize_dataset
from repro.rr.schemes import warner_matrix


N_RECORDS = 8000


@pytest.fixture
def survey_dataset(rng) -> CategoricalDataset:
    income = rng.choice(3, size=N_RECORDS, p=[0.5, 0.3, 0.2])   # low, mid, high
    region = rng.choice(2, size=N_RECORDS, p=[0.6, 0.4])
    # P(buys=1) rises steeply with income, mildly with region.
    buy_probability = 0.15 + 0.35 * income + 0.05 * region
    buys = (rng.random(N_RECORDS) < buy_probability).astype(np.int64)
    return CategoricalDataset.from_columns(
        {"income": income, "region": region, "buys": buys},
        {
            "income": ("low", "mid", "high"),
            "region": ("north", "south"),
            "buys": ("no", "yes"),
        },
    )


@pytest.fixture
def survey_matrices() -> dict[str, RRMatrix]:
    return {"income": warner_matrix(3, 0.7), "region": warner_matrix(2, 0.8)}


@pytest.fixture
def disguised_survey(survey_dataset, survey_matrices) -> CategoricalDataset:
    return randomize_dataset(survey_dataset, survey_matrices, seed=99)
