"""Tests for repro.io (serialization of matrices and results)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.exceptions import RRMatrixError, ValidationError
from repro.io import (
    dump_canonical_json,
    experiment_result_from_dict,
    experiment_result_to_dict,
    load_experiment_result,
    load_matrix,
    load_result,
    matrix_from_dict,
    matrix_to_dict,
    result_from_dict,
    result_to_dict,
    save_experiment_result,
    save_matrix,
    save_result,
)
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


class TestMatrixSerialization:
    def test_round_trip_dict(self):
        matrix = warner_matrix(5, 0.63)
        restored = matrix_from_dict(matrix_to_dict(matrix))
        assert restored == matrix

    def test_round_trip_file(self, tmp_path):
        matrix = warner_matrix(4, 0.42)
        path = save_matrix(matrix, tmp_path / "matrix.json")
        assert path.exists()
        assert load_matrix(path) == matrix

    def test_file_is_valid_json(self, tmp_path):
        path = save_matrix(RRMatrix.identity(3), tmp_path / "matrix.json")
        document = json.loads(path.read_text())
        assert document["type"] == "rr_matrix"
        assert document["n_categories"] == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="expected"):
            matrix_from_dict({"type": "something", "format_version": 1})

    def test_rejects_wrong_version(self):
        document = matrix_to_dict(RRMatrix.identity(2))
        document["format_version"] = 99
        with pytest.raises(ValidationError, match="format version"):
            matrix_from_dict(document)

    def test_rejects_inconsistent_size(self):
        document = matrix_to_dict(RRMatrix.identity(3))
        document["n_categories"] = 4
        with pytest.raises(ValidationError, match="does not match"):
            matrix_from_dict(document)

    def test_rejects_corrupted_probabilities(self):
        document = matrix_to_dict(RRMatrix.identity(3))
        document["probabilities"][0][0] = 5.0
        with pytest.raises(RRMatrixError):
            matrix_from_dict(document)


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def result(self, ):
        prior = np.array([0.4, 0.35, 0.25])
        config = OptRRConfig(
            population_size=10, archive_size=10, n_generations=10, delta=0.8, seed=0
        )
        return OptRROptimizer(prior, 1000, config).run()

    def test_round_trip_dict(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert len(restored) == len(result)
        np.testing.assert_allclose(restored.objectives(), result.objectives())
        assert restored.n_generations == result.n_generations
        assert restored.n_evaluations == result.n_evaluations

    def test_round_trip_preserves_matrices(self, result):
        restored = result_from_dict(result_to_dict(result))
        for original, loaded in zip(result, restored):
            assert original.matrix == loaded.matrix

    def test_round_trip_file(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        restored = load_result(path)
        np.testing.assert_allclose(restored.privacy_values(), result.privacy_values())

    def test_optimal_set_points_optional(self, result, tmp_path):
        without = result_to_dict(result)
        assert "optimal_set_points" not in without
        with_set = result_to_dict(result, include_optimal_set=True)
        assert len(with_set["optimal_set_points"]) == len(result.optimal_set_points)
        restored = result_from_dict(with_set)
        assert len(restored.optimal_set_points) == len(result.optimal_set_points)

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError):
            result_from_dict({"type": "rr_matrix", "format_version": 1})


class TestExperimentResultSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.runner import run_experiment

        return run_experiment("fig4a", seed=0, n_generations=8, population_size=8)

    def test_round_trip_dict(self, result):
        restored = experiment_result_from_dict(experiment_result_to_dict(result))
        assert restored.experiment_id == result.experiment_id
        assert restored.reproduced == result.reproduced
        assert restored.summary == result.summary
        assert set(restored.fronts) == set(result.fronts)
        assert restored.metrics == dict(result.metrics)

    def test_round_trip_preserves_front_points_and_matrices(self, result):
        restored = experiment_result_from_dict(experiment_result_to_dict(result))
        for name, front in result.fronts.items():
            loaded = restored.fronts[name]
            np.testing.assert_array_equal(loaded.privacy_values(), front.privacy_values())
            np.testing.assert_array_equal(loaded.utility_values(), front.utility_values())
            for original, point in zip(front, loaded):
                assert original.matrix == point.matrix

    def test_round_trip_preserves_comparison(self, result):
        restored = experiment_result_from_dict(experiment_result_to_dict(result))
        assert restored.comparison == result.comparison

    def test_round_trip_without_comparison(self):
        from repro.experiments.runner import run_experiment

        result = run_experiment("fact1", seed=0)
        restored = experiment_result_from_dict(experiment_result_to_dict(result))
        assert restored.comparison is None
        assert restored.metrics == dict(result.metrics)

    def test_round_trip_file(self, result, tmp_path):
        path = save_experiment_result(result, tmp_path / "experiment.json")
        restored = load_experiment_result(path)
        assert restored.experiment_id == result.experiment_id

    def test_serialization_is_byte_stable(self, result):
        document = experiment_result_to_dict(result)
        round_tripped = experiment_result_from_dict(document)
        assert dump_canonical_json(experiment_result_to_dict(round_tripped)) == (
            dump_canonical_json(document)
        )

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError):
            experiment_result_from_dict({"type": "rr_matrix", "format_version": 1})


class TestCheckpointDocuments:
    def _checkpoint(self, tmp_path):
        from repro.data.synthetic import normal_distribution

        optimizer = OptRROptimizer(
            normal_distribution(6),
            3000,
            OptRRConfig(
                population_size=8, archive_size=8, n_generations=3, delta=0.85, seed=2
            ),
        )
        path = tmp_path / "ck.json"
        optimizer.run(checkpoint_path=str(path), checkpoint_every=1)
        return path

    def test_save_load_round_trip(self, tmp_path):
        from repro.io import load_checkpoint, save_checkpoint

        path = self._checkpoint(tmp_path)
        document = load_checkpoint(path)
        assert document["type"] == "checkpoint"
        assert document["algorithm"] == "optrr"
        assert document["checkpoint_version"] == 1
        copy_path = save_checkpoint(document, tmp_path / "copy.json")
        assert load_checkpoint(copy_path) == document

    def test_load_rejects_other_document_types(self, tmp_path):
        from repro.io import load_checkpoint

        path = tmp_path / "notes.json"
        path.write_text(json.dumps({"type": "rr_matrix", "format_version": 1}))
        with pytest.raises(ValidationError, match="checkpoint"):
            load_checkpoint(path)

    def test_load_rejects_unknown_format_version(self, tmp_path):
        from repro.io import load_checkpoint

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"type": "checkpoint", "format_version": 99}))
        with pytest.raises(ValidationError, match="format version"):
            load_checkpoint(path)

    def test_save_rejects_non_checkpoint_documents(self, tmp_path):
        from repro.io import save_checkpoint

        with pytest.raises(ValidationError, match="checkpoint"):
            save_checkpoint({"type": "experiment_result", "format_version": 1},
                            tmp_path / "x.json")

    def test_writes_are_atomic_no_temp_residue(self, tmp_path):
        self._checkpoint(tmp_path)
        assert not list(tmp_path.glob(".tmp-checkpoint-*"))
