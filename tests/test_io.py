"""Tests for repro.io (serialization of matrices and results)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.exceptions import ValidationError
from repro.io import (
    load_matrix,
    load_result,
    matrix_from_dict,
    matrix_to_dict,
    result_from_dict,
    result_to_dict,
    save_matrix,
    save_result,
)
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


class TestMatrixSerialization:
    def test_round_trip_dict(self):
        matrix = warner_matrix(5, 0.63)
        restored = matrix_from_dict(matrix_to_dict(matrix))
        assert restored == matrix

    def test_round_trip_file(self, tmp_path):
        matrix = warner_matrix(4, 0.42)
        path = save_matrix(matrix, tmp_path / "matrix.json")
        assert path.exists()
        assert load_matrix(path) == matrix

    def test_file_is_valid_json(self, tmp_path):
        path = save_matrix(RRMatrix.identity(3), tmp_path / "matrix.json")
        document = json.loads(path.read_text())
        assert document["type"] == "rr_matrix"
        assert document["n_categories"] == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="expected"):
            matrix_from_dict({"type": "something", "format_version": 1})

    def test_rejects_wrong_version(self):
        document = matrix_to_dict(RRMatrix.identity(2))
        document["format_version"] = 99
        with pytest.raises(ValidationError, match="format version"):
            matrix_from_dict(document)

    def test_rejects_inconsistent_size(self):
        document = matrix_to_dict(RRMatrix.identity(3))
        document["n_categories"] = 4
        with pytest.raises(ValidationError, match="does not match"):
            matrix_from_dict(document)

    def test_rejects_corrupted_probabilities(self):
        document = matrix_to_dict(RRMatrix.identity(3))
        document["probabilities"][0][0] = 5.0
        with pytest.raises(Exception):
            matrix_from_dict(document)


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def result(self, ):
        prior = np.array([0.4, 0.35, 0.25])
        config = OptRRConfig(
            population_size=10, archive_size=10, n_generations=10, delta=0.8, seed=0
        )
        return OptRROptimizer(prior, 1000, config).run()

    def test_round_trip_dict(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert len(restored) == len(result)
        np.testing.assert_allclose(restored.objectives(), result.objectives())
        assert restored.n_generations == result.n_generations
        assert restored.n_evaluations == result.n_evaluations

    def test_round_trip_preserves_matrices(self, result):
        restored = result_from_dict(result_to_dict(result))
        for original, loaded in zip(result, restored):
            assert original.matrix == loaded.matrix

    def test_round_trip_file(self, result, tmp_path):
        path = save_result(result, tmp_path / "result.json")
        restored = load_result(path)
        np.testing.assert_allclose(restored.privacy_values(), result.privacy_values())

    def test_optimal_set_points_optional(self, result, tmp_path):
        without = result_to_dict(result)
        assert "optimal_set_points" not in without
        with_set = result_to_dict(result, include_optimal_set=True)
        assert len(with_set["optimal_set_points"]) == len(result.optimal_set_points)
        restored = result_from_dict(with_set)
        assert len(restored.optimal_set_points) == len(result.optimal_set_points)

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError):
            result_from_dict({"type": "rr_matrix", "format_version": 1})
