"""Smoke tests executing every example script with a reduced budget.

The examples are user-facing documentation; these tests guarantee they keep
running as the library evolves.  Each example is executed in-process (so the
installed package is used) with its ``main`` function where possible.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, monkeypatch, argv: list[str] | None = None) -> None:
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")


@pytest.fixture(autouse=True)
def shrink_optimizer_budget(monkeypatch):
    """Patch OptRRConfig defaults so the examples finish quickly in CI."""
    from repro.core import config as config_module

    original = config_module.OptRRConfig

    class SmallConfig(original):  # type: ignore[misc,valid-type]
        def __new__(cls, *args, **kwargs):  # pragma: no cover - trivial
            return super().__new__(cls)

        def __init__(self, *args, **kwargs):
            kwargs.setdefault("population_size", 16)
            kwargs.setdefault("archive_size", 16)
            kwargs["population_size"] = min(kwargs["population_size"], 16)
            kwargs["archive_size"] = min(kwargs["archive_size"], 16)
            kwargs["n_generations"] = min(kwargs.get("n_generations", 50), 50)
            super().__init__(*args, **kwargs)

    for module_name, module in list(sys.modules.items()):
        if module_name.startswith("repro") and hasattr(module, "OptRRConfig"):
            monkeypatch.setattr(module, "OptRRConfig", SmallConfig)
    yield


class TestExamplesRun:
    def test_example_files_exist(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {"quickstart.py", "scheme_comparison.py", "adult_survey.py",
                "association_mining.py", "decision_tree_mining.py"} <= names

    def test_quickstart(self, monkeypatch, capsys):
        run_example("quickstart.py", monkeypatch)
        output = capsys.readouterr().out
        assert "Chosen matrix" in output
        assert "Reconstruction MSE" in output

    def test_scheme_comparison(self, monkeypatch, capsys):
        run_example("scheme_comparison.py", monkeypatch, argv=["0.8"])
        output = capsys.readouterr().out
        assert "optrr" in output
        assert "warner" in output

    def test_adult_survey(self, monkeypatch, capsys):
        run_example("adult_survey.py", monkeypatch)
        output = capsys.readouterr().out
        assert "Adult-like dataset" in output
        assert "optrr" in output

    def test_association_mining(self, monkeypatch, capsys):
        run_example("association_mining.py", monkeypatch)
        output = capsys.readouterr().out
        assert "Optimized front" in output
        assert "Mined" in output
        assert "L1 error" in output
        assert "front[00]" in output

    def test_decision_tree_mining(self, monkeypatch, capsys):
        run_example("decision_tree_mining.py", monkeypatch)
        output = capsys.readouterr().out
        assert "Tree accuracy vs disguise strength" in output
        assert "warner:0.2" in output
        assert "Decision tree reconstructed" in output
        assert "Accuracy on the original records" in output
