"""Load the stand-alone scripts under ``tools/`` as importable modules."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from types import ModuleType

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_tool(name: str) -> ModuleType:
    """Import ``tools/<name>.py`` under the module name ``tool_<name>``."""
    module_name = f"tool_{name}"
    if module_name in sys.modules:
        return sys.modules[module_name]
    spec = importlib.util.spec_from_file_location(
        module_name, REPO_ROOT / "tools" / f"{name}.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module
