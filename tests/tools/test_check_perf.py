"""Unit tests for the perf-regression gate (``tools/check_perf.py``)."""

from __future__ import annotations

import json
from pathlib import Path

from tool_loader import load_tool

check_perf = load_tool("check_perf")


def _write_baseline(tmp_path: Path, thresholds: dict) -> Path:
    path = tmp_path / "perf_baseline.json"
    path.write_text(json.dumps(thresholds), encoding="utf-8")
    return path


def _write_bench(tmp_path: Path, name: str, records: list[dict]) -> None:
    (tmp_path / f"BENCH_{name}.json").write_text(
        json.dumps({"records": records}), encoding="utf-8"
    )


def test_passes_when_every_op_meets_its_bar(tmp_path: Path) -> None:
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0}})
    _write_bench(tmp_path, "batch", [{"op": "evaluate", "speedup": 5.2}])
    assert check_perf.check(baseline, tmp_path) == 0


def test_fails_on_regression_below_threshold(tmp_path: Path) -> None:
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0}})
    _write_bench(tmp_path, "batch", [{"op": "evaluate", "speedup": 2.9}])
    assert check_perf.check(baseline, tmp_path) == 1


def test_exact_threshold_passes(tmp_path: Path) -> None:
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0}})
    _write_bench(tmp_path, "batch", [{"op": "evaluate", "speedup": 3.0}])
    assert check_perf.check(baseline, tmp_path) == 0


def test_missing_bench_file_fails(tmp_path: Path) -> None:
    # A benchmark that silently stopped emitting must not turn the gate green.
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0}})
    assert check_perf.check(baseline, tmp_path) == 1


def test_missing_op_record_fails(tmp_path: Path) -> None:
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0, "setup": 1.5}})
    _write_bench(tmp_path, "batch", [{"op": "evaluate", "speedup": 9.0}])
    assert check_perf.check(baseline, tmp_path) == 1


def test_record_without_speedup_field_fails(tmp_path: Path) -> None:
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0}})
    _write_bench(tmp_path, "batch", [{"op": "evaluate", "elapsed": 1.2}])
    assert check_perf.check(baseline, tmp_path) == 1


def test_only_filters_to_one_section(tmp_path: Path) -> None:
    # The other section's BENCH file does not exist — with --only it must
    # not be required.
    baseline = _write_baseline(
        tmp_path, {"batch": {"evaluate": 3.0}, "fidelity": {"full_evals": 5.0}}
    )
    _write_bench(tmp_path, "fidelity", [{"op": "full_evals", "speedup": 6.0}])
    assert check_perf.check(baseline, tmp_path, only=["fidelity"]) == 0
    assert check_perf.check(baseline, tmp_path) == 1


def test_only_with_unknown_section_fails(tmp_path: Path) -> None:
    baseline = _write_baseline(tmp_path, {"batch": {"evaluate": 3.0}})
    assert check_perf.check(baseline, tmp_path, only=["no_such_section"]) == 1


def test_underscore_sections_are_metadata(tmp_path: Path) -> None:
    baseline = _write_baseline(
        tmp_path, {"_comment": {"anything": 1.0}, "batch": {"evaluate": 3.0}}
    )
    _write_bench(tmp_path, "batch", [{"op": "evaluate", "speedup": 4.0}])
    assert check_perf.check(baseline, tmp_path) == 0


def test_load_records_maps_ops(tmp_path: Path) -> None:
    _write_bench(
        tmp_path,
        "batch",
        [{"op": "evaluate", "speedup": 4.0}, {"op": "setup", "speedup": 1.1}],
    )
    records = check_perf.load_records(tmp_path, "batch")
    assert set(records) == {"evaluate", "setup"}
    assert records["evaluate"]["speedup"] == 4.0
    assert check_perf.load_records(tmp_path, "absent") == {}
