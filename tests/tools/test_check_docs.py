"""Unit tests for the docs link checker (``tools/check_docs.py``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from tool_loader import load_tool

check_docs = load_tool("check_docs")


@pytest.fixture
def doc_tree(tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> Path:
    """A minimal repo skeleton the checker is pointed at."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro" / "rr").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (tmp_path / "src" / "repro" / "io.py").write_text(
        "def dump_canonical_json(document):\n    return document\n", encoding="utf-8"
    )
    (tmp_path / "src" / "repro" / "rr" / "__init__.py").write_text("", encoding="utf-8")
    (tmp_path / "src" / "repro" / "rr" / "matrix.py").write_text("", encoding="utf-8")
    (tmp_path / "README.md").write_text("# Readme\n", encoding="utf-8")
    monkeypatch.setattr(check_docs, "ROOT", tmp_path)
    return tmp_path


def _doc(doc_tree: Path, name: str, text: str) -> Path:
    path = doc_tree / "docs" / name
    path.write_text(text, encoding="utf-8")
    return path


def test_clean_tree_passes(doc_tree: Path) -> None:
    _doc(doc_tree, "guide.md", "See [the readme](../README.md) and `repro.io`.\n")
    assert check_docs.main() == 0


def test_broken_relative_link_fails(doc_tree: Path) -> None:
    path = _doc(doc_tree, "guide.md", "See [missing](no_such.md).\n")
    problems = check_docs.check_file(path)
    assert len(problems) == 1
    assert "broken link -> no_such.md" in problems[0]
    assert check_docs.main() == 1


def test_http_links_and_anchors_are_skipped(doc_tree: Path) -> None:
    path = _doc(
        doc_tree,
        "guide.md",
        "[ext](https://example.org/x) [plain](http://example.org) "
        "[mail](mailto:a@b.c) [anchor](#section)\n",
    )
    assert check_docs.check_file(path) == []


def test_link_anchor_suffix_is_stripped(doc_tree: Path) -> None:
    _doc(doc_tree, "other.md", "target\n")
    path = _doc(doc_tree, "guide.md", "[jump](other.md#part-two)\n")
    assert check_docs.check_file(path) == []


def test_missing_backticked_file_reference_fails(doc_tree: Path) -> None:
    path = _doc(doc_tree, "guide.md", "Run `tools/does_not_exist.py` first.\n")
    problems = check_docs.check_file(path)
    assert len(problems) == 1
    assert "missing file reference -> tools/does_not_exist.py" in problems[0]


def test_existing_backticked_file_reference_passes(doc_tree: Path) -> None:
    path = _doc(doc_tree, "guide.md", "See `src/repro/rr/matrix.py`.\n")
    assert check_docs.check_file(path) == []


def test_unknown_module_reference_fails(doc_tree: Path) -> None:
    path = _doc(doc_tree, "guide.md", "Import `repro.nonexistent_module`.\n")
    problems = check_docs.check_file(path)
    assert len(problems) == 1
    assert "unknown module -> repro.nonexistent_module" in problems[0]


def test_module_reference_with_attribute_tail_resolves(doc_tree: Path) -> None:
    # `repro.io.dump_canonical_json`-style: the module prefix resolves, the
    # tail names an attribute.
    path = _doc(doc_tree, "guide.md", "Call `repro.io.dump_canonical_json`.\n")
    assert check_docs.check_file(path) == []


def test_paper_map_source_references(doc_tree: Path) -> None:
    good = _doc(doc_tree, "paper_map.md", "| Thm 2 | `rr/matrix.py` |\n")
    assert check_docs.check_file(good) == []
    bad = _doc(doc_tree, "paper_map.md", "| Thm 2 | `rr/vanished.py` |\n")
    problems = check_docs.check_file(bad)
    assert len(problems) == 1
    assert "missing source reference -> rr/vanished.py" in problems[0]


def test_paper_map_rules_only_apply_to_paper_map(doc_tree: Path) -> None:
    # The same bare source path in another doc is not resolved against
    # src/repro/ — it is simply not a checked reference shape there.
    path = _doc(doc_tree, "guide.md", "| Thm 2 | `rr/vanished.py` |\n")
    assert check_docs.check_file(path) == []


def test_main_reports_problem_count(doc_tree: Path, capsys: pytest.CaptureFixture[str]) -> None:
    _doc(doc_tree, "a.md", "[x](gone.md)\n")
    _doc(doc_tree, "b.md", "`repro.vanished`\n")
    assert check_docs.main() == 1
    output = capsys.readouterr().out
    assert "2 documentation problem(s)" in output


def test_real_docs_tree_is_clean() -> None:
    # The repository's own documentation must pass its own checker.
    # (monkeypatch restored ROOT when the fixture-based tests finished.)
    assert check_docs.ROOT == Path(__file__).resolve().parents[2]
    assert check_docs.main() == 0
