"""Property-based tests (hypothesis) on the core invariants.

These tests exercise the mathematical invariants the paper relies on over a
broad space of randomly generated priors and RR matrices:

* RR matrices stay column-stochastic under every variation operator;
* privacy lies in ``[0, 1 - max P(X)]`` and Theorem 5 holds;
* the closed-form utility is non-negative and decreases with ``N``;
* the inversion estimator is exact on the noiseless disguised distribution;
* Theorem 2 (Warner / UP / FRAPP equivalence) holds for arbitrary parameters;
* Pareto dominance is irreflexive and antisymmetric;
* the 2-D hypervolume never shrinks when a point is added.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.operators import (
    column_crossover,
    enforce_privacy_bound,
    proportional_column_mutation,
)
from repro.data.distribution import CategoricalDistribution
from repro.emoo.dominance import dominates
from repro.emoo.indicators import hypervolume_2d
from repro.emoo.individual import Individual
from repro.metrics.privacy import max_posterior, privacy_score
from repro.metrics.utility import theoretical_mse, utility_score
from repro.rr.estimation import InversionEstimator, IterativeEstimator
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import (
    frapp_matrix,
    uniform_perturbation_matrix,
    warner_equivalent_p,
    warner_matrix,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- strategies ---------------------------------------------------------------
@st.composite
def priors(draw, min_categories: int = 2, max_categories: int = 8):
    """A random non-degenerate categorical prior."""
    n = draw(st.integers(min_categories, max_categories))
    weights = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(0.05, 10.0, allow_nan=False, allow_infinity=False),
        )
    )
    return CategoricalDistribution.from_weights(weights)


@st.composite
def rr_matrices(draw, n: int | None = None, min_categories: int = 2, max_categories: int = 8):
    """A random column-stochastic RR matrix."""
    if n is None:
        n = draw(st.integers(min_categories, max_categories))
    columns = []
    for _ in range(n):
        weights = draw(
            hnp.arrays(
                np.float64,
                n,
                elements=st.floats(0.01, 10.0, allow_nan=False, allow_infinity=False),
            )
        )
        columns.append(weights / weights.sum())
    return RRMatrix(np.column_stack(columns))


@st.composite
def priors_and_matrices(draw):
    prior = draw(priors())
    matrix = draw(rr_matrices(n=prior.n_categories))
    return prior, matrix


def assert_column_stochastic(matrix: RRMatrix) -> None:
    assert np.all(matrix.probabilities >= -1e-12)
    assert np.all(matrix.probabilities <= 1.0 + 1e-12)
    np.testing.assert_allclose(matrix.probabilities.sum(axis=0), 1.0, atol=1e-8)


# -- operator invariants ---------------------------------------------------------
class TestOperatorInvariants:
    @SETTINGS
    @given(pair=priors_and_matrices(), other_seed=st.integers(0, 2**31 - 1))
    def test_crossover_preserves_stochasticity(self, pair, other_seed):
        _, matrix = pair
        rng = np.random.default_rng(other_seed)
        other = RRMatrix(
            np.random.default_rng(other_seed + 1).dirichlet(
                np.ones(matrix.n_categories), size=matrix.n_categories
            ).T
        )
        child_a, child_b = column_crossover(matrix, other, rng)
        assert_column_stochastic(child_a)
        assert_column_stochastic(child_b)

    @SETTINGS
    @given(matrix=rr_matrices(), seed=st.integers(0, 2**31 - 1), scale=st.floats(0.01, 1.0))
    def test_mutation_preserves_stochasticity(self, matrix, seed, scale):
        mutated = proportional_column_mutation(matrix, np.random.default_rng(seed), scale=scale)
        assert_column_stochastic(mutated)

    @SETTINGS
    @given(pair=priors_and_matrices(), delta_offset=st.floats(0.01, 0.3))
    def test_bound_repair_preserves_stochasticity_and_never_worsens(self, pair, delta_offset):
        prior, matrix = pair
        delta = min(0.999, prior.max_probability + delta_offset)
        repaired = enforce_privacy_bound(matrix, prior.probabilities, delta)
        assert_column_stochastic(repaired)
        assert (
            max_posterior(repaired, prior.probabilities)
            <= max_posterior(matrix, prior.probabilities) + 1e-9
        )


# -- metric invariants ---------------------------------------------------------
class TestMetricInvariants:
    @SETTINGS
    @given(pair=priors_and_matrices())
    def test_privacy_is_bounded(self, pair):
        prior, matrix = pair
        privacy = privacy_score(matrix, prior.probabilities)
        assert -1e-12 <= privacy <= 1.0 - prior.max_probability + 1e-9

    @SETTINGS
    @given(pair=priors_and_matrices())
    def test_theorem5_posterior_lower_bound(self, pair):
        prior, matrix = pair
        assert max_posterior(matrix, prior.probabilities) >= prior.max_probability - 1e-9

    @SETTINGS
    @given(pair=priors_and_matrices(), n_records=st.integers(10, 100_000))
    def test_utility_nonnegative_and_scales_with_n(self, pair, n_records):
        prior, matrix = pair
        if not matrix.is_invertible:
            return
        mse = theoretical_mse(matrix, prior.probabilities, n_records)
        assert np.all(mse >= -1e-10)
        double = utility_score(matrix, prior.probabilities, 2 * n_records)
        single = utility_score(matrix, prior.probabilities, n_records)
        assert double == pytest.approx(single / 2, rel=1e-9, abs=1e-18)

    @SETTINGS
    @given(pair=priors_and_matrices())
    def test_inversion_estimator_exact_on_noiseless_input(self, pair):
        prior, matrix = pair
        if not matrix.is_invertible or matrix.condition > 1e6:
            return
        disguised = matrix.disguise_distribution(prior.probabilities)
        estimate = InversionEstimator().estimate(disguised * 10_000, matrix)
        np.testing.assert_allclose(estimate.probabilities, prior.probabilities, atol=1e-6)

    @SETTINGS
    @given(pair=priors_and_matrices())
    def test_iterative_estimator_returns_distribution(self, pair):
        prior, matrix = pair
        disguised = matrix.disguise_distribution(prior.probabilities)
        estimate = IterativeEstimator(max_iterations=300).estimate(disguised * 1000, matrix)
        assert np.all(estimate.probabilities >= -1e-12)
        assert estimate.probabilities.sum() == pytest.approx(1.0)


# -- scheme equivalence (Theorem 2) --------------------------------------------
class TestSchemeEquivalenceProperty:
    @SETTINGS
    @given(n=st.integers(2, 12), q=st.floats(0.0, 1.0))
    def test_up_is_a_warner_matrix(self, n, q):
        p = warner_equivalent_p(n, q=q)
        assert uniform_perturbation_matrix(n, q).isclose(warner_matrix(n, p), atol=1e-9)

    @SETTINGS
    @given(n=st.integers(2, 12), gamma=st.floats(0.1, 1e4))
    def test_frapp_is_a_warner_matrix(self, n, gamma):
        p = warner_equivalent_p(n, gamma=gamma)
        assert frapp_matrix(n, gamma).isclose(warner_matrix(n, p), atol=1e-9)

    @SETTINGS
    @given(pair=priors_and_matrices(), q=st.floats(0.0, 1.0))
    def test_equivalent_matrices_have_equal_objectives(self, pair, q):
        prior, _ = pair
        n = prior.n_categories
        p = warner_equivalent_p(n, q=q)
        up = uniform_perturbation_matrix(n, q)
        warner = warner_matrix(n, p)
        assert privacy_score(up, prior.probabilities) == pytest.approx(
            privacy_score(warner, prior.probabilities)
        )
        # Near-singular pairs (q -> 1/n) amplify rounding through the inverse
        # far past any fixed tolerance; guard like the estimator properties.
        if up.is_invertible and up.condition <= 1e6:
            assert utility_score(up, prior.probabilities, 1000) == pytest.approx(
                utility_score(warner, prior.probabilities, 1000), rel=1e-6
            )


# -- dominance and indicators -----------------------------------------------------
class TestDominanceProperties:
    @SETTINGS
    @given(
        objectives=hnp.arrays(
            np.float64, (2, 2), elements=st.floats(-5, 5, allow_nan=False)
        )
    )
    def test_dominance_is_irreflexive_and_antisymmetric(self, objectives):
        a = Individual(genome=None, objectives=objectives[0])
        b = Individual(genome=None, objectives=objectives[1])
        assert not dominates(a, a)
        assert not (dominates(a, b) and dominates(b, a))

    @SETTINGS
    @given(
        points=hnp.arrays(np.float64, (6, 2), elements=st.floats(0.0, 1.0, allow_nan=False)),
        extra=hnp.arrays(np.float64, (1, 2), elements=st.floats(0.0, 1.0, allow_nan=False)),
    )
    def test_hypervolume_monotone_under_addition(self, points, extra):
        reference = (1.5, 1.5)
        base = hypervolume_2d(points, reference)
        augmented = hypervolume_2d(np.vstack([points, extra]), reference)
        assert augmented >= base - 1e-12


# -- disguise mechanism ------------------------------------------------------------
class TestMechanismProperties:
    @SETTINGS
    @given(pair=priors_and_matrices(), seed=st.integers(0, 2**31 - 1))
    def test_randomization_keeps_codes_in_domain(self, pair, seed):
        from repro.rr.randomize import RandomizedResponse

        prior, matrix = pair
        codes = prior.sample(500, seed=seed)
        disguised = RandomizedResponse(matrix).randomize_codes(codes, seed=seed + 1)
        assert disguised.shape == codes.shape
        assert disguised.min() >= 0
        assert disguised.max() < matrix.n_categories


# -- multi-fidelity evaluation invariants -------------------------------------
class TestFidelityInvariants:
    """Invariants the promotion scheduler relies on (see repro.emoo.fidelity):
    reduced-fidelity utilities are exact upper bounds that tighten
    monotonically to the full-fidelity value, and everything else about the
    evaluation (privacy, posterior, feasibility) is fidelity-independent."""

    @SETTINGS
    @given(
        pair=priors_and_matrices(),
        fraction=st.floats(0.01, 0.99, allow_nan=False),
        n_records=st.integers(10, 100_000),
    )
    def test_low_fidelity_utility_is_an_upper_bound(self, pair, fraction, n_records):
        from repro.metrics.evaluation import MatrixEvaluator

        prior, matrix = pair
        evaluator = MatrixEvaluator(prior, n_records)
        stack = matrix.probabilities[np.newaxis]
        full = evaluator.evaluate_batch(stack)
        low = evaluator.evaluate_batch(stack, fidelity=fraction)
        assert low.utility[0] >= full.utility[0]
        # Privacy, posterior and feasibility never depend on the fidelity.
        np.testing.assert_array_equal(low.privacy, full.privacy)
        np.testing.assert_array_equal(low.max_posterior, full.max_posterior)
        np.testing.assert_array_equal(low.feasible, full.feasible)

    @SETTINGS
    @given(pair=priors_and_matrices(), n_records=st.integers(10, 100_000))
    def test_utility_tightens_monotonically_as_fidelity_grows(self, pair, n_records):
        from repro.metrics.evaluation import MatrixEvaluator

        prior, matrix = pair
        evaluator = MatrixEvaluator(prior, n_records)
        stack = matrix.probabilities[np.newaxis]
        fractions = [0.05, 0.2, 0.5, 0.8, 0.95, 1.0]
        utilities = [
            evaluator.evaluate_batch(stack, fidelity=f).utility[0] for f in fractions
        ]
        for tighter, looser in zip(utilities[1:], utilities[:-1]):
            assert tighter <= looser
        full = evaluator.evaluate_batch(stack).utility[0]
        assert utilities[-1] == full

    @SETTINGS
    @given(pair=priors_and_matrices(), n_records=st.integers(10, 100_000))
    def test_fidelity_one_is_bit_identical_to_exact_path(self, pair, n_records):
        from repro.metrics.evaluation import MatrixEvaluator

        prior, matrix = pair
        # delta is drawn feasibly: Theorem 5 requires delta >= max P(X).
        delta = 0.5 * (prior.max_probability + 1.0)
        evaluator = MatrixEvaluator(prior, n_records, delta=delta)
        stack = matrix.probabilities[np.newaxis]
        exact = evaluator.evaluate_batch(stack)
        scheduled = evaluator.evaluate_batch(stack, fidelity=1.0)
        np.testing.assert_array_equal(scheduled.privacy, exact.privacy)
        np.testing.assert_array_equal(scheduled.utility, exact.utility)
        np.testing.assert_array_equal(scheduled.max_posterior, exact.max_posterior)
        np.testing.assert_array_equal(scheduled.feasible, exact.feasible)
        np.testing.assert_array_equal(scheduled.invertible, exact.invertible)

    @SETTINGS
    @given(
        pair=priors_and_matrices(),
        fraction=st.floats(0.01, 1.0, allow_nan=False),
        n_records=st.integers(10, 100_000),
    )
    def test_effective_record_counts_round_and_floor(self, pair, fraction, n_records):
        from repro.metrics.evaluation import MatrixEvaluator, resolve_fidelity_column

        prior, _ = pair
        evaluator = MatrixEvaluator(prior, n_records)
        column = resolve_fidelity_column(fraction, 3)
        counts = evaluator.effective_record_counts(column)
        assert counts.shape == (3,)
        assert np.all(counts >= 1.0)
        assert np.all(counts <= n_records)
        np.testing.assert_array_equal(counts, np.maximum(1.0, np.rint(fraction * n_records)))
