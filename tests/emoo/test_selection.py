"""Tests for repro.emoo.selection (environmental + mating selection)."""

from __future__ import annotations

import pytest

from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.selection import binary_tournament, environmental_selection, truncate_archive
from repro.exceptions import OptimizationError
from tests.emoo.conftest import make_individual


class TestEnvironmentalSelection:
    def test_keeps_all_nondominated_when_they_fit(self):
        union = [
            make_individual([0.0, 1.0]),
            make_individual([0.5, 0.5]),
            make_individual([1.0, 0.0]),
            make_individual([2.0, 2.0]),  # dominated
        ]
        archive = environmental_selection(union, archive_size=3)
        objectives = {tuple(ind.objectives) for ind in archive}
        assert (2.0, 2.0) not in objectives
        assert len(archive) == 3

    def test_fills_with_best_dominated_when_underfull(self):
        union = [
            make_individual([0.0, 0.0]),   # the only non-dominated point
            make_individual([1.0, 1.0]),
            make_individual([3.0, 3.0]),
        ]
        archive = environmental_selection(union, archive_size=2)
        assert len(archive) == 2
        objectives = {tuple(ind.objectives) for ind in archive}
        assert (0.0, 0.0) in objectives
        assert (1.0, 1.0) in objectives  # the better dominated point

    def test_truncates_when_overfull_and_keeps_extremes(self):
        # Ten non-dominated points on a line; truncation should keep a spread
        # including both extremes.
        union = [make_individual([i / 9.0, 1.0 - i / 9.0]) for i in range(10)]
        archive = environmental_selection(union, archive_size=4)
        assert len(archive) == 4
        objectives = sorted(tuple(ind.objectives) for ind in archive)
        assert objectives[0] == (0.0, 1.0)
        assert objectives[-1] == (1.0, 0.0)

    def test_exact_fit_returns_front(self):
        union = [
            make_individual([0.0, 1.0]),
            make_individual([1.0, 0.0]),
            make_individual([2.0, 2.0]),
        ]
        archive = environmental_selection(union, archive_size=2)
        assert {tuple(ind.objectives) for ind in archive} == {(0.0, 1.0), (1.0, 0.0)}

    def test_empty_union_raises(self):
        with pytest.raises(OptimizationError):
            environmental_selection([], archive_size=3)


class TestTruncateArchive:
    def test_no_truncation_needed(self):
        archive = [make_individual([0.0, 1.0]), make_individual([1.0, 0.0])]
        assert truncate_archive(archive, 5) == archive

    def test_removes_most_crowded_first(self):
        archive = [
            make_individual([0.0, 1.0]),
            make_individual([0.01, 0.99]),  # nearly duplicates the first
            make_individual([1.0, 0.0]),
        ]
        survivors = truncate_archive(archive, 2)
        objectives = {tuple(ind.objectives) for ind in survivors}
        assert (1.0, 0.0) in objectives
        # Exactly one of the two crowded points survives.
        assert len(objectives & {(0.0, 1.0), (0.01, 0.99)}) == 1


class TestBinaryTournament:
    def test_prefers_lower_fitness(self, rng):
        good = make_individual([0.0, 0.0])
        bad = make_individual([1.0, 1.0])
        pool = [good, bad]
        assign_spea2_fitness(pool)
        winners = binary_tournament(pool, 200, seed=rng)
        n_good = sum(1 for winner in winners if winner is good)
        assert n_good > 150  # good wins every mixed tournament

    def test_returns_requested_count(self, rng):
        pool = [make_individual([float(i), float(-i)]) for i in range(4)]
        assign_spea2_fitness(pool)
        assert len(binary_tournament(pool, 7, seed=rng)) == 7

    def test_empty_pool_raises(self):
        with pytest.raises(OptimizationError):
            binary_tournament([], 3)
