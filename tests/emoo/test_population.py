"""Tests for the structure-of-arrays Population (repro.emoo.population)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.exceptions import OptimizationError
from tests.emoo.conftest import make_individual


def make_population(size: int = 4, with_metadata: bool = True) -> Population:
    rng = np.random.default_rng(0)
    return Population(
        genomes=rng.random((size, 3, 3)),
        objectives=rng.random((size, 2)),
        feasible=np.ones(size, dtype=bool),
        metadata=(
            {"privacy": np.linspace(0.1, 0.9, size), "flag": np.zeros(size, dtype=bool)}
            if with_metadata
            else {}
        ),
    )


class TestConstruction:
    def test_basic_shape_and_defaults(self):
        population = make_population(5)
        assert len(population) == 5
        assert population.size == 5
        assert np.all(np.isnan(population.fitness))
        assert population.fitness_generation == -1

    def test_rejects_mismatched_genomes(self):
        with pytest.raises(OptimizationError):
            Population(
                genomes=np.zeros((3, 2, 2)),
                objectives=np.zeros((4, 2)),
                feasible=np.ones(4, dtype=bool),
            )

    def test_rejects_mismatched_feasible(self):
        with pytest.raises(OptimizationError):
            Population(
                genomes=np.zeros((3, 2, 2)),
                objectives=np.zeros((3, 2)),
                feasible=np.ones(2, dtype=bool),
            )

    def test_rejects_mismatched_metadata_column(self):
        with pytest.raises(OptimizationError):
            Population(
                genomes=np.zeros((3, 2, 2)),
                objectives=np.zeros((3, 2)),
                feasible=np.ones(3, dtype=bool),
                metadata={"privacy": np.zeros(2)},
            )

    def test_rejects_1d_objectives(self):
        with pytest.raises(OptimizationError):
            Population(
                genomes=np.zeros((3, 2, 2)),
                objectives=np.zeros(3),
                feasible=np.ones(3, dtype=bool),
            )


class TestFromIndividuals:
    def test_round_trip_preserves_objects(self):
        individuals = [make_individual([float(i), 1.0 - i]) for i in range(3)]
        population = Population.from_individuals(individuals)
        assert population.size == 3
        assert np.array_equal(
            population.objectives, np.array([[0.0, 1.0], [1.0, 0.0], [2.0, -1.0]])
        )
        views = population.to_individuals()
        assert all(view is individual for view, individual in zip(views, individuals))

    def test_fitness_written_back_to_views(self):
        individuals = [make_individual([0.0, 1.0]), make_individual([1.0, 0.0])]
        population = Population.from_individuals(individuals)
        population.set_fitness(np.array([0.25, 0.75]), generation=3)
        views = population.to_individuals()
        assert views[0].fitness == 0.25
        assert views[1].fitness == 0.75

    def test_empty_list_raises(self):
        with pytest.raises(OptimizationError):
            Population.from_individuals([])


class TestTakeConcat:
    def test_take_slices_every_column(self):
        population = make_population(5)
        population.set_fitness(np.arange(5.0), generation=2)
        taken = population.take(np.array([3, 0]))
        assert taken.size == 2
        assert np.array_equal(taken.objectives, population.objectives[[3, 0]])
        assert np.array_equal(taken.genomes, population.genomes[[3, 0]])
        assert np.array_equal(taken.metadata["privacy"], population.metadata["privacy"][[3, 0]])
        assert np.array_equal(taken.fitness, np.array([3.0, 0.0]))
        assert taken.fitness_generation == 2

    def test_take_copies_rows(self):
        population = make_population(4)
        taken = population.take(np.array([1]))
        taken.objectives[0, 0] = 123.0
        assert population.objectives[1, 0] != 123.0

    def test_concat_joins_and_resets_fitness(self):
        first = make_population(3)
        second = make_population(2)
        first.set_fitness(np.zeros(3), generation=5)
        joined = Population.concat(first, second)
        assert joined.size == 5
        assert joined.fitness_generation == -1
        assert np.all(np.isnan(joined.fitness))
        assert np.array_equal(joined.objectives[:3], first.objectives)
        assert np.array_equal(joined.objectives[3:], second.objectives)

    def test_concat_rejects_mismatched_metadata(self):
        first = make_population(2, with_metadata=True)
        second = make_population(2, with_metadata=False)
        with pytest.raises(OptimizationError):
            Population.concat(first, second)

    def test_concat_keeps_source_only_when_both_have_it(self):
        backed = Population.from_individuals([make_individual([0.0, 1.0])])
        array_only = Population(
            genomes=np.empty(1, dtype=object),
            objectives=np.array([[1.0, 0.0]]),
            feasible=np.ones(1, dtype=bool),
        )
        assert Population.concat(backed, backed).source is not None
        assert Population.concat(backed, array_only).source is None


class TestFitnessStamp:
    def test_require_fresh_fitness_returns_column(self):
        population = make_population(3)
        population.set_fitness(np.array([0.1, 0.2, 0.3]), generation=7)
        assert np.array_equal(
            population.require_fresh_fitness(7), np.array([0.1, 0.2, 0.3])
        )

    def test_require_fresh_fitness_rejects_stale_stamp(self):
        population = make_population(3)
        population.set_fitness(np.zeros(3), generation=7)
        with pytest.raises(OptimizationError, match="stale fitness"):
            population.require_fresh_fitness(8)

    def test_unassigned_fitness_is_always_stale(self):
        population = make_population(3)
        with pytest.raises(OptimizationError, match="stale fitness"):
            population.require_fresh_fitness(0)

    def test_set_fitness_rejects_wrong_shape(self):
        population = make_population(3)
        with pytest.raises(OptimizationError):
            population.set_fitness(np.zeros(2), generation=0)


class TestViews:
    def test_individual_view_builds_genome_and_metadata(self):
        population = make_population(3)
        view = population.individual(1, genome_builder=lambda row: row.sum())
        assert isinstance(view, Individual)
        assert view.genome == pytest.approx(population.genomes[1].sum())
        # Columnar metadata comes back as plain Python scalars.
        assert isinstance(view.metadata["privacy"], float)
        assert isinstance(view.metadata["flag"], bool)

    def test_individual_view_carries_stamped_fitness(self):
        population = make_population(2)
        population.set_fitness(np.array([0.5, 1.5]), generation=0)
        assert population.individual(1).fitness == 1.5

    def test_replace_row_overwrites_data_but_keeps_fitness(self):
        population = make_population(3)
        population.set_fitness(np.array([0.1, 0.2, 0.3]), generation=1)
        population.replace_row(
            1,
            genome=np.full((3, 3), 0.5),
            objectives=np.array([9.0, 9.0]),
            feasible=False,
            metadata={"privacy": 0.42, "flag": True},
        )
        assert np.array_equal(population.objectives[1], [9.0, 9.0])
        assert not population.feasible[1]
        assert population.metadata["privacy"][1] == 0.42
        assert population.fitness[1] == 0.2  # selection fitness survives
        assert population.fitness_generation == 1

    def test_replace_row_on_source_population_needs_view(self):
        population = Population.from_individuals(
            [make_individual([0.0, 1.0]), make_individual([1.0, 0.0])]
        )
        with pytest.raises(OptimizationError):
            population.replace_row(
                0,
                genome=None,
                objectives=np.array([0.5, 0.5]),
                feasible=True,
                metadata={},
            )
