"""Tests for repro.emoo.individual."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.individual import Individual, objectives_array
from repro.exceptions import OptimizationError


class TestIndividual:
    def test_basic_construction(self):
        individual = Individual(genome="g", objectives=np.array([1.0, 2.0]))
        assert individual.n_objectives == 2
        assert individual.feasible

    def test_rejects_nan_objectives(self):
        with pytest.raises(OptimizationError):
            Individual(genome=None, objectives=np.array([np.nan, 1.0]))

    def test_rejects_empty_objectives(self):
        with pytest.raises(OptimizationError):
            Individual(genome=None, objectives=np.array([]))

    def test_rejects_matrix_objectives(self):
        with pytest.raises(OptimizationError):
            Individual(genome=None, objectives=np.eye(2))

    def test_copy_resets_bookkeeping(self):
        individual = Individual(genome="g", objectives=np.array([1.0, 2.0]), metadata={"k": 1})
        individual.fitness = 3.0
        individual.rank = 2
        clone = individual.copy()
        assert np.isnan(clone.fitness)
        assert clone.rank == -1
        assert clone.metadata == {"k": 1}
        assert clone.metadata is not individual.metadata

    def test_copy_preserves_feasibility(self):
        individual = Individual(genome=None, objectives=np.array([1.0]), feasible=False)
        assert not individual.copy().feasible


class TestObjectivesArray:
    def test_stacks_objectives(self):
        population = [
            Individual(genome=None, objectives=np.array([1.0, 2.0])),
            Individual(genome=None, objectives=np.array([3.0, 4.0])),
        ]
        array = objectives_array(population)
        np.testing.assert_allclose(array, [[1.0, 2.0], [3.0, 4.0]])

    def test_empty_population(self):
        assert objectives_array([]).size == 0
