"""Fixtures for the EMOO tests: a tiny analytic two-objective problem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.individual import Individual
from repro.emoo.problem import Problem


class SphereTradeoffProblem(Problem):
    """A simple bi-objective problem with a known Pareto front.

    Genomes are scalars ``x`` in [0, 1]; the objectives are
    ``f1(x) = x^2`` and ``f2(x) = (x - 1)^2``.  The Pareto front is the whole
    interval ``x in [0, 1]`` with ``sqrt(f1) + sqrt(f2) = 1``.
    """

    n_objectives = 2

    def random_genome(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(-0.5, 1.5))

    def evaluate(self, genome: float) -> Individual:
        x = float(genome)
        return Individual(
            genome=x,
            objectives=np.array([x**2, (x - 1.0) ** 2]),
            feasible=True,
            metadata={"x": x},
        )

    def crossover(self, first: float, second: float, rng: np.random.Generator):
        alpha = float(rng.uniform(0.0, 1.0))
        child_a = alpha * first + (1 - alpha) * second
        child_b = (1 - alpha) * first + alpha * second
        return child_a, child_b

    def mutate(self, genome: float, rng: np.random.Generator) -> float:
        return float(genome + rng.normal(0.0, 0.1))

    def repair(self, genome: float, rng: np.random.Generator) -> float:
        return float(np.clip(genome, -2.0, 3.0))


@pytest.fixture
def sphere_problem() -> SphereTradeoffProblem:
    return SphereTradeoffProblem()


def make_individual(objectives, feasible=True) -> Individual:
    """Helper to build an individual with given objectives."""
    return Individual(genome=None, objectives=np.asarray(objectives, dtype=float), feasible=feasible)


@pytest.fixture
def square_population() -> list[Individual]:
    """Four individuals forming a square plus one dominated interior point."""
    return [
        make_individual([0.0, 1.0]),
        make_individual([1.0, 0.0]),
        make_individual([0.0, 0.0]),   # dominates everything
        make_individual([1.0, 1.0]),   # dominated by everything except itself
        make_individual([0.6, 0.6]),   # dominated by (0, 0)
    ]
