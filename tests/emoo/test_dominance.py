"""Tests for repro.emoo.dominance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.dominance import (
    dominance_matrix,
    dominates,
    non_dominated,
    non_dominated_objectives,
    pareto_ranks,
)
from tests.emoo.conftest import make_individual


class TestDominates:
    def test_strictly_better_dominates(self):
        assert dominates(make_individual([0.0, 0.0]), make_individual([1.0, 1.0]))

    def test_equal_does_not_dominate(self):
        a = make_individual([1.0, 1.0])
        b = make_individual([1.0, 1.0])
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_partial_improvement_dominates(self):
        assert dominates(make_individual([0.0, 1.0]), make_individual([0.5, 1.0]))

    def test_tradeoff_is_incomparable(self):
        a = make_individual([0.0, 1.0])
        b = make_individual([1.0, 0.0])
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_feasible_dominates_infeasible(self):
        feasible = make_individual([5.0, 5.0], feasible=True)
        infeasible = make_individual([0.0, 0.0], feasible=False)
        assert dominates(feasible, infeasible)
        assert not dominates(infeasible, feasible)

    def test_antisymmetry(self, rng):
        for _ in range(50):
            a = make_individual(rng.normal(size=2))
            b = make_individual(rng.normal(size=2))
            assert not (dominates(a, b) and dominates(b, a))


class TestDominanceMatrix:
    def test_matches_pairwise_calls(self, square_population):
        matrix = dominance_matrix(square_population)
        for i, a in enumerate(square_population):
            for j, b in enumerate(square_population):
                assert matrix[i, j] == dominates(a, b)

    def test_diagonal_is_false(self, square_population):
        matrix = dominance_matrix(square_population)
        assert not matrix.diagonal().any()

    def test_empty_population(self):
        assert dominance_matrix([]).shape == (0, 0)


class TestNonDominated:
    def test_square_population(self, square_population):
        front = non_dominated(square_population)
        assert len(front) == 1
        np.testing.assert_allclose(front[0].objectives, [0.0, 0.0])

    def test_tradeoff_front_is_kept(self):
        population = [
            make_individual([0.0, 1.0]),
            make_individual([0.5, 0.5]),
            make_individual([1.0, 0.0]),
            make_individual([0.9, 0.9]),
        ]
        front = non_dominated(population)
        assert len(front) == 3

    def test_empty(self):
        assert non_dominated([]) == []


class TestParetoRanks:
    def test_three_layer_ranking(self):
        population = [
            make_individual([0.0, 0.0]),   # rank 0
            make_individual([1.0, 1.0]),   # rank 1
            make_individual([2.0, 2.0]),   # rank 2
            make_individual([0.5, 1.5]),   # rank 1 (only dominated by rank 0)
        ]
        ranks = pareto_ranks(population)
        np.testing.assert_array_equal(ranks, [0, 1, 2, 1])
        assert [ind.rank for ind in population] == [0, 1, 2, 1]

    def test_all_nondominated_get_rank_zero(self):
        population = [make_individual([float(i), float(-i)]) for i in range(5)]
        ranks = pareto_ranks(population)
        np.testing.assert_array_equal(ranks, 0)

    def test_every_individual_is_ranked(self, rng):
        population = [make_individual(rng.normal(size=2)) for _ in range(30)]
        ranks = pareto_ranks(population)
        assert np.all(ranks >= 0)


class TestNonDominatedObjectives:
    def test_filters_raw_arrays(self):
        points = np.array([[0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.5, 0.5]])
        kept = non_dominated_objectives(points)
        assert kept.shape == (3, 2)
        assert not any(np.allclose(row, [1.0, 1.0]) for row in kept)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            non_dominated_objectives(np.array([1.0, 2.0]))

    def test_empty_input_passthrough(self):
        assert non_dominated_objectives(np.empty((0, 2))).shape == (0, 2)
