"""Tests for repro.emoo.termination."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.emoo.termination import (
    AnyCriterion,
    Deadline,
    GenerationState,
    HypervolumeStagnation,
    MaxGenerations,
    StagnationTermination,
    termination_deadline_seconds,
)
from repro.exceptions import OptimizationError, ValidationError


class TestMaxGenerations:
    def test_stops_at_limit(self):
        criterion = MaxGenerations(3)
        assert not criterion.should_stop(GenerationState(0))
        assert not criterion.should_stop(GenerationState(1))
        assert criterion.should_stop(GenerationState(2))

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            MaxGenerations(0)


class TestStagnation:
    def test_stops_after_patience_without_updates(self):
        criterion = StagnationTermination(patience=2)
        assert not criterion.should_stop(GenerationState(0, archive_updates=0))
        assert criterion.should_stop(GenerationState(1, archive_updates=0))

    def test_updates_reset_counter(self):
        criterion = StagnationTermination(patience=2)
        assert not criterion.should_stop(GenerationState(0, archive_updates=0))
        assert not criterion.should_stop(GenerationState(1, archive_updates=5))
        assert not criterion.should_stop(GenerationState(2, archive_updates=0))
        assert criterion.should_stop(GenerationState(3, archive_updates=0))

    def test_reset(self):
        criterion = StagnationTermination(patience=1)
        assert criterion.should_stop(GenerationState(0, archive_updates=0))
        criterion.reset()
        assert not criterion.should_stop(GenerationState(1, archive_updates=1))


class TestDeadline:
    def test_uses_driver_elapsed_time(self):
        criterion = Deadline(10.0)
        assert not criterion.should_stop(GenerationState(0, elapsed_seconds=9.9))
        assert criterion.should_stop(GenerationState(1, elapsed_seconds=10.0))

    def test_falls_back_to_own_clock(self):
        criterion = Deadline(0.02)
        criterion.reset()
        assert not criterion.should_stop(GenerationState(0))
        time.sleep(0.03)
        assert criterion.should_stop(GenerationState(1))

    def test_rejects_non_positive_budget(self):
        with pytest.raises(OptimizationError, match="positive"):
            Deadline(0.0)

    def test_composes_with_or(self):
        combined = MaxGenerations(3) | Deadline(1e9)
        assert isinstance(combined, AnyCriterion)
        assert not combined.should_stop(GenerationState(0, elapsed_seconds=1.0))
        assert combined.should_stop(GenerationState(2, elapsed_seconds=1.0))
        # ... and the deadline side fires independently of the budget.
        combined = MaxGenerations(1000) | Deadline(5.0)
        assert combined.should_stop(GenerationState(0, elapsed_seconds=6.0))


def front(*points):
    return np.asarray(points, dtype=np.float64)


class TestHypervolumeStagnation:
    def test_stops_when_hypervolume_stalls(self):
        criterion = HypervolumeStagnation(patience=2, reference=(1.0, 1.0))
        improving = front([0.5, 0.5])
        better = front([0.4, 0.4])
        assert not criterion.should_stop(GenerationState(0, front=improving))
        assert not criterion.should_stop(GenerationState(1, front=better))
        assert not criterion.should_stop(GenerationState(2, front=better))
        assert criterion.should_stop(GenerationState(3, front=better))

    def test_improvement_resets_patience(self):
        criterion = HypervolumeStagnation(patience=2, reference=(1.0, 1.0))
        assert not criterion.should_stop(GenerationState(0, front=front([0.5, 0.5])))
        assert not criterion.should_stop(GenerationState(1, front=front([0.5, 0.5])))
        assert not criterion.should_stop(GenerationState(2, front=front([0.3, 0.3])))
        assert not criterion.should_stop(GenerationState(3, front=front([0.3, 0.3])))
        assert criterion.should_stop(GenerationState(4, front=front([0.3, 0.3])))

    def test_missing_front_keeps_running(self):
        criterion = HypervolumeStagnation(patience=1, reference=(1.0, 1.0))
        assert not criterion.should_stop(GenerationState(0))
        assert not criterion.should_stop(GenerationState(1, front=np.empty((0, 2))))

    def test_reference_fixed_from_first_front(self):
        criterion = HypervolumeStagnation(patience=3)
        criterion.reset()
        criterion.should_stop(GenerationState(0, front=front([0.2, 0.9], [0.8, 0.1])))
        assert criterion.state_document()["reference"] == [0.8, 0.9]

    def test_rejects_bad_front_shape(self):
        criterion = HypervolumeStagnation(patience=1)
        with pytest.raises(OptimizationError, match="front"):
            criterion.should_stop(GenerationState(0, front=np.zeros((2, 3))))

    def test_composes_with_or(self):
        combined = MaxGenerations(1000) | HypervolumeStagnation(
            patience=1, reference=(1.0, 1.0)
        )
        stalled = front([0.5, 0.5])
        assert not combined.should_stop(GenerationState(0, front=stalled))
        assert combined.should_stop(GenerationState(1, front=stalled))

    def test_state_round_trip_resumes_counters(self):
        criterion = HypervolumeStagnation(patience=3, reference=(1.0, 1.0))
        criterion.reset()
        stalled = front([0.5, 0.5])
        criterion.should_stop(GenerationState(0, front=stalled))
        criterion.should_stop(GenerationState(1, front=stalled))
        document = criterion.state_document()
        restored = HypervolumeStagnation(patience=3, reference=(1.0, 1.0))
        restored.restore_state(document)
        # One more stalled generation fires (2 stale + 1 == patience).
        assert not restored.should_stop(GenerationState(2, front=stalled))
        assert restored.should_stop(GenerationState(3, front=stalled))


class TestStateDocuments:
    def test_stagnation_round_trip(self):
        criterion = StagnationTermination(patience=3)
        criterion.should_stop(GenerationState(0, archive_updates=0))
        restored = StagnationTermination(patience=3)
        restored.restore_state(criterion.state_document())
        assert not restored.should_stop(GenerationState(1, archive_updates=0))
        assert restored.should_stop(GenerationState(2, archive_updates=0))

    def test_any_criterion_round_trip(self):
        combined = MaxGenerations(100) | StagnationTermination(patience=2)
        combined.should_stop(GenerationState(0, archive_updates=0))
        document = combined.state_document()
        restored = MaxGenerations(100) | StagnationTermination(patience=2)
        restored.restore_state(document)
        assert restored.should_stop(GenerationState(1, archive_updates=0))

    def test_restore_matches_criteria_by_kind_not_position(self):
        """A checkpoint written under (MaxGen | Stagnation) | Deadline resumed
        without the deadline must still land the stagnation counter on the
        stagnation criterion (never positionally on something else)."""
        original = (MaxGenerations(100) | StagnationTermination(patience=3)) | Deadline(60)
        original.reset()
        original.should_stop(GenerationState(0, archive_updates=0, elapsed_seconds=1.0))
        original.should_stop(GenerationState(1, archive_updates=0, elapsed_seconds=2.0))
        document = original.state_document()
        # Same composition: counters continue exactly.
        same = (MaxGenerations(100) | StagnationTermination(patience=3)) | Deadline(60)
        same.restore_state(document)
        assert same.should_stop(GenerationState(2, archive_updates=0, elapsed_seconds=3.0))
        # Dropped deadline: the nested pair still restores by kind.
        changed = MaxGenerations(100) | StagnationTermination(patience=3)
        changed.restore_state(document["criteria"][0]["state"])
        assert changed.should_stop(
            GenerationState(2, archive_updates=0, elapsed_seconds=3.0)
        )

    def test_restore_with_extra_criterion_keeps_reset_state(self):
        """Criteria the checkpoint has no entry for start from reset (a
        composition change is best-effort, never a crash)."""
        stored = (MaxGenerations(100) | StagnationTermination(patience=2)).state_document()
        combined = MaxGenerations(100) | StagnationTermination(patience=2)
        combined.restore_state(stored)  # exact arity: fine
        grown = (MaxGenerations(100) | StagnationTermination(patience=2)) | Deadline(60)
        grown.restore_state({"criteria": stored["criteria"] + []})  # no crash

    def test_deadline_anchors_on_resume(self):
        """After notify_resumed(elapsed), a deadline budgets only new work."""
        criterion = Deadline(100.0)
        criterion.reset()
        criterion.notify_resumed(90.0)
        # 90s were consumed before the interruption; 50s of new work is fine.
        assert not criterion.should_stop(GenerationState(0, elapsed_seconds=140.0))
        assert criterion.should_stop(GenerationState(1, elapsed_seconds=190.0))

    def test_any_criterion_forwards_notify_resumed(self):
        combined = MaxGenerations(10) | Deadline(100.0)
        combined.reset()
        combined.notify_resumed(95.0)
        assert not combined.should_stop(GenerationState(0, elapsed_seconds=100.0))

    def test_stateless_criteria_have_empty_documents(self):
        assert MaxGenerations(5).state_document() == {}
        assert Deadline(5.0).state_document() == {}


class TestAnyCriterion:
    def test_or_operator_combines(self):
        combined = MaxGenerations(100) | StagnationTermination(1)
        assert isinstance(combined, AnyCriterion)
        assert combined.should_stop(GenerationState(0, archive_updates=0))

    def test_stops_when_either_fires(self):
        combined = MaxGenerations(2) | StagnationTermination(50)
        assert not combined.should_stop(GenerationState(0, archive_updates=1))
        assert combined.should_stop(GenerationState(1, archive_updates=1))

    def test_requires_criteria(self):
        with pytest.raises(OptimizationError):
            AnyCriterion(())


class TestTerminationDeadlineSeconds:
    def test_none_criterion(self):
        assert termination_deadline_seconds(None) is None

    def test_plain_deadline(self):
        assert termination_deadline_seconds(Deadline(42.0)) == 42.0

    def test_non_deadline_criteria_have_no_budget(self):
        assert termination_deadline_seconds(MaxGenerations(10)) is None
        assert termination_deadline_seconds(StagnationTermination(3)) is None

    def test_combined_takes_the_tightest_deadline(self):
        combined = MaxGenerations(10) | Deadline(30.0) | Deadline(12.0)
        assert termination_deadline_seconds(combined) == 12.0

    def test_combined_without_deadline(self):
        combined = MaxGenerations(10) | StagnationTermination(3)
        assert termination_deadline_seconds(combined) is None
