"""Tests for repro.emoo.termination."""

from __future__ import annotations

import pytest

from repro.emoo.termination import (
    AnyCriterion,
    GenerationState,
    MaxGenerations,
    StagnationTermination,
)
from repro.exceptions import OptimizationError


class TestMaxGenerations:
    def test_stops_at_limit(self):
        criterion = MaxGenerations(3)
        assert not criterion.should_stop(GenerationState(0))
        assert not criterion.should_stop(GenerationState(1))
        assert criterion.should_stop(GenerationState(2))

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            MaxGenerations(0)


class TestStagnation:
    def test_stops_after_patience_without_updates(self):
        criterion = StagnationTermination(patience=2)
        assert not criterion.should_stop(GenerationState(0, archive_updates=0))
        assert criterion.should_stop(GenerationState(1, archive_updates=0))

    def test_updates_reset_counter(self):
        criterion = StagnationTermination(patience=2)
        assert not criterion.should_stop(GenerationState(0, archive_updates=0))
        assert not criterion.should_stop(GenerationState(1, archive_updates=5))
        assert not criterion.should_stop(GenerationState(2, archive_updates=0))
        assert criterion.should_stop(GenerationState(3, archive_updates=0))

    def test_reset(self):
        criterion = StagnationTermination(patience=1)
        assert criterion.should_stop(GenerationState(0, archive_updates=0))
        criterion.reset()
        assert not criterion.should_stop(GenerationState(1, archive_updates=1))


class TestAnyCriterion:
    def test_or_operator_combines(self):
        combined = MaxGenerations(100) | StagnationTermination(1)
        assert isinstance(combined, AnyCriterion)
        assert combined.should_stop(GenerationState(0, archive_updates=0))

    def test_stops_when_either_fires(self):
        combined = MaxGenerations(2) | StagnationTermination(50)
        assert not combined.should_stop(GenerationState(0, archive_updates=1))
        assert combined.should_stop(GenerationState(1, archive_updates=1))

    def test_requires_criteria(self):
        with pytest.raises(OptimizationError):
            AnyCriterion(())
