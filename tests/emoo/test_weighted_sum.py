"""Tests for the weighted-sum GA baseline."""

from __future__ import annotations

import pytest

from repro.emoo.weighted_sum import WeightedSumGA, WeightedSumSettings
from repro.exceptions import ValidationError


class TestWeightedSumGA:
    def test_finds_near_optimal_solutions_per_weight(self, sphere_problem):
        settings = WeightedSumSettings(
            population_size=20, n_generations=15, n_weights=5
        )
        result = WeightedSumGA(sphere_problem, settings, seed=2).run()
        assert len(result.best_per_weight) == 5
        # Every winner should be near the Pareto set (x in [0, 1]).
        for individual in result.best_per_weight:
            assert -0.15 <= individual.metadata["x"] <= 1.15

    def test_extreme_weights_find_extreme_solutions(self, sphere_problem):
        settings = WeightedSumSettings(population_size=24, n_generations=25, n_weights=3)
        result = WeightedSumGA(sphere_problem, settings, seed=7).run()
        xs = [individual.metadata["x"] for individual in result.best_per_weight]
        # weight 1 minimises f1 = x^2 -> x near 0; weight 0 minimises f2 -> x near 1.
        assert min(xs) < 0.2
        assert max(xs) > 0.8

    def test_front_is_subset_of_winners(self, sphere_problem):
        settings = WeightedSumSettings(population_size=16, n_generations=10, n_weights=4)
        result = WeightedSumGA(sphere_problem, settings, seed=1).run()
        winner_ids = {id(individual) for individual in result.best_per_weight}
        assert all(id(individual) in winner_ids for individual in result.front)

    def test_front_is_much_sparser_than_weight_count(self, sphere_problem):
        """The weighted-sum approach yields at most one point per weight —
        the sparsity problem the paper cites as a reason to use EMOO."""
        settings = WeightedSumSettings(population_size=16, n_generations=10, n_weights=7)
        result = WeightedSumGA(sphere_problem, settings, seed=0).run()
        assert len(result.front) <= 7

    def test_settings_validation(self):
        with pytest.raises(ValidationError):
            WeightedSumSettings(n_weights=0)
        with pytest.raises(ValidationError):
            WeightedSumSettings(elite_fraction=1.5)
