"""Tests for the generic SPEA2 engine on an analytic problem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.spea2 import SPEA2, SPEA2Settings
from repro.emoo.termination import MaxGenerations
from repro.exceptions import ValidationError


class TestSettings:
    def test_defaults_are_valid(self):
        settings = SPEA2Settings()
        assert settings.population_size > 0

    def test_rejects_bad_rates(self):
        with pytest.raises(ValidationError):
            SPEA2Settings(crossover_rate=1.5)
        with pytest.raises(ValidationError):
            SPEA2Settings(population_size=0)


class TestSPEA2Run:
    def test_finds_the_analytic_front(self, sphere_problem):
        algorithm = SPEA2(
            sphere_problem,
            SPEA2Settings(population_size=24, archive_size=24),
            termination=MaxGenerations(40),
            seed=3,
        )
        result = algorithm.run()
        assert result.n_generations == 40
        assert len(result.front) > 5
        # Every front member should be near the true Pareto set x in [0, 1],
        # i.e. sqrt(f1) + sqrt(f2) ~= 1.
        for individual in result.front:
            f1, f2 = individual.objectives
            assert np.sqrt(f1) + np.sqrt(f2) == pytest.approx(1.0, abs=0.05)

    def test_front_spreads_over_the_tradeoff(self, sphere_problem):
        algorithm = SPEA2(
            sphere_problem,
            SPEA2Settings(population_size=30, archive_size=30),
            termination=MaxGenerations(40),
            seed=5,
        )
        result = algorithm.run()
        xs = sorted(individual.metadata["x"] for individual in result.front)
        assert xs[0] < 0.2
        assert xs[-1] > 0.8

    def test_archive_respects_size_limit(self, sphere_problem):
        settings = SPEA2Settings(population_size=20, archive_size=10)
        result = SPEA2(sphere_problem, settings, termination=MaxGenerations(10), seed=0).run()
        assert len(result.archive) <= 10

    def test_reproducible_with_seed(self, sphere_problem):
        settings = SPEA2Settings(population_size=12, archive_size=12)
        first = SPEA2(sphere_problem, settings, termination=MaxGenerations(8), seed=11).run()
        second = SPEA2(sphere_problem, settings, termination=MaxGenerations(8), seed=11).run()
        first_front = sorted(tuple(ind.objectives) for ind in first.front)
        second_front = sorted(tuple(ind.objectives) for ind in second.front)
        assert first_front == second_front

    def test_generation_callback_invoked(self, sphere_problem):
        calls = []
        SPEA2(
            sphere_problem,
            SPEA2Settings(population_size=10, archive_size=10),
            termination=MaxGenerations(5),
            seed=1,
        ).run(on_generation=lambda generation, archive: calls.append((generation, len(archive))))
        assert [call[0] for call in calls] == list(range(5))
        assert all(size > 0 for _, size in calls)

    def test_evaluation_count_accounting(self, sphere_problem):
        settings = SPEA2Settings(population_size=10, archive_size=10)
        result = SPEA2(sphere_problem, settings, termination=MaxGenerations(6), seed=2).run()
        # Initial population + one offspring population per generation.
        assert result.n_evaluations == 10 + 6 * 10
