"""Tests for repro.emoo.density and repro.emoo.fitness (SPEA2 components)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.density import kth_nearest_distances, pairwise_distances, spea2_density
from repro.emoo.fitness import assign_spea2_fitness, non_dominated_by_fitness
from repro.exceptions import OptimizationError
from tests.emoo.conftest import make_individual


class TestPairwiseDistances:
    def test_symmetric_with_zero_diagonal(self, rng):
        points = rng.normal(size=(6, 2))
        distances = pairwise_distances(points)
        np.testing.assert_allclose(distances, distances.T)
        np.testing.assert_allclose(np.diag(distances), 0.0)

    def test_known_values(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(points)
        assert distances[0, 1] == pytest.approx(5.0)


class TestKthNearestDistances:
    def test_k1_is_nearest_neighbour(self):
        points = np.array([[0.0], [1.0], [10.0]])
        distances = kth_nearest_distances(points, k=1)
        np.testing.assert_allclose(distances, [1.0, 1.0, 9.0])

    def test_k_clamped_to_population(self):
        points = np.array([[0.0], [1.0]])
        distances = kth_nearest_distances(points, k=10)
        np.testing.assert_allclose(distances, [1.0, 1.0])

    def test_single_point_gets_infinity(self):
        assert kth_nearest_distances(np.array([[1.0, 2.0]]), k=1)[0] == np.inf

    def test_rejects_k_zero(self):
        with pytest.raises(OptimizationError):
            kth_nearest_distances(np.array([[0.0]]), k=0)


class TestSpea2Density:
    def test_density_below_one(self, rng):
        points = rng.normal(size=(10, 2))
        densities = spea2_density(points)
        assert np.all(densities < 1.0)
        assert np.all(densities > 0.0)

    def test_crowded_point_has_higher_density(self):
        # Two close points and one far away: the far one is less crowded.
        points = np.array([[0.0, 0.0], [0.01, 0.0], [5.0, 5.0]])
        densities = spea2_density(points)
        assert densities[0] > densities[2]
        assert densities[1] > densities[2]


class TestSpea2Fitness:
    def test_nondominated_have_fitness_below_one(self, square_population):
        assign_spea2_fitness(square_population)
        best = square_population[2]  # (0, 0) dominates everything
        assert best.fitness < 1.0
        front = non_dominated_by_fitness(square_population)
        assert front == [best]

    def test_strength_counts_dominated(self, square_population):
        assign_spea2_fitness(square_population)
        # (0, 0) dominates the other four individuals.
        assert square_population[2].strength == 4
        # (1, 1) dominates nothing.
        assert square_population[3].strength == 0

    def test_raw_fitness_sums_dominator_strengths(self):
        population = [
            make_individual([0.0, 0.0]),  # dominates both others -> strength 2
            make_individual([1.0, 1.0]),  # dominated by first, dominates third
            make_individual([2.0, 2.0]),  # dominated by both
        ]
        assign_spea2_fitness(population)
        assert population[0].fitness < 1.0
        # Raw fitness of the middle: strength of its single dominator (2).
        assert int(population[1].fitness) == 2
        # Raw fitness of the worst: strengths of both dominators (2 + 1 = 3).
        assert int(population[2].fitness) == 3

    def test_more_dominated_individual_has_worse_fitness(self, square_population):
        assign_spea2_fitness(square_population)
        interior = square_population[4]   # (0.6, 0.6), dominated by (0,0) only
        corner = square_population[3]     # (1, 1), dominated by three points
        assert corner.fitness > interior.fitness

    def test_density_breaks_ties_between_nondominated(self):
        population = [
            make_individual([0.0, 1.0]),
            make_individual([0.02, 0.98]),  # crowded near the first
            make_individual([1.0, 0.0]),    # isolated
        ]
        assign_spea2_fitness(population)
        assert all(ind.fitness < 1.0 for ind in population)
        assert population[2].fitness < population[1].fitness

    def test_empty_population_is_noop(self):
        assign_spea2_fitness([])
