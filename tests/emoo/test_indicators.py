"""Tests for the front-quality indicators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.indicators import coverage, epsilon_indicator, hypervolume_2d, spread_2d
from repro.exceptions import ValidationError


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d(np.array([[0.0, 0.0]]), (1.0, 1.0)) == pytest.approx(1.0)

    def test_two_point_staircase(self):
        front = np.array([[0.0, 0.5], [0.5, 0.0]])
        # Area = 1*0.5 + 0.5*0.5 = 0.75 with reference (1, 1).
        assert hypervolume_2d(front, (1.0, 1.0)) == pytest.approx(0.75)

    def test_dominated_points_do_not_add_area(self):
        base = np.array([[0.0, 0.0]])
        augmented = np.array([[0.0, 0.0], [0.5, 0.5]])
        reference = (1.0, 1.0)
        assert hypervolume_2d(base, reference) == pytest.approx(
            hypervolume_2d(augmented, reference)
        )

    def test_points_beyond_reference_contribute_nothing(self):
        assert hypervolume_2d(np.array([[2.0, 2.0]]), (1.0, 1.0)) == 0.0

    def test_better_front_has_larger_hypervolume(self):
        good = np.array([[0.1, 0.1]])
        bad = np.array([[0.5, 0.5]])
        reference = (1.0, 1.0)
        assert hypervolume_2d(good, reference) > hypervolume_2d(bad, reference)

    def test_monotone_in_added_nondominated_points(self, rng):
        reference = (2.0, 2.0)
        front = rng.uniform(0, 1, size=(5, 2))
        augmented = np.vstack([front, [[0.0, 0.0]]])
        assert hypervolume_2d(augmented, reference) >= hypervolume_2d(front, reference)

    def test_rejects_three_objectives(self):
        with pytest.raises(ValidationError):
            hypervolume_2d(np.zeros((2, 3)), (1.0, 1.0))


class TestCoverage:
    def test_full_coverage(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 1.0], [2.0, 0.5]])
        assert coverage(a, b) == 1.0

    def test_no_coverage(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[0.0, 0.0]])
        assert coverage(a, b) == 0.0

    def test_partial_coverage(self):
        a = np.array([[0.0, 1.0]])
        b = np.array([[0.5, 1.5], [1.0, 0.0]])
        assert coverage(a, b) == 0.5

    def test_identical_fronts_cover_each_other(self):
        front = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert coverage(front, front) == 1.0

    def test_mismatched_dimensions(self):
        with pytest.raises(ValidationError):
            coverage(np.zeros((1, 2)), np.zeros((1, 3)))


class TestEpsilonIndicator:
    def test_identical_fronts_have_zero_epsilon(self):
        front = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert epsilon_indicator(front, front) == pytest.approx(0.0)

    def test_dominating_front_has_negative_epsilon(self):
        better = np.array([[0.0, 0.0]])
        worse = np.array([[0.5, 0.5]])
        assert epsilon_indicator(better, worse) == pytest.approx(-0.5)

    def test_dominated_front_has_positive_epsilon(self):
        better = np.array([[0.0, 0.0]])
        worse = np.array([[0.5, 0.5]])
        assert epsilon_indicator(worse, better) == pytest.approx(0.5)


class TestSpread:
    def test_extent_per_objective(self):
        front = np.array([[0.0, 1.0], [0.5, 0.2], [1.0, 0.0]])
        extent = spread_2d(front)
        assert extent == (pytest.approx(1.0), pytest.approx(1.0))

    def test_single_point_has_zero_spread(self):
        assert spread_2d(np.array([[0.3, 0.7]])) == (0.0, 0.0)
