"""Tests for the NSGA-II baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emoo.nsga2 import NSGA2, NSGA2Settings, crowding_distances
from repro.emoo.termination import MaxGenerations
from tests.emoo.conftest import make_individual


class TestCrowdingDistance:
    def test_extremes_get_infinity(self):
        front = [
            make_individual([0.0, 1.0]),
            make_individual([0.5, 0.5]),
            make_individual([1.0, 0.0]),
        ]
        distances = crowding_distances(front)
        assert distances[0] == np.inf and distances[2] == np.inf
        assert np.isfinite(distances[1])

    def test_isolated_point_has_larger_distance(self):
        front = [
            make_individual([0.0, 1.0]),
            make_individual([0.05, 0.9]),
            make_individual([0.1, 0.85]),
            make_individual([1.0, 0.0]),
        ]
        distances = crowding_distances(front)
        # The interior point next to the isolated extreme is less crowded than
        # the interior point in the dense cluster.
        assert distances[2] > distances[1]

    def test_empty_front(self):
        assert crowding_distances([]).size == 0


class TestNSGA2Run:
    def test_finds_the_analytic_front(self, sphere_problem):
        algorithm = NSGA2(
            sphere_problem,
            NSGA2Settings(population_size=24),
            termination=MaxGenerations(40),
            seed=4,
        )
        result = algorithm.run()
        assert len(result.front) > 5
        for individual in result.front:
            f1, f2 = individual.objectives
            assert np.sqrt(f1) + np.sqrt(f2) == pytest.approx(1.0, abs=0.05)

    def test_population_size_is_maintained(self, sphere_problem):
        result = NSGA2(
            sphere_problem, NSGA2Settings(population_size=16), termination=MaxGenerations(10), seed=0
        ).run()
        assert len(result.population) == 16

    def test_reproducible_with_seed(self, sphere_problem):
        settings = NSGA2Settings(population_size=12)
        first = NSGA2(sphere_problem, settings, termination=MaxGenerations(6), seed=9).run()
        second = NSGA2(sphere_problem, settings, termination=MaxGenerations(6), seed=9).run()
        assert sorted(tuple(i.objectives) for i in first.front) == sorted(
            tuple(i.objectives) for i in second.front
        )
