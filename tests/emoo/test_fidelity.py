"""Tests for repro.emoo.fidelity (schedule, scheduler, promotion, adaptation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import _OptRRSteppable
from repro.core.problem import RRMatrixProblem
from repro.data.synthetic import normal_distribution
from repro.emoo.fidelity import (
    DEADLINE_FIDELITY_STEPS,
    FidelitySchedule,
    FidelityScheduler,
)
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.problem import Problem
from repro.exceptions import OptimizationError


def make_scheduler(low=0.2, promotion=0.25, floor=0.05) -> FidelityScheduler:
    return FidelityScheduler(
        FidelitySchedule(
            low_fidelity=low, promotion_fraction=promotion, min_fidelity=floor
        )
    )


class TestFidelitySchedule:
    def test_accepts_interior_values(self):
        schedule = FidelitySchedule(0.5, promotion_fraction=1.0, min_fidelity=1.0)
        assert schedule.low_fidelity == 0.5

    @pytest.mark.parametrize("low", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_low_fidelity_outside_open_interval(self, low):
        with pytest.raises(OptimizationError):
            FidelitySchedule(low)

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.01])
    def test_rejects_bad_promotion_fraction(self, fraction):
        with pytest.raises(OptimizationError):
            FidelitySchedule(0.2, promotion_fraction=fraction)

    @pytest.mark.parametrize("floor", [0.0, -1.0, 1.1])
    def test_rejects_bad_min_fidelity(self, floor):
        with pytest.raises(OptimizationError):
            FidelitySchedule(0.2, min_fidelity=floor)


class TestPromotionCount:
    def test_ceil_of_fraction(self):
        scheduler = make_scheduler(promotion=0.25)
        assert scheduler.promotion_count(40) == 10
        assert scheduler.promotion_count(41) == 11

    def test_always_promotes_at_least_one(self):
        scheduler = make_scheduler(promotion=0.01)
        assert scheduler.promotion_count(5) == 1

    def test_capped_at_batch_size(self):
        scheduler = make_scheduler(promotion=1.0)
        assert scheduler.promotion_count(7) == 7

    def test_empty_batch(self):
        assert make_scheduler().promotion_count(0) == 0


class TestPromoteIndices:
    def test_full_batch_when_fraction_is_one(self):
        scheduler = make_scheduler(promotion=1.0)
        objectives = np.array([[0.0, 1.0], [1.0, 0.0], [2.0, 2.0]])
        np.testing.assert_array_equal(
            scheduler.promote_indices(objectives), np.arange(3)
        )

    def test_prefers_lower_pareto_ranks(self):
        # Two non-dominated rows and two clearly dominated ones: promoting
        # half the batch must pick exactly the rank-0 rows.
        scheduler = make_scheduler(promotion=0.5)
        objectives = np.array([[5.0, 5.0], [0.0, 1.0], [1.0, 0.0], [6.0, 6.0]])
        np.testing.assert_array_equal(
            scheduler.promote_indices(objectives), np.array([1, 2])
        )

    def test_infeasible_rows_rank_last(self):
        scheduler = make_scheduler(promotion=0.5)
        objectives = np.array([[0.0, 0.0], [0.0, 0.1], [1.0, 1.0], [1.0, 1.1]])
        feasible = np.array([False, False, True, True])
        promoted = scheduler.promote_indices(objectives, feasible)
        np.testing.assert_array_equal(promoted, np.array([2, 3]))

    def test_deterministic_and_sorted(self):
        scheduler = make_scheduler(promotion=0.3)
        rng = np.random.default_rng(5)
        objectives = rng.uniform(size=(20, 2))
        first = scheduler.promote_indices(objectives)
        second = scheduler.promote_indices(objectives)
        np.testing.assert_array_equal(first, second)
        assert np.all(np.diff(first) > 0)

    def test_crowding_breaks_ties_within_a_front(self):
        # A 3-point rank-0 front: the extremes carry infinite crowding
        # distance, so promoting two rows must pick both extremes over the
        # interior point.
        scheduler = make_scheduler(promotion=0.5)
        objectives = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0], [5.0, 5.0]])
        np.testing.assert_array_equal(
            scheduler.promote_indices(objectives), np.array([0, 2])
        )


class TestDeadlineAdaptation:
    def test_noop_without_deadline(self):
        scheduler = make_scheduler(low=0.4)
        scheduler.adapt(1e9, None)
        assert scheduler.current_low_fidelity == 0.4

    def test_steps_match_schedule_table(self):
        for threshold, factor in DEADLINE_FIDELITY_STEPS:
            scheduler = make_scheduler(low=0.4, floor=0.01)
            scheduler.adapt(threshold * 100.0, 100.0)
            assert scheduler.current_low_fidelity == pytest.approx(0.4 * factor)

    def test_no_step_before_half_budget(self):
        scheduler = make_scheduler(low=0.4)
        scheduler.adapt(49.0, 100.0)
        assert scheduler.current_low_fidelity == 0.4

    def test_floor_is_respected(self):
        scheduler = make_scheduler(low=0.4, floor=0.3)
        scheduler.adapt(95.0, 100.0)
        assert scheduler.current_low_fidelity == 0.3

    def test_monotone_ratchet_never_goes_back_up(self):
        scheduler = make_scheduler(low=0.4, floor=0.01)
        scheduler.adapt(95.0, 100.0)
        lowest = scheduler.current_low_fidelity
        scheduler.adapt(10.0, 100.0)  # early progress again (e.g. clock skew)
        assert scheduler.current_low_fidelity == lowest


class TestStateRoundTrip:
    def test_round_trip_restores_everything(self):
        scheduler = make_scheduler(low=0.4)
        scheduler.adapt(80.0, 100.0)
        scheduler.n_low_evaluations = 123
        scheduler.n_full_evaluations = 45
        document = scheduler.state_document()
        restored = make_scheduler(low=0.4)
        restored.restore_state(document)
        assert restored.current_low_fidelity == scheduler.current_low_fidelity
        assert restored.n_low_evaluations == 123
        assert restored.n_full_evaluations == 45

    def test_state_document_is_json_compatible(self):
        import json

        document = make_scheduler().state_document()
        assert json.loads(json.dumps(document)) == document

    def test_restore_tolerates_missing_keys(self):
        scheduler = make_scheduler(low=0.3)
        scheduler.restore_state({})
        assert scheduler.current_low_fidelity == 0.3
        assert scheduler.n_low_evaluations == 0


class TestEvaluateStack:
    @pytest.fixture
    def problem(self) -> RRMatrixProblem:
        return RRMatrixProblem(normal_distribution(6), 5000, delta=0.8)

    def test_promoted_rows_match_full_fidelity_evaluation(self, problem):
        rng = np.random.default_rng(2)
        stack = np.stack(
            [problem.random_genome(rng).probabilities for _ in range(12)]
        )
        scheduler = make_scheduler(low=0.25, promotion=0.25)
        population = scheduler.evaluate_stack(problem, stack)
        reference = problem.evaluate_population(stack, fidelity=1.0)
        fidelity = population.metadata["fidelity"]
        promoted = np.flatnonzero(fidelity >= 1.0)
        assert promoted.size == scheduler.promotion_count(12)
        np.testing.assert_array_equal(
            population.objectives[promoted], reference.objectives[promoted]
        )
        # Non-promoted rows keep the low-fidelity upper bound: utility
        # (objective 1) at least the full-fidelity value, privacy exact.
        rest = np.flatnonzero(fidelity < 1.0)
        np.testing.assert_array_equal(fidelity[rest], 0.25)
        assert np.all(
            population.objectives[rest, 1] >= reference.objectives[rest, 1]
        )
        np.testing.assert_array_equal(
            population.objectives[rest, 0], reference.objectives[rest, 0]
        )

    def test_counters_track_both_passes(self, problem):
        rng = np.random.default_rng(3)
        stack = np.stack(
            [problem.random_genome(rng).probabilities for _ in range(8)]
        )
        scheduler = make_scheduler(low=0.5, promotion=0.25)
        scheduler.evaluate_stack(problem, stack)
        assert scheduler.n_low_evaluations == 8
        assert scheduler.n_full_evaluations == 2
        assert problem.n_low_evaluations == 8
        assert problem.n_full_evaluations == 2


class FidelitySphereProblem(Problem):
    """Generic-problem fidelity stub: objective noise shrinks as f -> 1."""

    n_objectives = 2

    def random_genome(self, rng):
        return float(rng.uniform(0.0, 1.0))

    def evaluate(self, genome):
        x = float(genome)
        return Individual(
            genome=x, objectives=np.array([x**2, (x - 1.0) ** 2]), feasible=True
        )

    def evaluate_genomes(self, genomes, *, fidelity=None):
        scale = 1.0 if fidelity is None else 1.0 / float(fidelity)
        individuals = []
        for genome in genomes:
            individual = self.evaluate(genome)
            individuals.append(
                Individual(
                    genome=individual.genome,
                    objectives=individual.objectives * scale,
                    feasible=True,
                )
            )
        return individuals

    def crossover(self, first, second, rng):
        return first, second

    def mutate(self, genome, rng):
        return genome

    def repair(self, genome, rng):
        return genome


class TestEvaluateIndividuals:
    def test_promoted_slots_carry_full_fidelity_objectives(self):
        problem = FidelitySphereProblem()
        genomes = [0.1, 0.5, 0.9, 0.3]
        scheduler = make_scheduler(low=0.5, promotion=0.5)
        individuals = scheduler.evaluate_individuals(problem, genomes)
        assert len(individuals) == 4
        exact = {g: problem.evaluate(g).objectives for g in genomes}
        n_exact = sum(
            1
            for individual in individuals
            if np.array_equal(individual.objectives, exact[individual.genome])
        )
        assert n_exact == scheduler.promotion_count(4)
        assert scheduler.n_low_evaluations == 4
        assert scheduler.n_full_evaluations == 2

    def test_generic_problem_without_fidelity_support_raises(self, sphere_problem):
        scheduler = make_scheduler()
        with pytest.raises(OptimizationError, match="reduced-fidelity"):
            scheduler.evaluate_individuals(sphere_problem, [0.2, 0.8])


class TestFullFidelityRowFilter:
    def test_population_without_fidelity_column_passes_through(self):
        population = Population(
            genomes=np.zeros((3, 2, 2)),
            objectives=np.zeros((3, 2)),
            feasible=np.ones(3, dtype=bool),
        )
        assert _OptRRSteppable._full_fidelity_rows(population) is population

    def test_low_fidelity_rows_are_filtered_out(self):
        population = Population(
            genomes=np.zeros((4, 2, 2)),
            objectives=np.arange(8.0).reshape(4, 2),
            feasible=np.ones(4, dtype=bool),
            metadata={"fidelity": np.array([1.0, 0.2, 1.0, 0.5])},
        )
        filtered = _OptRRSteppable._full_fidelity_rows(population)
        assert filtered.size == 2
        np.testing.assert_array_equal(
            filtered.objectives, population.objectives[[0, 2]]
        )
