"""Stepwise driver + checkpoint/resume tests.

The hard invariant under test: a run killed after any generation ``k`` and
resumed from its checkpoint produces the final front, Ω spectrum, matrices
and RNG stream bit-for-bit identical to the uninterrupted run — for OptRR,
SPEA2 and NSGA-II alike.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import OptRRConfig
from repro.core.driver import (
    OptimizationDriver,
    checkpoint_scope,
    claim_scoped_checkpoint,
)
from repro.core.optimizer import OptRROptimizer
from repro.core.problem import RRMatrixProblem
from repro.data.synthetic import normal_distribution
from repro.emoo.nsga2 import NSGA2, NSGA2Settings
from repro.emoo.spea2 import SPEA2, SPEA2Settings
from repro.emoo.termination import Deadline, MaxGenerations
from repro.exceptions import OptimizationError, ValidationError
from repro.io import load_checkpoint, result_to_dict

from tests.emoo.conftest import SphereTradeoffProblem

N_GENERATIONS = 5


def make_optrr() -> OptRROptimizer:
    return OptRROptimizer(
        normal_distribution(7),
        4000,
        OptRRConfig(
            population_size=10,
            archive_size=10,
            n_generations=N_GENERATIONS,
            delta=0.8,
            seed=11,
            baseline_seeds=101,
        ),
    )


def make_spea2() -> SPEA2:
    return SPEA2(
        SphereTradeoffProblem(),
        SPEA2Settings(population_size=10, archive_size=8),
        termination=MaxGenerations(N_GENERATIONS),
        seed=7,
    )


def make_nsga2() -> NSGA2:
    return NSGA2(
        SphereTradeoffProblem(),
        NSGA2Settings(population_size=10),
        termination=MaxGenerations(N_GENERATIONS),
        seed=7,
    )


def optrr_result_key(result) -> str:
    return json.dumps(result_to_dict(result, include_optimal_set=True), sort_keys=True)


def generic_result_key(result) -> list:
    return sorted(
        (tuple(member.objectives.tolist()), repr(member.genome))
        for member in result.front
    )


def run_interrupted(factory, kill_after: int, checkpoint_path):
    """Run a driver, abandon it after ``kill_after + 1`` generations, and
    return the checkpoint document it left behind."""
    driver = factory().driver(checkpoint_path=str(checkpoint_path), checkpoint_every=1)
    steps = driver.steps()
    for _ in range(kill_after + 1):
        snapshot = next(steps)
        if snapshot.stopped:
            break
    return load_checkpoint(checkpoint_path)


class TestResumeEquivalence:
    """Kill-at-every-generation resume equivalence, per algorithm."""

    @pytest.mark.parametrize("kill_after", range(N_GENERATIONS))
    def test_optrr_resume_bit_for_bit(self, tmp_path, kill_after):
        reference = optrr_result_key(make_optrr().run())
        document = run_interrupted(make_optrr, kill_after, tmp_path / "ck.json")
        optimizer = OptRROptimizer.from_checkpoint(document)
        driver = optimizer.driver()
        driver.restore(document)
        assert optrr_result_key(optimizer.run_driver(driver)) == reference

    @pytest.mark.parametrize("kill_after", range(N_GENERATIONS))
    def test_spea2_resume_bit_for_bit(self, tmp_path, kill_after):
        reference = make_spea2().run()
        document = run_interrupted(make_spea2, kill_after, tmp_path / "ck.json")
        driver = make_spea2().driver()
        driver.restore(document)
        resumed = driver.run()
        assert generic_result_key(resumed) == generic_result_key(reference)
        assert resumed.n_generations == reference.n_generations
        assert resumed.n_evaluations == reference.n_evaluations

    @pytest.mark.parametrize("kill_after", range(N_GENERATIONS))
    def test_nsga2_resume_bit_for_bit(self, tmp_path, kill_after):
        reference = make_nsga2().run()
        document = run_interrupted(make_nsga2, kill_after, tmp_path / "ck.json")
        driver = make_nsga2().driver()
        driver.restore(document)
        resumed = driver.run()
        assert generic_result_key(resumed) == generic_result_key(reference)
        assert resumed.n_generations == reference.n_generations
        assert resumed.n_evaluations == reference.n_evaluations

    def test_resume_continues_rng_stream_exactly(self, tmp_path):
        """The resumed driver's generator continues the interrupted stream:
        the restored bit-generator state equals the checkpointed one, so the
        next draws are bit-for-bit the draws the interrupted run would have
        made."""
        path = tmp_path / "ck.json"
        driver = make_optrr().driver(checkpoint_path=str(path), checkpoint_every=1)
        steps = driver.steps()
        next(steps)
        next(steps)
        expected = driver.rng.random(64)  # what the interrupted run draws next
        document = load_checkpoint(path)
        resumed = make_optrr().driver()
        resumed.restore(document)
        np.testing.assert_array_equal(resumed.rng.random(64), expected)

    def test_spea2_on_rr_matrix_problem_round_trips(self, tmp_path):
        """The generic engine checkpoints RRMatrix genomes via the codec."""
        def make() -> SPEA2:
            return SPEA2(
                RRMatrixProblem(normal_distribution(6), 4000, delta=0.85),
                SPEA2Settings(population_size=8, archive_size=8),
                termination=MaxGenerations(4),
                seed=3,
            )

        def key(result):
            return sorted(
                tuple(member.objectives.tolist())
                + tuple(member.genome.probabilities.ravel().tolist())
                for member in result.front
            )

        reference = make().run()
        path = tmp_path / "ck.json"
        driver = make().driver(checkpoint_path=str(path), checkpoint_every=1)
        steps = driver.steps()
        next(steps)
        next(steps)
        resumed = make().driver()
        resumed.restore(load_checkpoint(path))
        assert key(resumed.run()) == key(reference)


class TestDriverBehaviour:
    def test_snapshots_are_enriched(self):
        driver = make_optrr().driver()
        snapshots = list(driver.steps())
        assert [snapshot.generation for snapshot in snapshots] == list(range(N_GENERATIONS))
        assert snapshots[-1].stopped and not snapshots[0].stopped
        for snapshot in snapshots:
            assert snapshot.front_objectives.ndim == 2
            assert snapshot.front_size == snapshot.front_objectives.shape[0]
            assert np.isfinite(snapshot.hypervolume)
            assert snapshot.n_evaluations > 0
            assert snapshot.elapsed_seconds >= 0.0
        # Hypervolume of the elite front never shrinks dramatically over a
        # seeded run; it must at least be monotone-ish in magnitude terms.
        assert snapshots[-1].elapsed_seconds >= snapshots[0].elapsed_seconds

    def test_result_requires_termination(self):
        driver = make_optrr().driver()
        steps = driver.steps()
        next(steps)
        with pytest.raises(OptimizationError, match="not terminated"):
            driver.result()

    def test_run_matches_legacy_run(self):
        via_driver = make_optrr().driver().run()
        via_run = make_optrr().run()
        assert optrr_result_key(via_driver) == optrr_result_key(via_run)

    def test_deadline_stops_early(self):
        optimizer = OptRROptimizer(
            normal_distribution(7),
            4000,
            OptRRConfig(
                population_size=10, archive_size=10, n_generations=100_000, seed=1
            ),
        )
        driver = optimizer.driver(deadline=0.15)
        result = optimizer.run_driver(driver)
        assert result.n_generations < 100_000

    def test_restore_rejects_other_algorithm(self, tmp_path):
        path = tmp_path / "ck.json"
        driver = make_spea2().driver(checkpoint_path=str(path), checkpoint_every=1)
        next(driver.steps())
        document = load_checkpoint(path)
        with pytest.raises(ValidationError, match="algorithm"):
            make_optrr().driver().restore(document)

    def test_generic_engine_fingerprint_covers_problem_workload(self, tmp_path):
        """A SPEA2 checkpoint must not resume into the same problem *class*
        with a different workload (prior/bound) — the fingerprint hashes the
        problem's identity document, not just its name."""
        path = tmp_path / "ck.json"

        def make(delta):
            return SPEA2(
                RRMatrixProblem(normal_distribution(6), 4000, delta=delta),
                SPEA2Settings(population_size=8, archive_size=8),
                termination=MaxGenerations(4),
                seed=3,
            )

        next(make(0.85).driver(checkpoint_path=str(path), checkpoint_every=1).steps())
        document = load_checkpoint(path)
        with pytest.raises(ValidationError, match="fingerprint"):
            make(0.6).driver().restore(document)

    def test_restore_rejects_other_workload(self, tmp_path):
        path = tmp_path / "ck.json"
        driver = make_optrr().driver(checkpoint_path=str(path), checkpoint_every=1)
        next(driver.steps())
        document = load_checkpoint(path)
        other = OptRROptimizer(
            normal_distribution(7),
            4000,
            OptRRConfig(
                population_size=10, archive_size=10, n_generations=5, delta=0.9, seed=11
            ),
        )
        with pytest.raises(ValidationError, match="fingerprint"):
            other.driver().restore(document)

    def test_restore_of_stopped_checkpoint_reproduces_result(self, tmp_path):
        path = tmp_path / "ck.json"
        reference = make_optrr().run(checkpoint_path=str(path), checkpoint_every=1)
        document = load_checkpoint(path)
        assert document["stopped"] is True
        optimizer = OptRROptimizer.from_checkpoint(document)
        driver = optimizer.driver()
        driver.restore(document)
        assert driver.finished
        assert list(driver.steps()) == []
        assert optrr_result_key(driver.result()) == optrr_result_key(reference)

    def test_reopen_extends_a_finished_run(self, tmp_path):
        path = tmp_path / "ck.json"
        make_optrr().run(checkpoint_path=str(path), checkpoint_every=1)
        document = load_checkpoint(path)
        optimizer = OptRROptimizer.from_checkpoint(document)
        extended = OptRROptimizer(
            optimizer.prior,
            optimizer.n_records,
            optimizer.config.with_updates(n_generations=N_GENERATIONS + 3),
        )
        driver = extended.driver()
        driver.restore(document, reopen=True)
        result = extended.run_driver(driver)
        assert result.n_generations == N_GENERATIONS + 3
        # ... and it matches the uninterrupted longer run bit for bit.
        uninterrupted = OptRROptimizer(
            extended.prior, extended.n_records, extended.config
        ).run()
        assert optrr_result_key(result) == optrr_result_key(uninterrupted)

    def test_checkpoint_cadence(self, tmp_path):
        path = tmp_path / "ck.json"
        writes = []
        driver = make_optrr().driver(checkpoint_path=str(path), checkpoint_every=2)
        for snapshot in driver.steps():
            if path.exists():
                document = load_checkpoint(path)
                writes.append((snapshot.generation, document["generation"]))
        # Cadence 2 over 5 generations: checkpoints after generations 1, 3
        # and the final generation 4.
        assert [written for _, written in writes][-3:] == [1, 3, 4]

    def test_nsga2_on_generation_callback(self):
        """Satellite: NSGA2.run accepts the same callback shape as SPEA2."""
        seen = []

        def callback(generation, individuals):
            seen.append((generation, len(individuals)))
            assert all(member.rank >= 0 for member in individuals)

        result = make_nsga2().run(on_generation=callback)
        assert [generation for generation, _ in seen] == list(range(N_GENERATIONS))
        assert all(count == 10 for _, count in seen)
        assert result.n_generations == N_GENERATIONS


class TestCheckpointScope:
    def test_scope_claims_and_resumes(self, tmp_path):
        reference = optrr_result_key(make_optrr().run())
        with checkpoint_scope(tmp_path, token="cell", every=1):
            driver = make_optrr().driver()
            steps = driver.steps()
            next(steps)
            next(steps)
        assert (tmp_path / "cell-0.json").is_file()
        # A fresh run in a new scope with the same token auto-resumes.
        with checkpoint_scope(tmp_path, token="cell", every=1):
            resumed_driver = make_optrr().driver()
            assert resumed_driver.generation > 0
            result = make_optrr().run_driver(resumed_driver)
        assert optrr_result_key(result) == reference

    def test_scope_ignores_mismatched_checkpoint(self, tmp_path):
        with checkpoint_scope(tmp_path, token="cell", every=1):
            next(make_spea2().driver().steps())
        with checkpoint_scope(tmp_path, token="cell", every=1):
            driver = make_optrr().driver()
            assert driver.generation == 0  # fresh start, not a broken resume

    def test_scope_clear_removes_partials(self, tmp_path):
        with checkpoint_scope(tmp_path, token="cell", every=1) as scope:
            next(make_optrr().driver().steps())
            assert list(tmp_path.glob("cell-*.json"))
            scope.clear()
        assert not list(tmp_path.glob("cell-*.json"))

    def test_claims_are_sequential(self, tmp_path):
        with checkpoint_scope(tmp_path, token="cell") as scope:
            first, _, _, _ = claim_scoped_checkpoint()
            second, _, _, _ = claim_scoped_checkpoint()
        assert first != second
        assert scope.directory == tmp_path

    def test_deadline_only_scope(self):
        with checkpoint_scope(None, deadline=30.0):
            path, _, remaining, document = claim_scoped_checkpoint()
        assert path is None and document is None
        assert 0 < remaining <= 30.0

    def test_scoped_deadline_reaches_driver(self):
        with checkpoint_scope(None, deadline=1e9):
            driver = make_optrr().driver()
        criteria = driver.termination.criteria
        assert any(isinstance(criterion, Deadline) for criterion in criteria)


class TestDriverValidation:
    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(OptimizationError, match="checkpoint_every"):
            OptimizationDriver(
                make_optrr().driver().optimization,
                termination=MaxGenerations(1),
                checkpoint_every=0,
            )

    def test_restore_after_start_fails(self, tmp_path):
        path = tmp_path / "ck.json"
        driver = make_optrr().driver(checkpoint_path=str(path), checkpoint_every=1)
        next(driver.steps())
        with pytest.raises(OptimizationError, match="already started"):
            driver.restore(load_checkpoint(path))
