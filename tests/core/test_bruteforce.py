"""Tests for the brute-force baseline (repro.core.bruteforce)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_front
from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.search_space import rr_matrix_combinations
from repro.data.distribution import CategoricalDistribution
from repro.exceptions import OptimizationError


@pytest.fixture
def binary_prior() -> CategoricalDistribution:
    return CategoricalDistribution(np.array([0.65, 0.35]))


class TestBruteForce:
    def test_enumerates_the_whole_grid(self, binary_prior):
        report = brute_force_front(binary_prior, 1000, d=6)
        assert report.n_enumerated == rr_matrix_combinations(2, 6)
        assert report.n_feasible <= report.n_enumerated
        assert len(report.result) > 0

    def test_front_is_mutually_nondominated(self, binary_prior):
        report = brute_force_front(binary_prior, 1000, d=8)
        points = list(report.result)
        for a in points:
            for b in points:
                if a is b:
                    continue
                assert not (
                    a.privacy >= b.privacy
                    and a.utility <= b.utility
                    and (a.privacy > b.privacy or a.utility < b.utility)
                )

    def test_respects_delta_bound(self, binary_prior):
        report = brute_force_front(binary_prior, 1000, d=6, delta=0.8)
        for point in report.result:
            assert point.max_posterior <= 0.8 + 1e-9

    def test_budget_guard(self, binary_prior):
        with pytest.raises(OptimizationError, match="budget"):
            brute_force_front(binary_prior, 1000, d=200, budget=100)

    def test_optimizer_front_is_close_to_exhaustive_front(self, binary_prior):
        """Validation of the evolutionary search: on a tiny domain its front
        should come close to the exhaustive grid-search front."""
        n_records = 1000
        exhaustive = brute_force_front(binary_prior, n_records, d=10)
        config = OptRRConfig(
            population_size=20, archive_size=20, n_generations=60, seed=2
        )
        optimized = OptRROptimizer(binary_prior, n_records, config).run()
        # For a set of probe privacy levels, the optimizer's best utility
        # should be within a small factor of the exhaustive optimum.
        exhaustive_privacies = exhaustive.result.privacy_values()
        probes = np.linspace(exhaustive_privacies.min(), exhaustive_privacies.max() * 0.95, 5)
        for privacy in probes:
            best_exhaustive = min(
                point.utility for point in exhaustive.result if point.privacy >= privacy
            )
            candidates = [
                point.utility for point in optimized if point.privacy >= privacy
            ]
            assert candidates, f"optimizer found no matrix with privacy >= {privacy}"
            assert min(candidates) <= best_exhaustive * 1.5 + 1e-9
