"""Tests for the OptRR optimizer (repro.core.optimizer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.front import ParetoFront
from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.exceptions import InfeasibleBoundError
from repro.metrics.evaluation import MatrixEvaluator
from repro.metrics.privacy import max_posterior
from repro.rr.family import WarnerFamily


class TestBasicRun:
    def test_produces_a_nonempty_front(self, small_prior, fast_config):
        result = OptRROptimizer(small_prior, 10_000, fast_config).run()
        assert len(result) > 0
        assert result.n_generations == fast_config.n_generations
        assert result.n_evaluations > 0

    def test_front_points_are_feasible_and_sorted(self, small_prior, fast_config):
        result = OptRROptimizer(small_prior, 10_000, fast_config).run()
        privacies = result.privacy_values()
        assert np.all(np.diff(privacies) >= 0)
        for point in result:
            assert point.max_posterior <= fast_config.delta + 1e-6
            np.testing.assert_allclose(
                point.matrix.probabilities.sum(axis=0), 1.0, atol=1e-9
            )

    def test_front_is_mutually_nondominated(self, small_prior, fast_config):
        result = OptRROptimizer(small_prior, 10_000, fast_config).run()
        points = list(result)
        for a in points:
            for b in points:
                if a is b:
                    continue
                dominates = (
                    a.privacy >= b.privacy
                    and a.utility <= b.utility
                    and (a.privacy > b.privacy or a.utility < b.utility)
                )
                assert not dominates

    def test_reproducible_with_seed(self, small_prior, fast_config):
        first = OptRROptimizer(small_prior, 10_000, fast_config).run()
        second = OptRROptimizer(small_prior, 10_000, fast_config).run()
        np.testing.assert_allclose(first.objectives(), second.objectives())

    def test_seed_override_changes_result(self, small_prior, fast_config):
        base = OptRROptimizer(small_prior, 10_000, fast_config).run()
        other = OptRROptimizer(small_prior, 10_000, fast_config).run(seed=999)
        assert not np.array_equal(base.objectives(), other.objectives())

    def test_accepts_probability_vector_prior(self, fast_config):
        result = OptRROptimizer(np.array([0.5, 0.3, 0.2]), 1000, fast_config).run()
        assert len(result) > 0

    def test_infeasible_delta_rejected(self, small_prior):
        with pytest.raises(InfeasibleBoundError):
            OptRROptimizer(small_prior, 1000, OptRRConfig(delta=0.2))

    def test_progress_callback(self, small_prior, fast_config):
        generations = []
        OptRROptimizer(small_prior, 10_000, fast_config).run(
            on_generation=lambda gen, archive, omega: generations.append(gen)
        )
        assert generations == list(range(fast_config.n_generations))

    def test_stagnation_termination_can_stop_early(self, small_prior):
        config = OptRRConfig(
            population_size=10,
            archive_size=10,
            n_generations=500,
            stagnation_patience=3,
            delta=0.8,
            seed=0,
        )
        result = OptRROptimizer(small_prior, 10_000, config).run()
        assert result.n_generations < 500


class TestBaselineSeeding:
    def test_runs_without_baseline_seeds(self, small_prior, fast_config):
        config = fast_config.with_updates(baseline_seeds=0)
        result = OptRROptimizer(small_prior, 10_000, config).run()
        assert len(result) > 0

    def test_seeded_front_never_loses_to_warner(self, normal_prior):
        """With the warm start, every delta-feasible Warner matrix is in the
        initial population, so the recovered front must weakly dominate the
        Warner front at every privacy level it covers."""
        delta = 0.7
        n_records = 10_000
        config = OptRRConfig(
            population_size=20, archive_size=20, n_generations=30, delta=delta,
            baseline_seeds=40, seed=0,
        )
        result = OptRROptimizer(normal_prior, n_records, config).run()
        optrr = ParetoFront.from_result("optrr", result)
        warner = ParetoFront.from_family(
            WarnerFamily(10), normal_prior, n_records, delta=delta, n_points=41
        )
        for privacy in np.linspace(*warner.privacy_range, 15):
            assert optrr.utility_at_privacy(privacy) <= warner.utility_at_privacy(privacy) * 1.02

    def test_seeding_extends_low_privacy_end_beyond_warner(self, normal_prior):
        delta = 0.8
        config = OptRRConfig(
            population_size=30, archive_size=30, n_generations=150, delta=delta, seed=4
        )
        result = OptRROptimizer(normal_prior, 10_000, config).run()
        warner = ParetoFront.from_family(WarnerFamily(10), normal_prior, 10_000, delta=delta)
        assert result.privacy_range[0] < warner.privacy_range[0]


class TestOptimizationQuality:
    def test_beats_or_matches_warner_front(self, normal_prior):
        """The core claim of the paper on a small budget: the optimized front
        should not be dominated by the Warner front and should extend it."""
        delta = 0.8
        n_records = 10_000
        config = OptRRConfig(
            population_size=40,
            archive_size=40,
            n_generations=300,
            delta=delta,
            seed=3,
        )
        result = OptRROptimizer(normal_prior, n_records, config).run()
        optrr_front = ParetoFront.from_result("optrr", result)
        warner = ParetoFront.from_family(
            WarnerFamily(normal_prior.n_categories), normal_prior, n_records, delta=delta
        )
        # Wider privacy coverage: the delta-feasible Warner front cannot reach
        # low privacy, OptRR should get clearly below it.
        assert optrr_front.privacy_range[0] < warner.privacy_range[0] - 0.01
        # At the probed privacy levels OptRR should rarely be worse.
        probes = np.linspace(*warner.privacy_range, 12)
        losses = sum(
            1
            for privacy in probes
            if optrr_front.utility_at_privacy(privacy) > warner.utility_at_privacy(privacy) * 1.05
        )
        assert losses <= 4

    def test_more_generations_do_not_hurt_hypervolume(self, small_prior):
        from repro.emoo.indicators import hypervolume_2d

        def run(generations: int):
            config = OptRRConfig(
                population_size=16, archive_size=16, n_generations=generations, delta=0.8, seed=5
            )
            result = OptRROptimizer(small_prior, 10_000, config).run()
            return ParetoFront.from_result("optrr", result).as_minimization_array()

        short = run(5)
        long = run(60)
        reference = (0.0, 2e-3)
        assert hypervolume_2d(long, reference) >= hypervolume_2d(short, reference) * 0.98

    def test_all_front_matrices_satisfy_bound_exactly(self, normal_prior):
        delta = 0.7
        config = OptRRConfig(
            population_size=20, archive_size=20, n_generations=40, delta=delta, seed=1
        )
        result = OptRROptimizer(normal_prior, 10_000, config).run()
        for point in result:
            assert max_posterior(point.matrix, normal_prior.probabilities) <= delta + 1e-6

    def test_front_utilities_match_evaluator(self, small_prior, fast_config):
        result = OptRROptimizer(small_prior, 10_000, fast_config).run()
        evaluator = MatrixEvaluator(small_prior, 10_000, fast_config.delta)
        for point in list(result)[:5]:
            evaluation = evaluator.evaluate(point.matrix)
            assert evaluation.privacy == pytest.approx(point.privacy)
            assert evaluation.utility == pytest.approx(point.utility)
