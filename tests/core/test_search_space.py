"""Tests for Fact 1 (repro.core.search_space)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ValidationError

from repro.core.search_space import (
    brute_force_is_feasible,
    column_combinations,
    log10_rr_matrix_combinations,
    rr_matrix_combinations,
)


class TestColumnCombinations:
    def test_small_cases_by_enumeration(self):
        # n=2, d=2: columns (0,2), (1,1), (2,0) -> 3 compositions.
        assert column_combinations(2, 2) == 3
        # n=3, d=2: C(4, 2) = 6.
        assert column_combinations(3, 2) == 6

    def test_matches_binomial_formula(self):
        assert column_combinations(5, 7) == math.comb(11, 7)


class TestMatrixCombinations:
    def test_small_case(self):
        assert rr_matrix_combinations(2, 2) == 9

    def test_paper_fact1_value(self):
        """Fact 1: n=10, d=100 gives about 1.98e126 combinations."""
        log10_count = log10_rr_matrix_combinations(10, 100)
        assert log10_count == pytest.approx(math.log10(1.98) + 126, abs=0.01)

    def test_log_matches_exact_for_small_inputs(self):
        exact = rr_matrix_combinations(3, 4)
        assert log10_rr_matrix_combinations(3, 4) == pytest.approx(math.log10(exact))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            rr_matrix_combinations(0, 10)
        with pytest.raises(ValidationError):
            rr_matrix_combinations(10, 0)


class TestBruteForceFeasibility:
    def test_tiny_case_is_feasible(self):
        assert brute_force_is_feasible(2, 10, budget=1000)

    def test_paper_case_is_infeasible(self):
        assert not brute_force_is_feasible(10, 100)

    def test_budget_boundary(self):
        combinations = rr_matrix_combinations(2, 4)  # 25
        assert brute_force_is_feasible(2, 4, budget=combinations)
        assert not brute_force_is_feasible(2, 4, budget=combinations - 1)
