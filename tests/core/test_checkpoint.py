"""Property tests for the checkpoint serialization layer.

Everything a checkpoint stores must restore *bit-for-bit*: raw float arrays
(including ``inf``, ``nan`` payloads and ``-0.0``), structure-of-arrays
populations, optimal-set state and the NumPy bit-generator state.  Hypothesis
drives the shapes and values; equality is asserted on the raw bytes, not on
approximate comparisons.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.archive import OptimalSet
from repro.core.driver import population_from_document, population_to_document
from repro.core.problem import RRMatrixProblem
from repro.data.synthetic import normal_distribution
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.exceptions import OptimizationError, ValidationError
from repro.rr.matrix import RRMatrix
from repro.utils.arrays import decode_array, encode_array


def json_round_trip(document):
    """Checkpoint documents travel through compact JSON on disk; every
    round-trip property must survive the text encoding too."""
    return json.loads(json.dumps(document))


class TestArrayCodec:
    @given(
        npst.arrays(
            dtype=np.float64,
            shape=npst.array_shapes(min_dims=1, max_dims=3, max_side=6),
            elements=st.floats(
                allow_nan=True, allow_infinity=True, width=64, allow_subnormal=True
            ),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_float_arrays_round_trip_bitwise(self, array):
        restored = decode_array(json_round_trip(encode_array(array)))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        assert restored.tobytes() == array.tobytes()  # bitwise, nan payloads included

    @given(
        npst.arrays(
            dtype=st.sampled_from([np.bool_, np.int64, np.intp]),
            shape=npst.array_shapes(min_dims=1, max_dims=2, max_side=8),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_integer_and_bool_arrays_round_trip(self, array):
        restored = decode_array(json_round_trip(encode_array(array)))
        assert restored.dtype == array.dtype
        np.testing.assert_array_equal(restored, array)

    def test_restored_arrays_are_writable(self):
        restored = decode_array(encode_array(np.arange(4.0)))
        restored[0] = -1.0  # must not raise (frombuffer views are read-only)

    def test_negative_zero_survives(self):
        array = np.array([-0.0, 0.0])
        restored = decode_array(json_round_trip(encode_array(array)))
        assert np.signbit(restored[0]) and not np.signbit(restored[1])

    def test_object_arrays_are_rejected(self):
        with pytest.raises(ValidationError, match="genome codec"):
            encode_array(np.array([object()], dtype=object))

    def test_truncated_payload_is_rejected(self):
        document = encode_array(np.arange(4.0))
        document["shape"] = [8]
        with pytest.raises(ValidationError, match="bytes"):
            decode_array(document)


def rr_populations():
    """Strategy: RR-style array-native populations with realistic columns."""

    @st.composite
    def build(draw):
        size = draw(st.integers(min_value=1, max_value=8))
        n = draw(st.integers(min_value=2, max_value=5))
        finite = st.floats(
            allow_nan=False, allow_infinity=False, width=64, min_value=-1e6, max_value=1e6
        )
        genomes = draw(
            npst.arrays(np.float64, (size, n, n), elements=finite)
        )
        objectives = draw(npst.arrays(np.float64, (size, 2), elements=finite))
        feasible = draw(npst.arrays(np.bool_, (size,)))
        utility = draw(
            npst.arrays(
                np.float64,
                (size,),
                elements=st.floats(allow_nan=False, width=64, min_value=0, max_value=1e9),
            )
        )
        population = Population(
            genomes=genomes,
            objectives=objectives,
            feasible=feasible,
            metadata={
                "privacy": draw(npst.arrays(np.float64, (size,), elements=finite)),
                "utility": utility,
                "invertible": draw(npst.arrays(np.bool_, (size,))),
            },
        )
        if draw(st.booleans()):
            population.set_fitness(
                draw(npst.arrays(np.float64, (size,), elements=finite)),
                draw(st.integers(min_value=0, max_value=100)),
            )
        return population

    return build()


class TestPopulationRoundTrip:
    @given(rr_populations())
    @settings(max_examples=40, deadline=None)
    def test_array_native_population_round_trips(self, population):
        document = json_round_trip(population_to_document(population))
        restored = population_from_document(document)
        assert restored.genomes.tobytes() == population.genomes.tobytes()
        assert restored.objectives.tobytes() == population.objectives.tobytes()
        np.testing.assert_array_equal(restored.feasible, population.feasible)
        assert set(restored.metadata) == set(population.metadata)
        for key in population.metadata:
            assert restored.metadata[key].tobytes() == population.metadata[key].tobytes()
            assert restored.metadata[key].dtype == population.metadata[key].dtype
        assert restored.fitness.tobytes() == population.fitness.tobytes()
        assert restored.fitness_generation == population.fitness_generation

    @given(
        st.lists(
            st.floats(
                allow_nan=False,
                allow_infinity=False,
                width=64,
                min_value=-1e100,
                max_value=1e100,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_source_backed_population_round_trips(self, xs):
        problem = _scalar_problem()
        individuals = [
            Individual(
                genome=float(x),
                objectives=np.array([x * x, (x - 1.0) ** 2]),
                metadata={"x": float(x)},
            )
            for x in xs
        ]
        population = Population.from_individuals(individuals)
        document = json_round_trip(population_to_document(population, problem))
        restored = population_from_document(document, problem)
        assert restored.objectives.tobytes() == population.objectives.tobytes()
        for restored_member, member in zip(restored.source, population.source):
            assert repr(restored_member.genome) == repr(member.genome)
            assert restored_member.metadata == member.metadata


def _scalar_problem():
    from tests.emoo.conftest import SphereTradeoffProblem

    return SphereTradeoffProblem()


class TestOptimalSetRoundTrip:
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_optimal_set_round_trips(self, seed, n):
        """Fill Ω with real evaluated matrices, round-trip, compare slots."""
        problem = RRMatrixProblem(normal_distribution(n), 4000)
        rng = np.random.default_rng(seed)
        population = problem.initial_population_soa(12, rng)
        optimal_set = OptimalSet(size=64)
        optimal_set.offer_population(
            population, lambda index: problem.population_individual(population, index)
        )
        document = json_round_trip(optimal_set.state_document())
        restored = OptimalSet(size=64)
        restored.restore_state(document, RRMatrix.from_validated)
        assert restored.n_updates == optimal_set.n_updates
        assert restored.n_occupied == optimal_set.n_occupied
        assert restored.slot_utilities().tobytes() == optimal_set.slot_utilities().tobytes()
        for original, rebuilt in zip(optimal_set.members(), restored.members()):
            assert rebuilt.genome.probabilities.tobytes() == (
                original.genome.probabilities.tobytes()
            )
            assert rebuilt.objectives.tobytes() == original.objectives.tobytes()
            assert rebuilt.metadata == original.metadata
            assert rebuilt.feasible == original.feasible

    def test_size_mismatch_is_rejected(self):
        document = OptimalSet(size=8).state_document()
        with pytest.raises(OptimizationError, match="slots"):
            OptimalSet(size=16).restore_state(document, RRMatrix.from_validated)


class TestRngStateRoundTrip:
    @given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_bit_generator_state_round_trips(self, seed, burn):
        from repro.emoo.driver import _restore_rng_state, _rng_state_document

        rng = np.random.default_rng(seed)
        rng.random(burn)  # advance to an arbitrary mid-stream state
        document = json_round_trip(_rng_state_document(rng))
        expected = rng.random(128)
        fresh = np.random.default_rng(0)
        _restore_rng_state(fresh, document)
        np.testing.assert_array_equal(fresh.random(128), expected)

    def test_restore_into_wrong_bit_generator(self):
        from repro.emoo.driver import _restore_rng_state

        rng = np.random.Generator(np.random.MT19937(0))
        document = {"bit_generator": "PCG64", "state": {"state": 1, "inc": 2}}
        with pytest.raises(ValidationError, match="RNG state"):
            _restore_rng_state(rng, document)
