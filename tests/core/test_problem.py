"""Tests for the RR-matrix EMOO problem (repro.core.problem)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import RRMatrixProblem
from repro.metrics.privacy import max_posterior
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


class TestEvaluation:
    def test_objectives_are_minimisation_form(self, small_prior):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        individual = problem.evaluate(warner_matrix(4, 0.6))
        assert individual.objectives[0] == pytest.approx(-individual.metadata["privacy"])
        assert individual.objectives[1] == pytest.approx(individual.metadata["utility"])
        assert individual.feasible

    def test_singular_matrix_gets_finite_penalty_objective(self, small_prior):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        individual = problem.evaluate(RRMatrix.uniform(4))
        assert np.isfinite(individual.objectives).all()
        assert not individual.feasible
        assert individual.metadata["utility"] == np.inf

    def test_bound_violations_marked_infeasible(self, small_prior):
        problem = RRMatrixProblem(small_prior, n_records=1000, delta=0.6)
        individual = problem.evaluate(RRMatrix.identity(4))
        assert not individual.feasible

    def test_evaluation_counter(self, small_prior):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        for p in (0.4, 0.6, 0.8):
            problem.evaluate(warner_matrix(4, p))
        assert problem.n_evaluations == 3

    def test_accepts_raw_probability_vector(self):
        problem = RRMatrixProblem(np.array([0.5, 0.5]), n_records=100)
        assert problem.n_categories == 2


class TestGenomeGeneration:
    def test_random_genomes_are_valid_and_respect_bound(self, small_prior, rng):
        problem = RRMatrixProblem(small_prior, n_records=1000, delta=0.7)
        for _ in range(10):
            genome = problem.random_genome(rng)
            np.testing.assert_allclose(genome.probabilities.sum(axis=0), 1.0, atol=1e-9)
            assert max_posterior(genome, small_prior.probabilities) <= 0.7 + 1e-6

    def test_initial_population_spans_privacy(self, small_prior, rng):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        population = problem.initial_population(30, rng)
        privacies = [individual.metadata["privacy"] for individual in population]
        assert max(privacies) - min(privacies) > 0.1


class TestVariation:
    def test_crossover_produces_valid_children(self, small_prior, rng):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        a, b = problem.random_genome(rng), problem.random_genome(rng)
        child_a, child_b = problem.crossover(a, b, rng)
        for child in (child_a, child_b):
            np.testing.assert_allclose(child.probabilities.sum(axis=0), 1.0, atol=1e-9)

    def test_mutation_produces_valid_genome(self, small_prior, rng):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        mutated = problem.mutate(problem.random_genome(rng), rng)
        np.testing.assert_allclose(mutated.probabilities.sum(axis=0), 1.0, atol=1e-9)

    def test_repair_without_delta_is_identity(self, small_prior, rng):
        problem = RRMatrixProblem(small_prior, n_records=1000)
        matrix = warner_matrix(4, 0.9)
        assert problem.repair(matrix, rng) is matrix

    def test_repair_with_delta_enforces_bound(self, small_prior, rng):
        problem = RRMatrixProblem(small_prior, n_records=1000, delta=0.65)
        repaired = problem.repair(RRMatrix.identity(4), rng)
        assert max_posterior(repaired, small_prior.probabilities) <= 0.65 + 1e-6
