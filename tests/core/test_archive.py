"""Tests for the optimal set Ω (repro.core.archive)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.archive import OptimalSet
from repro.emoo.individual import Individual
from repro.exceptions import OptimizationError
from repro.rr.schemes import warner_matrix


def make_member(privacy: float, utility: float, feasible: bool = True) -> Individual:
    return Individual(
        genome=warner_matrix(4, 0.5),
        objectives=np.array([-privacy, utility]),
        feasible=feasible,
        metadata={"privacy": privacy, "utility": utility},
    )


class TestSlotting:
    def test_slot_of_uses_floor(self):
        omega = OptimalSet(size=10)
        assert omega.slot_of(0.0) == 0
        assert omega.slot_of(0.15) == 1
        assert omega.slot_of(0.99) == 9
        assert omega.slot_of(1.0) == 9  # clamped into the last slot

    def test_slot_of_rejects_nan(self):
        with pytest.raises(OptimizationError):
            OptimalSet(10).slot_of(float("nan"))


class TestOffer:
    def test_accepts_first_member_of_a_slot(self):
        omega = OptimalSet(100)
        assert omega.offer(make_member(0.42, 1e-4))
        assert omega.n_occupied == 1
        assert omega.n_updates == 1

    def test_better_utility_replaces_occupant(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.42, 1e-4))
        assert omega.offer(make_member(0.421, 5e-5))  # same slot, lower MSE
        assert omega.n_occupied == 1
        occupant = omega.best_for_slot(omega.slot_of(0.42))
        assert occupant.metadata["utility"] == pytest.approx(5e-5)

    def test_worse_utility_is_rejected(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.42, 1e-4))
        assert not omega.offer(make_member(0.423, 2e-4))
        assert omega.n_updates == 1

    def test_different_slots_coexist(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.1, 1e-4))
        omega.offer(make_member(0.9, 1e-6))
        assert omega.n_occupied == 2

    def test_infeasible_members_are_ignored(self):
        omega = OptimalSet(100)
        assert not omega.offer(make_member(0.5, 1e-4, feasible=False))
        assert omega.n_occupied == 0

    def test_members_without_metadata_raise(self):
        omega = OptimalSet(10)
        individual = Individual(genome=None, objectives=np.array([0.0, 0.0]))
        with pytest.raises(OptimizationError, match="metadata"):
            omega.offer(individual)

    def test_offer_many_counts_updates(self):
        omega = OptimalSet(100)
        members = [make_member(0.1, 1e-4), make_member(0.2, 1e-4), make_member(0.1, 2e-4)]
        assert omega.offer_many(members) == 2

    def test_infinite_utility_is_rejected(self):
        omega = OptimalSet(10)
        assert not omega.offer(make_member(0.3, float("inf")))

    def test_stored_member_is_a_copy(self):
        omega = OptimalSet(100)
        member = make_member(0.33, 1e-4)
        omega.offer(member)
        member.metadata["utility"] = 999.0
        occupant = omega.best_for_slot(omega.slot_of(0.33))
        assert occupant.metadata["utility"] == pytest.approx(1e-4)


class TestViews:
    def test_members_ordered_by_privacy_slot(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.8, 1e-6))
        omega.offer(make_member(0.2, 1e-4))
        privacies = [member.metadata["privacy"] for member in omega.members()]
        assert privacies == sorted(privacies)

    def test_pareto_members_removes_dominated_slots(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.2, 1e-4))
        omega.offer(make_member(0.5, 5e-5))   # dominates the first (more privacy, less MSE)
        front = omega.pareto_members()
        assert len(front) == 1
        assert front[0].metadata["privacy"] == pytest.approx(0.5)

    def test_len_and_iter(self):
        omega = OptimalSet(50)
        omega.offer(make_member(0.3, 1e-4))
        assert len(omega) == 1
        assert len(list(omega)) == 1

    def test_best_for_slot_range_check(self):
        with pytest.raises(OptimizationError):
            OptimalSet(10).best_for_slot(10)


class TestQueries:
    def test_best_utility_for_privacy(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.3, 1e-4))
        omega.offer(make_member(0.6, 3e-4))
        omega.offer(make_member(0.7, 2e-4))
        best = omega.best_utility_for_privacy(0.5)
        assert best.metadata["privacy"] == pytest.approx(0.7)

    def test_best_utility_for_privacy_unreachable(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.3, 1e-4))
        assert omega.best_utility_for_privacy(0.9) is None

    def test_best_privacy_for_utility(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.3, 1e-4))
        omega.offer(make_member(0.6, 3e-4))
        best = omega.best_privacy_for_utility(2e-4)
        assert best.metadata["privacy"] == pytest.approx(0.3)

    def test_best_privacy_for_utility_unreachable(self):
        omega = OptimalSet(100)
        omega.offer(make_member(0.3, 1e-3))
        assert omega.best_privacy_for_utility(1e-6) is None


class TestOfferPopulation:
    """Vectorized population offers must make the same accept/reject
    decisions (and update counts) as offering the rows sequentially."""

    @staticmethod
    def _random_population(rng, size):
        from repro.emoo.population import Population

        privacy = rng.uniform(0.0, 1.0, size)
        utility = rng.uniform(1e-6, 1e-3, size)
        # A few infeasible and a few non-finite-utility rows.
        feasible = rng.random(size) > 0.2
        utility[rng.random(size) < 0.1] = np.inf
        return Population(
            genomes=rng.random((size, 3, 3)),
            objectives=np.stack([-privacy, utility], axis=1),
            feasible=feasible,
            metadata={
                "privacy": privacy,
                "utility": utility,
                "max_posterior": rng.uniform(0.0, 1.0, size),
                "invertible": np.ones(size, dtype=bool),
            },
        )

    @staticmethod
    def _views(population):
        return [
            population.individual(index, genome_builder=lambda row: row)
            for index in range(population.size)
        ]

    def test_matches_sequential_offers(self):
        rng = np.random.default_rng(3)
        for trial in range(5):
            vectorized = OptimalSet(40)
            sequential = OptimalSet(40)
            for _ in range(3):  # several batches so occupied slots interact
                population = self._random_population(rng, 30)
                accepted_vec = vectorized.offer_population(
                    population, lambda i: population.individual(i, genome_builder=lambda row: row)
                )
                accepted_seq = sequential.offer_many(self._views(population))
                assert accepted_vec == accepted_seq
            assert vectorized.n_updates == sequential.n_updates
            assert vectorized.n_occupied == sequential.n_occupied
            for slot in range(40):
                ours = vectorized.best_for_slot(slot)
                theirs = sequential.best_for_slot(slot)
                assert (ours is None) == (theirs is None)
                if ours is not None:
                    assert ours.metadata["utility"] == theirs.metadata["utility"]
                    assert ours.metadata["privacy"] == theirs.metadata["privacy"]

    def test_duplicate_slot_candidates_in_one_batch(self):
        """Two same-slot candidates in one batch: only the better one lands,
        exactly like sequential offers."""
        from repro.emoo.population import Population

        privacy = np.array([0.505, 0.505, 0.505])
        utility = np.array([3e-4, 1e-4, 2e-4])
        population = Population(
            genomes=np.zeros((3, 2, 2)),
            objectives=np.stack([-privacy, utility], axis=1),
            feasible=np.ones(3, dtype=bool),
            metadata={"privacy": privacy, "utility": utility},
        )
        omega = OptimalSet(10)
        accepted = omega.offer_population(
            population, lambda i: population.individual(i, genome_builder=lambda row: row)
        )
        # Sequential semantics: 3e-4 lands, then 1e-4 replaces it, 2e-4 loses.
        assert accepted == 2
        assert omega.n_occupied == 1
        assert omega.best_for_slot(omega.slot_of(0.505)).metadata["utility"] == 1e-4

    def test_slots_of_matches_scalar_slot_of(self):
        omega = OptimalSet(17)
        privacy = np.array([0.0, 1.0, 0.5, 0.999999, 1e-9])
        vector = omega.slots_of(privacy)
        assert [int(v) for v in vector] == [omega.slot_of(float(p)) for p in privacy]

    def test_slots_of_rejects_non_finite(self):
        with pytest.raises(OptimizationError):
            OptimalSet(10).slots_of(np.array([0.5, np.nan]))
