"""Tests for repro.core.config."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import OptRRConfig
from repro.exceptions import ValidationError


class TestOptRRConfig:
    def test_defaults_are_valid(self):
        config = OptRRConfig()
        assert config.population_size >= 2
        assert config.delta is None

    def test_rejects_bad_population(self):
        with pytest.raises(ValidationError):
            OptRRConfig(population_size=0)
        with pytest.raises(ValidationError):
            OptRRConfig(population_size=1)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValidationError):
            OptRRConfig(delta=0.0)
        with pytest.raises(ValidationError):
            OptRRConfig(delta=1.5)

    def test_rejects_bad_mutation_scale(self):
        with pytest.raises(ValidationError):
            OptRRConfig(mutation_scale=0.0)
        with pytest.raises(ValidationError):
            OptRRConfig(mutation_scale=1.5)

    def test_rejects_negative_diagonal_bias(self):
        with pytest.raises(ValidationError):
            OptRRConfig(diagonal_bias=-0.1)

    def test_stagnation_patience_optional(self):
        assert OptRRConfig(stagnation_patience=None).stagnation_patience is None
        assert OptRRConfig(stagnation_patience=5).stagnation_patience == 5
        with pytest.raises(ValidationError):
            OptRRConfig(stagnation_patience=0)

    def test_rejects_negative_baseline_seeds(self):
        with pytest.raises(ValidationError):
            OptRRConfig(baseline_seeds=-1)

    def test_baseline_seeds_zero_allowed(self):
        assert OptRRConfig(baseline_seeds=0).baseline_seeds == 0

    def test_with_updates_returns_modified_copy(self):
        config = OptRRConfig(n_generations=100)
        updated = config.with_updates(n_generations=5, delta=0.8)
        assert updated.n_generations == 5
        assert updated.delta == 0.8
        assert config.n_generations == 100

    def test_is_frozen(self):
        config = OptRRConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.n_generations = 5  # type: ignore[misc]
