"""Tests for repro.core.result."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import OptimizationResult, ParetoPoint
from repro.emoo.individual import Individual
from repro.exceptions import OptimizationError
from repro.rr.schemes import warner_matrix


def make_point(privacy: float, utility: float) -> ParetoPoint:
    return ParetoPoint(
        matrix=warner_matrix(4, 0.5),
        privacy=privacy,
        utility=utility,
        max_posterior=0.5,
    )


@pytest.fixture
def result() -> OptimizationResult:
    return OptimizationResult(
        points=(make_point(0.3, 1e-4), make_point(0.6, 5e-4), make_point(0.45, 2e-4)),
        n_generations=10,
        n_evaluations=200,
    )


class TestParetoPoint:
    def test_from_individual(self):
        individual = Individual(
            genome=warner_matrix(3, 0.7),
            objectives=np.array([-0.4, 1e-3]),
            metadata={"privacy": 0.4, "utility": 1e-3, "max_posterior": 0.77},
        )
        point = ParetoPoint.from_individual(individual)
        assert point.privacy == pytest.approx(0.4)
        assert point.utility == pytest.approx(1e-3)
        assert point.max_posterior == pytest.approx(0.77)


class TestOptimizationResult:
    def test_points_sorted_by_privacy(self, result):
        privacies = result.privacy_values()
        assert np.all(np.diff(privacies) >= 0)

    def test_len_and_iter(self, result):
        assert len(result) == 3
        assert len(list(result)) == 3

    def test_objectives_shape(self, result):
        assert result.objectives().shape == (3, 2)

    def test_privacy_range(self, result):
        assert result.privacy_range == (pytest.approx(0.3), pytest.approx(0.6))

    def test_privacy_range_of_empty_result_raises(self):
        with pytest.raises(OptimizationError):
            OptimizationResult(points=()).privacy_range

    def test_best_matrix_for_privacy(self, result):
        point = result.best_matrix_for_privacy(0.4)
        assert point.privacy == pytest.approx(0.45)

    def test_best_matrix_for_privacy_unreachable(self, result):
        with pytest.raises(OptimizationError):
            result.best_matrix_for_privacy(0.95)

    def test_best_matrix_for_utility(self, result):
        point = result.best_matrix_for_utility(3e-4)
        assert point.privacy == pytest.approx(0.45)

    def test_best_matrix_for_utility_unreachable(self, result):
        with pytest.raises(OptimizationError):
            result.best_matrix_for_utility(1e-7)

    def test_from_individuals(self):
        individuals = [
            Individual(
                genome=warner_matrix(3, 0.6),
                objectives=np.array([-0.2, 1e-3]),
                metadata={"privacy": 0.2, "utility": 1e-3, "max_posterior": 0.8},
            )
        ]
        result = OptimizationResult.from_individuals(individuals, n_generations=3, n_evaluations=30)
        assert len(result) == 1
        assert result.n_generations == 3
        assert result.n_evaluations == 30
