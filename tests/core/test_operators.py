"""Tests for the RR-matrix variation operators (Sections V-E/F/G)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operators import (
    column_crossover,
    enforce_privacy_bound,
    proportional_column_mutation,
    random_initial_matrices,
)
from repro.exceptions import ValidationError
from repro.metrics.privacy import max_posterior
from repro.rr.matrix import RRMatrix, random_rr_matrix
from repro.rr.schemes import warner_matrix


def assert_is_rr_matrix(matrix: RRMatrix) -> None:
    """Column-stochasticity invariant every operator must preserve."""
    probabilities = matrix.probabilities
    assert np.all(probabilities >= -1e-12)
    assert np.all(probabilities <= 1.0 + 1e-12)
    np.testing.assert_allclose(probabilities.sum(axis=0), 1.0, atol=1e-9)


class TestColumnCrossover:
    def test_children_are_valid_rr_matrices(self, rng):
        for _ in range(20):
            a = random_rr_matrix(6, seed=rng)
            b = random_rr_matrix(6, seed=rng)
            child_a, child_b = column_crossover(a, b, rng)
            assert_is_rr_matrix(child_a)
            assert_is_rr_matrix(child_b)

    def test_children_mix_parent_columns(self, rng):
        a = RRMatrix.identity(4)
        b = RRMatrix.uniform(4)
        child_a, child_b = column_crossover(a, b, rng)
        # Each child column must equal the corresponding column of one parent.
        for child in (child_a, child_b):
            for column_index in range(4):
                column = child.column(column_index)
                from_a = np.allclose(column, a.column(column_index))
                from_b = np.allclose(column, b.column(column_index))
                assert from_a or from_b

    def test_swap_is_symmetric(self, rng):
        a = RRMatrix.identity(3)
        b = RRMatrix.uniform(3)
        child_a, child_b = column_crossover(a, b, np.random.default_rng(0))
        # Together the children contain exactly the parents' columns.
        combined_children = np.sort(
            np.concatenate([child_a.probabilities.ravel(), child_b.probabilities.ravel()])
        )
        combined_parents = np.sort(
            np.concatenate([a.probabilities.ravel(), b.probabilities.ravel()])
        )
        np.testing.assert_allclose(combined_children, combined_parents)

    def test_size_mismatch_raises(self, rng):
        with pytest.raises(ValidationError):
            column_crossover(RRMatrix.identity(3), RRMatrix.identity(4), rng)


class TestProportionalColumnMutation:
    def test_result_is_valid_rr_matrix(self, rng):
        for _ in range(50):
            matrix = random_rr_matrix(5, seed=rng)
            mutated = proportional_column_mutation(matrix, rng, scale=0.3)
            assert_is_rr_matrix(mutated)

    def test_changes_exactly_one_column(self, rng):
        matrix = warner_matrix(6, 0.7)
        mutated = proportional_column_mutation(matrix, np.random.default_rng(3), scale=0.2)
        differing_columns = [
            index
            for index in range(6)
            if not np.allclose(matrix.column(index), mutated.column(index))
        ]
        assert len(differing_columns) <= 1

    def test_original_is_not_modified(self, rng):
        matrix = warner_matrix(4, 0.6)
        original = matrix.as_array()
        proportional_column_mutation(matrix, rng)
        np.testing.assert_array_equal(matrix.probabilities, original)

    def test_mutation_actually_changes_something_eventually(self, rng):
        matrix = warner_matrix(5, 0.5)
        changed = any(
            not proportional_column_mutation(matrix, rng, scale=0.3).isclose(matrix)
            for _ in range(10)
        )
        assert changed

    def test_rejects_bad_scale(self, rng):
        with pytest.raises(ValidationError):
            proportional_column_mutation(RRMatrix.identity(3), rng, scale=0.0)

    def test_identity_matrix_mutation_stays_valid(self, rng):
        # The identity matrix is an edge case: columns have a single 1 and the
        # rebalancing has no headroom in one direction.
        for _ in range(20):
            mutated = proportional_column_mutation(RRMatrix.identity(4), rng, scale=0.5)
            assert_is_rr_matrix(mutated)


class TestEnforcePrivacyBound:
    def test_repaired_matrix_is_valid(self, small_prior, rng):
        for _ in range(20):
            matrix = random_rr_matrix(4, seed=rng, diagonal_bias=5.0)
            repaired = enforce_privacy_bound(matrix, small_prior.probabilities, 0.6)
            assert_is_rr_matrix(repaired)

    def test_bound_is_met_after_repair(self, small_prior, rng):
        for _ in range(20):
            matrix = random_rr_matrix(4, seed=rng, diagonal_bias=8.0)
            repaired = enforce_privacy_bound(matrix, small_prior.probabilities, 0.65)
            assert max_posterior(repaired, small_prior.probabilities) <= 0.65 + 1e-6

    def test_identity_matrix_gets_repaired(self, small_prior):
        repaired = enforce_privacy_bound(RRMatrix.identity(4), small_prior.probabilities, 0.7)
        assert max_posterior(repaired, small_prior.probabilities) <= 0.7 + 1e-6

    def test_already_feasible_matrix_unchanged(self, small_prior):
        matrix = RRMatrix.uniform(4)
        repaired = enforce_privacy_bound(matrix, small_prior.probabilities, 0.7)
        assert repaired.isclose(matrix)

    def test_infeasible_delta_returns_best_effort(self):
        # delta below max prior cannot be met (Theorem 5); the repair must not
        # crash or return an invalid matrix.
        prior = np.array([0.9, 0.05, 0.05])
        repaired = enforce_privacy_bound(RRMatrix.identity(3), prior, 0.5)
        assert_is_rr_matrix(repaired)

    def test_rejects_bad_delta(self, small_prior):
        with pytest.raises(ValidationError):
            enforce_privacy_bound(RRMatrix.identity(4), small_prior.probabilities, 0.0)

    def test_repair_never_worsens_off_diagonal_worst_cell(self):
        """Regression: Hypothesis falsifying example for the old repair.

        Shrinking the worst cell ``theta[i, j]`` shrinks row ``i``'s
        normaliser, which *raises* the other posteriors of report ``i``; with
        this matrix the old single-trajectory repair ended in a state whose
        worst posterior exceeded the input's.  The repair must return the best
        state visited, so the worst-case posterior never increases.
        """
        prior = np.array([0.25, 0.25, 0.25, 0.25])
        values = np.array(
            [
                [0.25, 0.25, 0.88888889, 0.96385542],
                [0.25, 0.25, 0.03703704, 0.01204819],
                [0.25, 0.25, 0.03703704, 0.01204819],
                [0.25, 0.25, 0.03703704, 0.01204819],
            ]
        )
        matrix = RRMatrix(values / values.sum(axis=0, keepdims=True))
        delta = min(0.999, prior.max() + 0.125)
        repaired = enforce_privacy_bound(matrix, prior, delta)
        assert_is_rr_matrix(repaired)
        assert max_posterior(repaired, prior) <= max_posterior(matrix, prior) + 1e-9


class TestRandomInitialMatrices:
    def test_count_and_validity(self, rng):
        matrices = random_initial_matrices(5, 12, rng)
        assert len(matrices) == 12
        for matrix in matrices:
            assert_is_rr_matrix(matrix)

    def test_population_spans_diagonal_strengths(self, rng):
        matrices = random_initial_matrices(6, 30, rng, diagonal_bias=3.0)
        diagonals = np.array([matrix.diagonal().mean() for matrix in matrices])
        assert diagonals.max() - diagonals.min() > 0.2

    def test_reproducible(self):
        first = random_initial_matrices(4, 6, np.random.default_rng(5))
        second = random_initial_matrices(4, 6, np.random.default_rng(5))
        assert all(a == b for a, b in zip(first, second))
