"""Tests for repro.rr.estimation (Theorem 1 inversion, Eq. 3 iterative)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import gamma_distribution
from repro.exceptions import EstimationError, ValidationError
from repro.rr.estimation import (
    InversionEstimator,
    IterativeEstimator,
    counts_from_codes,
    estimate_distribution,
)
from repro.rr.matrix import RRMatrix
from repro.rr.randomize import RandomizedResponse
from repro.rr.schemes import warner_matrix


class TestCountsFromCodes:
    def test_histogram(self):
        counts = counts_from_codes(np.array([0, 1, 1, 2, 2, 2]), 4)
        np.testing.assert_allclose(counts, [1, 2, 3, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(EstimationError):
            counts_from_codes(np.array([0, 7]), 3)

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            counts_from_codes(np.array([], dtype=np.int64), 3)


class TestInversionEstimator:
    def test_exact_on_true_disguised_distribution(self, small_prior):
        """Feeding the exact disguised distribution must recover the prior."""
        matrix = warner_matrix(4, 0.6)
        disguised = matrix.disguise_distribution(small_prior.probabilities)
        estimate = InversionEstimator().estimate(disguised * 1000, matrix)
        np.testing.assert_allclose(estimate.probabilities, small_prior.probabilities, atol=1e-9)

    def test_identity_matrix_returns_empirical(self):
        counts = np.array([10.0, 30.0, 60.0])
        estimate = InversionEstimator().estimate(counts, RRMatrix.identity(3))
        np.testing.assert_allclose(estimate.probabilities, [0.1, 0.3, 0.6])

    def test_estimates_converge_with_sample_size(self):
        prior = gamma_distribution(8)
        matrix = warner_matrix(8, 0.5)
        mechanism = RandomizedResponse(matrix)
        errors = []
        for n_records in (500, 50_000):
            codes = prior.sample(n_records, seed=1)
            disguised = mechanism.randomize_codes(codes, seed=2)
            estimate = InversionEstimator().estimate_from_codes(disguised, matrix)
            errors.append(estimate.mean_squared_error(prior.probabilities))
        assert errors[1] < errors[0]

    def test_raw_estimate_can_be_negative_but_corrected_is_not(self):
        matrix = warner_matrix(4, 0.35)
        # A tiny, extreme sample can push the raw inversion estimate negative.
        counts = np.array([20.0, 0.0, 0.0, 0.0])
        estimate = InversionEstimator().estimate(counts, matrix)
        assert np.all(estimate.probabilities >= 0)
        assert estimate.probabilities.sum() == pytest.approx(1.0)
        assert estimate.raw_probabilities.min() < 0

    def test_unclipped_mode_preserves_raw(self):
        matrix = warner_matrix(4, 0.35)
        counts = np.array([20.0, 0.0, 0.0, 0.0])
        estimate = InversionEstimator(clip_negative=False).estimate(counts, matrix)
        np.testing.assert_allclose(estimate.probabilities, estimate.raw_probabilities)

    def test_wrong_count_length_raises(self):
        with pytest.raises(EstimationError):
            InversionEstimator().estimate(np.array([1.0, 2.0]), RRMatrix.identity(3))

    def test_all_zero_counts_raise(self):
        with pytest.raises(EstimationError):
            InversionEstimator().estimate(np.zeros(3), RRMatrix.identity(3))


class TestIterativeEstimator:
    def test_recovers_prior_from_exact_disguised_distribution(self, small_prior):
        matrix = warner_matrix(4, 0.6)
        disguised = matrix.disguise_distribution(small_prior.probabilities)
        estimate = IterativeEstimator(max_iterations=5000).estimate(disguised * 10_000, matrix)
        assert estimate.converged
        np.testing.assert_allclose(estimate.probabilities, small_prior.probabilities, atol=1e-4)

    def test_never_produces_negative_probabilities(self):
        matrix = warner_matrix(4, 0.35)
        counts = np.array([20.0, 0.0, 0.0, 0.0])
        estimate = IterativeEstimator().estimate(counts, matrix)
        assert np.all(estimate.probabilities >= 0)
        assert estimate.probabilities.sum() == pytest.approx(1.0)

    def test_close_to_inversion_on_large_samples(self):
        prior = gamma_distribution(6)
        matrix = warner_matrix(6, 0.55)
        mechanism = RandomizedResponse(matrix)
        codes = prior.sample(100_000, seed=5)
        disguised = mechanism.randomize_codes(codes, seed=6)
        inv = InversionEstimator().estimate_from_codes(disguised, matrix)
        it = IterativeEstimator().estimate_from_codes(disguised, matrix)
        np.testing.assert_allclose(inv.probabilities, it.probabilities, atol=5e-3)

    def test_respects_iteration_budget(self):
        matrix = warner_matrix(5, 0.4)
        counts = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        estimate = IterativeEstimator(max_iterations=2, tolerance=1e-15).estimate(counts, matrix)
        assert estimate.n_iterations <= 2
        assert not estimate.converged

    def test_nonconvergence_can_raise(self):
        matrix = warner_matrix(5, 0.4)
        counts = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        estimator = IterativeEstimator(max_iterations=1, tolerance=1e-16, raise_on_nonconvergence=True)
        with pytest.raises(EstimationError, match="did not converge"):
            estimator.estimate(counts, matrix)

    def test_custom_initial_distribution(self, small_prior):
        matrix = warner_matrix(4, 0.7)
        disguised = matrix.disguise_distribution(small_prior.probabilities)
        estimate = IterativeEstimator().estimate(
            disguised * 1000, matrix, initial=np.array([0.7, 0.1, 0.1, 0.1])
        )
        np.testing.assert_allclose(estimate.probabilities, small_prior.probabilities, atol=1e-3)

    def test_invalid_settings(self):
        with pytest.raises(ValidationError):
            IterativeEstimator(max_iterations=0)
        with pytest.raises(EstimationError):
            IterativeEstimator(tolerance=0.0)

    def test_works_for_singular_matrices(self):
        """The iterative estimator does not need M to be invertible."""
        matrix = RRMatrix.uniform(3)
        estimate = IterativeEstimator(max_iterations=200).estimate(np.array([10.0, 20.0, 30.0]), matrix)
        # With a totally randomizing matrix every prior explains the data; the
        # estimator should return a valid distribution without crashing.
        assert estimate.probabilities.sum() == pytest.approx(1.0)


class TestEstimateDistributionWrapper:
    def test_inversion_method(self, small_prior):
        matrix = warner_matrix(4, 0.6)
        codes = RandomizedResponse(matrix).randomize_codes(
            small_prior.sample(20_000, seed=0), seed=1
        )
        estimate = estimate_distribution(codes, matrix, method="inversion")
        assert estimate.mean_squared_error(small_prior.probabilities) < 1e-3

    def test_iterative_method(self, small_prior):
        matrix = warner_matrix(4, 0.6)
        codes = RandomizedResponse(matrix).randomize_codes(
            small_prior.sample(20_000, seed=0), seed=1
        )
        estimate = estimate_distribution(codes, matrix, method="iterative")
        assert estimate.mean_squared_error(small_prior.probabilities) < 1e-3

    def test_unknown_method(self):
        with pytest.raises(EstimationError):
            estimate_distribution(np.array([0, 1]), RRMatrix.identity(2), method="magic")

    def test_inversion_forwards_clip_negative(self, small_prior):
        matrix = warner_matrix(4, 0.6)
        codes = RandomizedResponse(matrix).randomize_codes(
            small_prior.sample(50, seed=3), seed=4
        )
        raw = estimate_distribution(codes, matrix, method="inversion", clip_negative=False)
        clipped = estimate_distribution(codes, matrix, method="inversion", clip_negative=True)
        # The uncorrected estimate is returned verbatim when clipping is off.
        np.testing.assert_array_equal(raw.probabilities, raw.raw_probabilities)
        assert np.all(clipped.probabilities >= 0.0)

    def test_iterative_forwards_max_iterations(self, small_prior):
        matrix = warner_matrix(4, 0.55)
        codes = RandomizedResponse(matrix).randomize_codes(
            small_prior.sample(5_000, seed=5), seed=6
        )
        estimate = estimate_distribution(
            codes, matrix, method="iterative", max_iterations=2, tolerance=1e-15
        )
        assert estimate.n_iterations <= 2
        assert not estimate.converged

    def test_iterative_forwards_initial_guess(self, small_prior):
        matrix = warner_matrix(4, 0.6)
        codes = RandomizedResponse(matrix).randomize_codes(
            small_prior.sample(5_000, seed=7), seed=8
        )
        # Starting at the truth should converge at least as fast as uniform.
        from_truth = estimate_distribution(
            codes, matrix, method="iterative", initial=small_prior.probabilities
        )
        from_uniform = estimate_distribution(codes, matrix, method="iterative")
        assert from_truth.converged
        assert from_truth.n_iterations <= from_uniform.n_iterations

    def test_iterative_forwards_raise_on_nonconvergence(self, small_prior):
        matrix = warner_matrix(4, 0.55)
        codes = RandomizedResponse(matrix).randomize_codes(
            small_prior.sample(5_000, seed=9), seed=10
        )
        with pytest.raises(EstimationError, match="did not converge"):
            estimate_distribution(
                codes, matrix, method="iterative",
                max_iterations=1, tolerance=1e-15, raise_on_nonconvergence=True,
            )

    def test_unknown_option_rejected_per_method(self):
        codes = np.array([0, 1, 1, 0])
        with pytest.raises(EstimationError, match="accepted"):
            estimate_distribution(
                codes, RRMatrix.identity(2), method="inversion", max_iterations=5
            )
        with pytest.raises(EstimationError, match="accepted"):
            estimate_distribution(
                codes, RRMatrix.identity(2), method="iterative", clip_negative=True
            )
