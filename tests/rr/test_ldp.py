"""Tests for the LDP bridge (repro.rr.ldp)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.privacy import max_posterior
from repro.rr.ldp import (
    epsilon_for_delta_bound,
    epsilon_of_k_rr,
    k_rr_matrix,
    ldp_epsilon,
    max_posterior_under_ldp,
    satisfies_ldp,
)
from repro.rr.matrix import RRMatrix
from repro.rr.schemes import warner_matrix


class TestLdpEpsilon:
    def test_uniform_matrix_has_zero_epsilon(self):
        assert ldp_epsilon(RRMatrix.uniform(5)) == pytest.approx(0.0)

    def test_identity_matrix_has_infinite_epsilon(self):
        assert ldp_epsilon(RRMatrix.identity(5)) == np.inf

    def test_warner_matrix_epsilon_formula(self):
        n, p = 6, 0.7
        matrix = warner_matrix(n, p)
        expected = math.log(p / ((1 - p) / (n - 1)))
        assert ldp_epsilon(matrix) == pytest.approx(expected)

    def test_satisfies_ldp(self):
        matrix = warner_matrix(4, 0.6)
        epsilon = ldp_epsilon(matrix)
        assert satisfies_ldp(matrix, epsilon + 0.01)
        assert not satisfies_ldp(matrix, epsilon - 0.01)

    def test_satisfies_ldp_rejects_negative_epsilon(self):
        with pytest.raises(ValidationError):
            satisfies_ldp(RRMatrix.uniform(3), -0.5)


class TestKRR:
    def test_k_rr_is_a_warner_matrix(self):
        n, epsilon = 5, 1.2
        matrix = k_rr_matrix(n, epsilon)
        retention = math.exp(epsilon) / (math.exp(epsilon) + n - 1)
        assert matrix.isclose(warner_matrix(n, retention))

    def test_k_rr_achieves_exactly_epsilon(self):
        matrix = k_rr_matrix(7, 0.8)
        assert ldp_epsilon(matrix) == pytest.approx(0.8)

    def test_epsilon_zero_is_total_randomization(self):
        assert k_rr_matrix(4, 0.0).isclose(RRMatrix.uniform(4))

    def test_epsilon_of_k_rr_round_trip(self):
        n, epsilon = 6, 1.5
        retention = math.exp(epsilon) / (math.exp(epsilon) + n - 1)
        assert epsilon_of_k_rr(n, retention) == pytest.approx(epsilon)

    def test_epsilon_of_identity_is_infinite(self):
        assert epsilon_of_k_rr(4, 1.0) == np.inf

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValidationError):
            k_rr_matrix(4, -1.0)
        with pytest.raises(ValidationError):
            k_rr_matrix(4, float("inf"))


class TestDeltaEpsilonTranslation:
    def test_posterior_bound_formula(self, small_prior):
        epsilon = 1.0
        bound = max_posterior_under_ldp(small_prior.probabilities, epsilon)
        p_max = small_prior.max_probability
        expected = math.exp(epsilon) * p_max / (math.exp(epsilon) * p_max + 1 - p_max)
        assert bound == pytest.approx(expected)

    def test_epsilon_zero_gives_prior_mode(self, small_prior):
        assert max_posterior_under_ldp(small_prior.probabilities, 0.0) == pytest.approx(
            small_prior.max_probability
        )

    def test_round_trip_delta_epsilon(self, small_prior):
        delta = 0.7
        epsilon = epsilon_for_delta_bound(small_prior.probabilities, delta)
        assert max_posterior_under_ldp(small_prior.probabilities, epsilon) == pytest.approx(delta)

    def test_k_rr_at_translated_epsilon_satisfies_delta(self, small_prior):
        """The epsilon/delta translation must be sound: the k-RR mechanism at
        the translated epsilon satisfies the paper's worst-case bound."""
        delta = 0.65
        epsilon = epsilon_for_delta_bound(small_prior.probabilities, delta)
        matrix = k_rr_matrix(small_prior.n_categories, epsilon)
        assert max_posterior(matrix, small_prior.probabilities) <= delta + 1e-9

    def test_infeasible_delta_rejected(self, small_prior):
        with pytest.raises(ValidationError, match="Theorem 5"):
            epsilon_for_delta_bound(small_prior.probabilities, 0.3)


class TestLdpEpsilonEdgeCases:
    def test_all_zero_report_row_is_ignored(self):
        # A report that no input can produce contributes no likelihood ratio:
        # the remaining rows determine epsilon.
        matrix = RRMatrix(np.array([[1.0, 1.0], [0.0, 0.0]]))
        assert ldp_epsilon(matrix) == pytest.approx(0.0)

    def test_partially_zero_row_is_unbounded(self):
        matrix = RRMatrix(np.array([[1.0, 0.5], [0.0, 0.5]]))
        assert ldp_epsilon(matrix) == np.inf

    def test_satisfies_ldp_honours_atol(self):
        matrix = warner_matrix(4, 0.6)
        epsilon = ldp_epsilon(matrix)
        assert satisfies_ldp(matrix, epsilon - 1e-12)
        assert not satisfies_ldp(matrix, epsilon - 1e-3, atol=1e-9)
        assert satisfies_ldp(matrix, epsilon - 1e-3, atol=1e-2)

    def test_identity_never_satisfies_finite_epsilon(self):
        assert not satisfies_ldp(RRMatrix.identity(3), 100.0)


class TestEpsilonOfKRRBranches:
    def test_anti_diagonal_retention_below_uniform(self):
        # retention below 1/n: the off-diagonal dominates, and epsilon
        # measures the inverse ratio.
        n, retention = 4, 0.1
        off_diagonal = (1.0 - retention) / (n - 1)
        expected = math.log(off_diagonal / retention)
        assert epsilon_of_k_rr(n, retention) == pytest.approx(expected)

    def test_uniform_retention_is_epsilon_zero(self):
        assert epsilon_of_k_rr(5, 1.0 / 5.0) == pytest.approx(0.0)

    def test_rejects_retention_outside_unit_interval(self):
        with pytest.raises(ValidationError):
            epsilon_of_k_rr(4, 1.5)

    def test_k_rr_rejects_bad_domain_size(self):
        with pytest.raises(ValidationError):
            k_rr_matrix(0, 1.0)


class TestTranslationValidation:
    def test_max_posterior_rejects_negative_epsilon(self, small_prior):
        with pytest.raises(ValidationError):
            max_posterior_under_ldp(small_prior.probabilities, -0.1)

    def test_max_posterior_rejects_non_probability_prior(self):
        with pytest.raises(ValidationError):
            max_posterior_under_ldp(np.array([0.5, 0.9]), 1.0)

    def test_epsilon_for_delta_rejects_degenerate_delta(self, small_prior):
        for delta in (0.0, 1.0):
            with pytest.raises(ValidationError):
                epsilon_for_delta_bound(small_prior.probabilities, delta)

    def test_delta_at_prior_mode_needs_epsilon_zero(self, small_prior):
        """delta == max P(X) is exactly what epsilon = 0 (total
        randomization) guarantees — Theorem 5's boundary case."""
        epsilon = epsilon_for_delta_bound(
            small_prior.probabilities, small_prior.max_probability
        )
        assert epsilon == pytest.approx(0.0, abs=1e-12)

    def test_monotone_in_delta(self, small_prior):
        """A looser posterior bound affords a larger epsilon."""
        deltas = np.linspace(small_prior.max_probability + 0.01, 0.95, 8)
        epsilons = [
            epsilon_for_delta_bound(small_prior.probabilities, float(d)) for d in deltas
        ]
        assert all(b > a for a, b in zip(epsilons, epsilons[1:]))
