"""Tests for repro.rr.schemes (Warner, UP, FRAPP constructors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RRMatrixError, ValidationError
from repro.rr.schemes import (
    frapp_matrix,
    identity_matrix,
    total_randomization_matrix,
    uniform_perturbation_matrix,
    warner_equivalent_p,
    warner_matrix,
)


class TestWarner:
    def test_structure(self):
        matrix = warner_matrix(4, 0.7)
        np.testing.assert_allclose(matrix.diagonal(), 0.7)
        assert matrix[0, 1] == pytest.approx(0.3 / 3)

    def test_p_one_is_identity(self):
        assert warner_matrix(5, 1.0) == identity_matrix(5)

    def test_p_one_over_n_is_total_randomization(self):
        assert warner_matrix(5, 0.2).isclose(total_randomization_matrix(5))

    def test_columns_sum_to_one(self):
        matrix = warner_matrix(7, 0.3)
        np.testing.assert_allclose(matrix.probabilities.sum(axis=0), 1.0)

    def test_rejects_out_of_range_p(self):
        with pytest.raises(ValidationError):
            warner_matrix(4, 1.4)

    def test_rejects_single_category(self):
        with pytest.raises(RRMatrixError):
            warner_matrix(1, 0.5)


class TestUniformPerturbation:
    def test_structure(self):
        matrix = uniform_perturbation_matrix(4, 0.6)
        assert matrix[0, 0] == pytest.approx(0.6 + 0.1)
        assert matrix[1, 0] == pytest.approx(0.1)

    def test_q_zero_is_total_randomization(self):
        assert uniform_perturbation_matrix(5, 0.0).isclose(total_randomization_matrix(5))

    def test_q_one_is_identity(self):
        assert uniform_perturbation_matrix(5, 1.0).isclose(identity_matrix(5))

    def test_columns_sum_to_one(self):
        matrix = uniform_perturbation_matrix(6, 0.35)
        np.testing.assert_allclose(matrix.probabilities.sum(axis=0), 1.0)


class TestFrapp:
    def test_structure(self):
        matrix = frapp_matrix(4, 7.0)
        assert matrix[0, 0] == pytest.approx(7.0 / 10.0)
        assert matrix[1, 0] == pytest.approx(1.0 / 10.0)

    def test_gamma_one_is_total_randomization(self):
        assert frapp_matrix(5, 1.0).isclose(total_randomization_matrix(5))

    def test_large_gamma_approaches_identity(self):
        matrix = frapp_matrix(5, 1e9)
        assert matrix.diagonal().min() > 0.999_999

    def test_rejects_non_positive_gamma(self):
        with pytest.raises(RRMatrixError):
            frapp_matrix(5, 0.0)
        with pytest.raises(RRMatrixError):
            frapp_matrix(5, -2.0)


class TestTheorem2Equivalence:
    """Theorem 2: the three families are reparameterisations of each other."""

    @pytest.mark.parametrize("q", [0.0, 0.2, 0.5, 0.8, 1.0])
    def test_up_equals_warner(self, q):
        n = 6
        p = warner_equivalent_p(n, q=q)
        assert uniform_perturbation_matrix(n, q).isclose(warner_matrix(n, p))

    @pytest.mark.parametrize("gamma", [1.0, 2.5, 10.0, 100.0])
    def test_frapp_equals_warner(self, gamma):
        n = 6
        p = warner_equivalent_p(n, gamma=gamma)
        assert frapp_matrix(n, gamma).isclose(warner_matrix(n, p))

    def test_equivalent_p_requires_exactly_one_parameter(self):
        with pytest.raises(RRMatrixError):
            warner_equivalent_p(5)
        with pytest.raises(RRMatrixError):
            warner_equivalent_p(5, q=0.5, gamma=2.0)
