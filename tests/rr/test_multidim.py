"""Tests for repro.rr.multidim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, RRMatrixError
from repro.rr.matrix import RRMatrix
from repro.rr.multidim import MultiDimensionalRR, joint_distribution_from_marginals
from repro.rr.schemes import warner_matrix


@pytest.fixture
def two_attribute_dataset(rng) -> CategoricalDataset:
    n = 5000
    return CategoricalDataset.from_columns(
        {
            "a": rng.choice(3, size=n, p=[0.5, 0.3, 0.2]),
            "b": rng.choice(2, size=n, p=[0.7, 0.3]),
        },
        {"a": ("a0", "a1", "a2"), "b": ("b0", "b1")},
    )


class TestConstruction:
    def test_valid(self):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        assert rr.domain_sizes == (3, 2)
        assert rr.joint_domain_size == 6

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            MultiDimensionalRR(("a",), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))

    def test_duplicate_names(self):
        with pytest.raises(DataError):
            MultiDimensionalRR(("a", "a"), (warner_matrix(3, 0.7), warner_matrix(3, 0.8)))


class TestJointMatrix:
    def test_kronecker_structure(self):
        m1, m2 = warner_matrix(2, 0.9), warner_matrix(2, 0.6)
        joint = MultiDimensionalRR(("a", "b"), (m1, m2)).joint_matrix()
        np.testing.assert_allclose(
            joint.probabilities, np.kron(m1.probabilities, m2.probabilities)
        )

    def test_joint_is_column_stochastic(self):
        joint = MultiDimensionalRR(
            ("a", "b"), (warner_matrix(3, 0.5), warner_matrix(4, 0.7))
        ).joint_matrix()
        np.testing.assert_allclose(joint.probabilities.sum(axis=0), 1.0)

    def test_refuses_huge_joint_domains(self):
        matrices = tuple(warner_matrix(20, 0.8) for _ in range(3))
        rr = MultiDimensionalRR(("a", "b", "c"), matrices)
        with pytest.raises(RRMatrixError, match="too large"):
            rr.joint_matrix()


class TestRandomizeAndEstimate:
    def test_randomize_both_attributes(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=0)
        assert disguised.n_records == two_attribute_dataset.n_records
        # With retention < 1 the columns should not be identical.
        assert not np.array_equal(disguised.column("a"), two_attribute_dataset.column("a"))

    def test_joint_estimation_recovers_joint_distribution(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=1)
        estimate = rr.estimate_joint_distribution(disguised)
        joint_codes = rr.encode_joint(two_attribute_dataset)
        truth = np.bincount(joint_codes, minlength=6) / two_attribute_dataset.n_records
        assert np.abs(estimate.probabilities - truth).max() < 0.05

    def test_marginal_estimation(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=2)
        marginals = rr.estimate_marginals(disguised)
        truth_a = two_attribute_dataset.distribution("a").probabilities
        assert np.abs(marginals["a"].probabilities - truth_a).max() < 0.05

    def test_unknown_method(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        with pytest.raises(DataError):
            rr.estimate_joint_distribution(two_attribute_dataset, method="magic")


class TestEncodeJoint:
    def test_mixed_radix_encoding(self):
        dataset = CategoricalDataset.from_columns(
            {"a": [0, 1, 2], "b": [1, 0, 1]},
            {"a": ("x", "y", "z"), "b": ("u", "v")},
        )
        rr = MultiDimensionalRR(("a", "b"), (RRMatrix.identity(3), RRMatrix.identity(2)))
        np.testing.assert_array_equal(rr.encode_joint(dataset), [1, 2, 5])


class TestJointFromMarginals:
    def test_outer_product(self):
        joint = joint_distribution_from_marginals([np.array([0.5, 0.5]), np.array([0.2, 0.8])])
        np.testing.assert_allclose(joint, [0.1, 0.4, 0.1, 0.4])
        assert joint.sum() == pytest.approx(1.0)

    def test_requires_at_least_one(self):
        with pytest.raises(DataError):
            joint_distribution_from_marginals([])


class TestConstructionEdgeCases:
    def test_requires_at_least_one_attribute(self):
        with pytest.raises(DataError, match="at least one"):
            MultiDimensionalRR((), ())

    def test_single_attribute_joint_is_the_matrix_itself(self):
        matrix = warner_matrix(3, 0.7)
        rr = MultiDimensionalRR(("a",), (matrix,))
        assert rr.joint_domain_size == 3
        np.testing.assert_allclose(rr.joint_matrix().probabilities, matrix.probabilities)


class TestEncodeJointValidation:
    def test_rejects_codes_outside_matrix_domain(self):
        dataset = CategoricalDataset.from_columns(
            {"a": [0, 2], "b": [0, 1]},
            {"a": ("x", "y", "z"), "b": ("u", "v")},
        )
        rr = MultiDimensionalRR(("a", "b"), (RRMatrix.identity(2), RRMatrix.identity(2)))
        with pytest.raises(DataError, match="outside the matrix domain"):
            rr.encode_joint(dataset)


class TestEstimationMethods:
    def test_iterative_joint_estimation(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=4)
        estimate = rr.estimate_joint_distribution(disguised, method="iterative")
        joint_codes = rr.encode_joint(two_attribute_dataset)
        truth = np.bincount(joint_codes, minlength=6) / two_attribute_dataset.n_records
        assert np.abs(estimate.probabilities - truth).max() < 0.05
        # The iterative (EM) estimator always lands on a simplex point.
        assert np.all(estimate.probabilities >= 0.0)
        assert estimate.probabilities.sum() == pytest.approx(1.0)

    def test_iterative_marginals(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=5)
        marginals = rr.estimate_marginals(disguised, method="iterative")
        truth_b = two_attribute_dataset.distribution("b").probabilities
        assert np.abs(marginals["b"].probabilities - truth_b).max() < 0.05

    def test_marginals_unknown_method(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        with pytest.raises(DataError, match="unknown estimation method"):
            rr.estimate_marginals(two_attribute_dataset, method="magic")


class TestRandomizeDeterminism:
    def test_same_seed_same_disguise(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        first = rr.randomize(two_attribute_dataset, seed=9)
        second = rr.randomize(two_attribute_dataset, seed=9)
        np.testing.assert_array_equal(first.column("a"), second.column("a"))
        np.testing.assert_array_equal(first.column("b"), second.column("b"))

    def test_untouched_attributes_survive(self, rng):
        dataset = CategoricalDataset.from_columns(
            {"a": rng.choice(3, size=100), "c": rng.choice(2, size=100)},
            {"a": ("x", "y", "z"), "c": ("u", "v")},
        )
        rr = MultiDimensionalRR(("a",), (warner_matrix(3, 0.6),))
        disguised = rr.randomize(dataset, seed=1)
        np.testing.assert_array_equal(disguised.column("c"), dataset.column("c"))


class TestJointFromMarginalsEdgeCases:
    def test_single_marginal_is_returned_as_is(self):
        marginal = np.array([0.3, 0.7])
        np.testing.assert_allclose(joint_distribution_from_marginals([marginal]), marginal)

    def test_three_way_product_sums_to_one(self):
        joint = joint_distribution_from_marginals(
            [np.array([0.5, 0.5]), np.array([0.2, 0.8]), np.array([0.9, 0.1])]
        )
        assert joint.shape == (8,)
        assert joint.sum() == pytest.approx(1.0)
