"""Tests for repro.rr.multidim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError, RRMatrixError
from repro.rr.matrix import RRMatrix
from repro.rr.multidim import MultiDimensionalRR, joint_distribution_from_marginals
from repro.rr.schemes import warner_matrix


@pytest.fixture
def two_attribute_dataset(rng) -> CategoricalDataset:
    n = 5000
    return CategoricalDataset.from_columns(
        {
            "a": rng.choice(3, size=n, p=[0.5, 0.3, 0.2]),
            "b": rng.choice(2, size=n, p=[0.7, 0.3]),
        },
        {"a": ("a0", "a1", "a2"), "b": ("b0", "b1")},
    )


class TestConstruction:
    def test_valid(self):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        assert rr.domain_sizes == (3, 2)
        assert rr.joint_domain_size == 6

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            MultiDimensionalRR(("a",), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))

    def test_duplicate_names(self):
        with pytest.raises(DataError):
            MultiDimensionalRR(("a", "a"), (warner_matrix(3, 0.7), warner_matrix(3, 0.8)))


class TestJointMatrix:
    def test_kronecker_structure(self):
        m1, m2 = warner_matrix(2, 0.9), warner_matrix(2, 0.6)
        joint = MultiDimensionalRR(("a", "b"), (m1, m2)).joint_matrix()
        np.testing.assert_allclose(
            joint.probabilities, np.kron(m1.probabilities, m2.probabilities)
        )

    def test_joint_is_column_stochastic(self):
        joint = MultiDimensionalRR(
            ("a", "b"), (warner_matrix(3, 0.5), warner_matrix(4, 0.7))
        ).joint_matrix()
        np.testing.assert_allclose(joint.probabilities.sum(axis=0), 1.0)

    def test_refuses_huge_joint_domains(self):
        matrices = tuple(warner_matrix(20, 0.8) for _ in range(3))
        rr = MultiDimensionalRR(("a", "b", "c"), matrices)
        with pytest.raises(RRMatrixError, match="too large"):
            rr.joint_matrix()


class TestRandomizeAndEstimate:
    def test_randomize_both_attributes(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=0)
        assert disguised.n_records == two_attribute_dataset.n_records
        # With retention < 1 the columns should not be identical.
        assert not np.array_equal(disguised.column("a"), two_attribute_dataset.column("a"))

    def test_joint_estimation_recovers_joint_distribution(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=1)
        estimate = rr.estimate_joint_distribution(disguised)
        joint_codes = rr.encode_joint(two_attribute_dataset)
        truth = np.bincount(joint_codes, minlength=6) / two_attribute_dataset.n_records
        assert np.abs(estimate.probabilities - truth).max() < 0.05

    def test_marginal_estimation(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        disguised = rr.randomize(two_attribute_dataset, seed=2)
        marginals = rr.estimate_marginals(disguised)
        truth_a = two_attribute_dataset.distribution("a").probabilities
        assert np.abs(marginals["a"].probabilities - truth_a).max() < 0.05

    def test_unknown_method(self, two_attribute_dataset):
        rr = MultiDimensionalRR(("a", "b"), (warner_matrix(3, 0.7), warner_matrix(2, 0.8)))
        with pytest.raises(DataError):
            rr.estimate_joint_distribution(two_attribute_dataset, method="magic")


class TestEncodeJoint:
    def test_mixed_radix_encoding(self):
        dataset = CategoricalDataset.from_columns(
            {"a": [0, 1, 2], "b": [1, 0, 1]},
            {"a": ("x", "y", "z"), "b": ("u", "v")},
        )
        rr = MultiDimensionalRR(("a", "b"), (RRMatrix.identity(3), RRMatrix.identity(2)))
        np.testing.assert_array_equal(rr.encode_joint(dataset), [1, 2, 5])


class TestJointFromMarginals:
    def test_outer_product(self):
        joint = joint_distribution_from_marginals([np.array([0.5, 0.5]), np.array([0.2, 0.8])])
        np.testing.assert_allclose(joint, [0.1, 0.4, 0.1, 0.4])
        assert joint.sum() == pytest.approx(1.0)

    def test_requires_at_least_one(self):
        with pytest.raises(DataError):
            joint_distribution_from_marginals([])
