"""Tests for repro.rr.matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RRMatrixError, SingularMatrixError
from repro.rr.matrix import RRMatrix, random_rr_matrix


class TestConstruction:
    def test_valid_matrix(self):
        matrix = RRMatrix(np.array([[0.7, 0.2], [0.3, 0.8]]))
        assert matrix.n_categories == 2
        assert matrix.shape == (2, 2)

    def test_rejects_non_stochastic_columns(self):
        with pytest.raises(RRMatrixError):
            RRMatrix(np.array([[0.7, 0.2], [0.4, 0.8]]))

    def test_rejects_rectangular(self):
        with pytest.raises(RRMatrixError):
            RRMatrix(np.ones((2, 3)) / 2)

    def test_rejects_negative_entries(self):
        with pytest.raises(RRMatrixError):
            RRMatrix(np.array([[1.2, 0.0], [-0.2, 1.0]]))

    def test_underlying_array_is_read_only(self):
        matrix = RRMatrix.identity(3)
        with pytest.raises(ValueError):
            matrix.probabilities[0, 0] = 0.5

    def test_from_rows(self):
        matrix = RRMatrix.from_rows([[0.9, 0.1], [0.1, 0.9]])
        assert matrix[0, 0] == pytest.approx(0.9)


class TestSpecialMatrices:
    def test_identity(self):
        matrix = RRMatrix.identity(4)
        np.testing.assert_allclose(matrix.probabilities, np.eye(4))

    def test_uniform(self):
        matrix = RRMatrix.uniform(4)
        np.testing.assert_allclose(matrix.probabilities, 0.25)

    def test_uniform_is_singular(self):
        assert not RRMatrix.uniform(3).is_invertible


class TestEqualityAndHash:
    def test_equal_matrices(self):
        a = RRMatrix.identity(3)
        b = RRMatrix.identity(3)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_matrices(self):
        assert RRMatrix.identity(3) != RRMatrix.uniform(3)

    def test_isclose(self):
        a = RRMatrix(np.array([[0.7, 0.3], [0.3, 0.7]]))
        b = RRMatrix(np.array([[0.7 + 1e-12, 0.3], [0.3 - 1e-12, 0.7]]))
        assert a.isclose(b)

    def test_isclose_different_sizes(self):
        assert not RRMatrix.identity(2).isclose(RRMatrix.identity(3))


class TestLinearAlgebra:
    def test_inverse_round_trip(self):
        matrix = RRMatrix(np.array([[0.8, 0.3], [0.2, 0.7]]))
        np.testing.assert_allclose(
            matrix.probabilities @ matrix.inverse(), np.eye(2), atol=1e-12
        )

    def test_inverse_is_cached(self):
        matrix = RRMatrix.identity(3)
        assert matrix.inverse() is matrix.inverse()

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            RRMatrix.uniform(3).inverse()

    def test_disguise_distribution(self, small_prior):
        matrix = RRMatrix.identity(4)
        np.testing.assert_allclose(
            matrix.disguise_distribution(small_prior.probabilities),
            small_prior.probabilities,
        )

    def test_disguise_distribution_shape_check(self):
        with pytest.raises(RRMatrixError):
            RRMatrix.identity(3).disguise_distribution(np.array([0.5, 0.5]))

    def test_disguised_distribution_sums_to_one(self, rng):
        matrix = random_rr_matrix(5, seed=rng)
        prior = rng.dirichlet(np.ones(5))
        assert matrix.disguise_distribution(prior).sum() == pytest.approx(1.0)


class TestColumnAccess:
    def test_column_is_copy(self):
        matrix = RRMatrix.identity(3)
        column = matrix.column(0)
        column[0] = 0.0
        assert matrix[0, 0] == 1.0

    def test_replace_column(self):
        matrix = RRMatrix.identity(3)
        updated = matrix.replace_column(0, np.array([0.5, 0.25, 0.25]))
        assert updated[0, 0] == pytest.approx(0.5)
        assert matrix[0, 0] == 1.0  # original unchanged

    def test_replace_column_validates(self):
        with pytest.raises(RRMatrixError):
            RRMatrix.identity(3).replace_column(0, np.array([0.9, 0.9, 0.9]))

    def test_diagonal(self):
        matrix = RRMatrix(np.array([[0.6, 0.5], [0.4, 0.5]]))
        np.testing.assert_allclose(matrix.diagonal(), [0.6, 0.5])


class TestRandomMatrix:
    def test_is_column_stochastic(self, rng):
        matrix = random_rr_matrix(6, seed=rng)
        np.testing.assert_allclose(matrix.probabilities.sum(axis=0), 1.0)

    def test_reproducible(self):
        a = random_rr_matrix(5, seed=42)
        b = random_rr_matrix(5, seed=42)
        assert a == b

    def test_diagonal_bias_moves_towards_identity(self):
        unbiased = random_rr_matrix(5, seed=0)
        biased = random_rr_matrix(5, seed=0, diagonal_bias=50.0)
        assert biased.diagonal().mean() > unbiased.diagonal().mean()

    def test_rejects_negative_bias(self):
        with pytest.raises(RRMatrixError):
            random_rr_matrix(5, diagonal_bias=-1.0)
