"""Tests for repro.rr.randomize."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import CategoricalDataset
from repro.data.synthetic import sample_dataset, uniform_distribution
from repro.exceptions import DataError, RRMatrixError
from repro.rr.matrix import RRMatrix
from repro.rr.randomize import RandomizedResponse, randomize_dataset
from repro.rr.schemes import warner_matrix


class TestRandomizeCodes:
    def test_identity_matrix_is_noop(self, rng):
        mechanism = RandomizedResponse(RRMatrix.identity(5))
        codes = rng.integers(0, 5, size=200)
        np.testing.assert_array_equal(mechanism.randomize_codes(codes, seed=rng), codes)

    def test_output_stays_in_domain(self, rng):
        mechanism = RandomizedResponse(warner_matrix(6, 0.4))
        codes = rng.integers(0, 6, size=1000)
        disguised = mechanism.randomize_codes(codes, seed=rng)
        assert disguised.min() >= 0 and disguised.max() < 6

    def test_reproducible_with_seed(self):
        mechanism = RandomizedResponse(warner_matrix(4, 0.5))
        codes = np.arange(4).repeat(25)
        first = mechanism.randomize_codes(codes, seed=9)
        second = mechanism.randomize_codes(codes, seed=9)
        np.testing.assert_array_equal(first, second)

    def test_empirical_retention_matches_p(self):
        p = 0.7
        mechanism = RandomizedResponse(warner_matrix(5, p))
        codes = np.zeros(100_000, dtype=np.int64)
        disguised = mechanism.randomize_codes(codes, seed=0)
        retention = np.mean(disguised == 0)
        assert retention == pytest.approx(p, abs=0.01)

    def test_disguised_distribution_matches_mp(self):
        prior = uniform_distribution(4)
        matrix = warner_matrix(4, 0.6)
        mechanism = RandomizedResponse(matrix)
        codes = prior.sample(200_000, seed=1)
        disguised = mechanism.randomize_codes(codes, seed=2)
        empirical = np.bincount(disguised, minlength=4) / disguised.size
        expected = mechanism.expected_disguised_distribution(prior.probabilities)
        np.testing.assert_allclose(empirical, expected, atol=0.01)

    def test_rejects_out_of_domain_codes(self):
        mechanism = RandomizedResponse(RRMatrix.identity(3))
        with pytest.raises(DataError):
            mechanism.randomize_codes(np.array([0, 5]))

    def test_rejects_empty_codes(self):
        mechanism = RandomizedResponse(RRMatrix.identity(3))
        with pytest.raises(DataError):
            mechanism.randomize_codes(np.array([], dtype=np.int64))

    def test_rejects_2d_codes(self):
        mechanism = RandomizedResponse(RRMatrix.identity(3))
        with pytest.raises(DataError):
            mechanism.randomize_codes(np.zeros((2, 2), dtype=np.int64))


class TestRandomizeAttribute:
    def test_returns_new_dataset(self):
        dataset = sample_dataset(uniform_distribution(5), 100, name="attr", seed=0)
        mechanism = RandomizedResponse(warner_matrix(5, 0.5))
        disguised = mechanism.randomize_attribute(dataset, "attr", seed=1)
        assert disguised is not dataset
        assert disguised.n_records == dataset.n_records

    def test_domain_mismatch_raises(self):
        dataset = sample_dataset(uniform_distribution(5), 50, name="attr", seed=0)
        mechanism = RandomizedResponse(warner_matrix(3, 0.5))
        with pytest.raises(RRMatrixError, match="categories"):
            mechanism.randomize_attribute(dataset, "attr")


class TestRandomizeDataset:
    def test_multiple_attributes(self):
        dataset = CategoricalDataset.from_columns(
            {"a": [0, 1, 2, 0, 1], "b": [1, 0, 1, 0, 1]},
            {"a": ("x", "y", "z"), "b": ("u", "v")},
        )
        matrices = {"a": warner_matrix(3, 0.6), "b": warner_matrix(2, 0.8)}
        disguised = randomize_dataset(dataset, matrices, seed=3)
        assert disguised.n_records == 5
        assert disguised.attribute_names == ("a", "b")

    def test_untouched_attributes_are_preserved(self):
        dataset = CategoricalDataset.from_columns(
            {"a": [0, 1, 2], "b": [1, 0, 1]},
            {"a": ("x", "y", "z"), "b": ("u", "v")},
        )
        disguised = randomize_dataset(dataset, {"a": warner_matrix(3, 0.5)}, seed=0)
        np.testing.assert_array_equal(disguised.column("b"), dataset.column("b"))
