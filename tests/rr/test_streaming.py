"""Tests for repro.rr.streaming — the streaming RR runtime.

The load-bearing invariants:

* chunked disguise output is **bit-identical** to one-shot
  ``randomize_codes`` for every chunk size, ragged tails included;
* the searchsorted disguise path equals the frozen broadcast reference
  (``repro.rr.reference``) on whatever the mechanism actually draws;
* accumulator/disguiser/estimator state survives a kill/restore round-trip
  through plain JSON with bit-identical continuations;
* warm-started online estimates converge to the batch estimate.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError, EstimationError, ValidationError
from repro.rr.estimation import IterativeEstimator, estimate_distribution
from repro.rr.matrix import RRMatrix, random_rr_matrix
from repro.rr.randomize import RandomizedResponse
from repro.rr.reference import broadcast_disguise_reference
from repro.rr.schemes import uniform_perturbation_matrix, warner_matrix
from repro.rr.streaming import (
    CountAccumulator,
    OnlineEstimator,
    StreamingDisguiser,
    iter_chunks,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestIterChunks:
    def test_covers_input_with_ragged_tail(self):
        codes = np.arange(10)
        chunks = list(iter_chunks(codes, 4))
        assert [chunk.size for chunk in chunks] == [4, 4, 2]
        np.testing.assert_array_equal(np.concatenate(chunks), codes)

    def test_chunks_are_views(self):
        codes = np.arange(10)
        chunk = next(iter_chunks(codes, 4))
        assert chunk.base is codes

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValidationError):
            list(iter_chunks(np.arange(3), 0))


class TestStreamingDisguiser:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 10),
        count=st.integers(1, 500),
        chunk_size=st.integers(1, 600),
    )
    @SETTINGS
    def test_chunked_equals_one_shot_bit_identical(self, seed, n, count, chunk_size):
        matrix = random_rr_matrix(n, seed=seed % 1_000)
        codes = np.random.default_rng(seed).integers(0, n, size=count)
        one_shot = RandomizedResponse(matrix).randomize_codes(codes, seed=seed)
        disguiser = StreamingDisguiser(matrix, seed=seed)
        streamed = np.concatenate(
            [disguiser.disguise_chunk(chunk) for chunk in iter_chunks(codes, chunk_size)]
        )
        np.testing.assert_array_equal(streamed, one_shot)
        assert disguiser.records_seen == count

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(2, 10))
    @SETTINGS
    def test_one_shot_equals_frozen_broadcast_reference(self, seed, n):
        # The mechanism's searchsorted path must equal the frozen (n, N)
        # broadcast on the exact uniforms the same seed draws.
        matrix = random_rr_matrix(n, seed=seed % 1_000)
        codes = np.random.default_rng(seed).integers(0, n, size=257)
        disguised = RandomizedResponse(matrix).randomize_codes(codes, seed=seed)
        uniforms = np.random.default_rng(seed).random(codes.size)
        expected = broadcast_disguise_reference(matrix.probabilities, codes, uniforms)
        np.testing.assert_array_equal(disguised, expected)

    def test_state_round_trip_is_bit_identical(self):
        matrix = warner_matrix(6, 0.7)
        codes = np.random.default_rng(3).integers(0, 6, size=4_000)
        chunks = list(iter_chunks(codes, 512))
        uninterrupted = StreamingDisguiser(matrix, seed=17)
        expected = [uninterrupted.disguise_chunk(chunk) for chunk in chunks]
        live = StreamingDisguiser(matrix, seed=17)
        for chunk in chunks[:3]:
            live.disguise_chunk(chunk)
        document = json.loads(json.dumps(live.state_document()))
        restored = StreamingDisguiser(matrix, seed=0)  # wrong seed on purpose
        restored.restore_state(document)
        assert restored.records_seen == live.records_seen
        for index, chunk in enumerate(chunks[3:], start=3):
            np.testing.assert_array_equal(
                restored.disguise_chunk(chunk), expected[index]
            )

    def test_restore_rejects_wrong_schema(self):
        disguiser = StreamingDisguiser(warner_matrix(3, 0.5), seed=0)
        with pytest.raises(ValidationError, match="schema"):
            disguiser.restore_state({"schema": "bogus-v9"})

    def test_rejects_out_of_domain_chunk(self):
        disguiser = StreamingDisguiser(RRMatrix.identity(3), seed=0)
        with pytest.raises(DataError):
            disguiser.disguise_chunk(np.array([0, 7]))


class TestCountAccumulator:
    def test_counts_match_bincount(self):
        accumulator = CountAccumulator(5)
        codes = np.random.default_rng(0).integers(0, 5, size=1_000)
        for chunk in iter_chunks(codes, 123):
            accumulator.update(chunk)
        np.testing.assert_array_equal(
            accumulator.counts, np.bincount(codes, minlength=5)
        )
        assert accumulator.n_records == 1_000

    def test_counts_property_is_a_copy(self):
        accumulator = CountAccumulator(3)
        accumulator.update(np.array([0, 1, 2]))
        snapshot = accumulator.counts
        snapshot[0] = 99
        assert accumulator.counts[0] == 1

    def test_state_survives_json_round_trip(self):
        accumulator = CountAccumulator(4)
        accumulator.update(np.array([0, 1, 1, 3]))
        document = json.loads(json.dumps(accumulator.state_document()))
        restored = CountAccumulator(4)
        restored.restore_state(document)
        np.testing.assert_array_equal(restored.counts, accumulator.counts)
        assert restored.n_records == accumulator.n_records

    def test_restore_rejects_wrong_length(self):
        accumulator = CountAccumulator(4)
        accumulator.update(np.array([0, 1]))
        document = accumulator.state_document()
        with pytest.raises(ValidationError, match="shape"):
            CountAccumulator(5).restore_state(document)

    def test_rejects_out_of_domain_codes(self):
        with pytest.raises(DataError):
            CountAccumulator(3).update(np.array([-1]))


class TestOnlineEstimator:
    def test_rejects_unknown_method(self):
        with pytest.raises(EstimationError, match="unknown estimation method"):
            OnlineEstimator(warner_matrix(3, 0.6), method="bogus")

    def test_current_estimate_requires_data(self):
        with pytest.raises(EstimationError, match="no records"):
            OnlineEstimator(warner_matrix(3, 0.6)).current_estimate()

    def test_inversion_matches_batch_exactly(self):
        # The inversion estimate is a pure function of the accumulated
        # counts, so the final online estimate equals the batch estimate bit
        # for bit.
        matrix = warner_matrix(5, 0.7)
        disguised = RandomizedResponse(matrix).randomize_codes(
            np.random.default_rng(1).integers(0, 5, size=20_000), seed=2
        )
        online = OnlineEstimator(matrix, method="inversion")
        for chunk in iter_chunks(disguised, 1_777):
            estimate = online.update(chunk)
        batch = estimate_distribution(disguised, matrix, method="inversion")
        np.testing.assert_array_equal(estimate.probabilities, batch.probabilities)
        np.testing.assert_array_equal(
            estimate.raw_probabilities, batch.raw_probabilities
        )

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(2, 8),
        chunk_size=st.integers(500, 4_000),
    )
    @SETTINGS
    def test_warm_started_iterative_converges_to_batch(self, seed, n, chunk_size):
        matrix = uniform_perturbation_matrix(n, 0.5)
        codes = np.random.default_rng(seed).integers(0, n, size=12_000)
        disguised = RandomizedResponse(matrix).randomize_codes(codes, seed=seed)
        online = OnlineEstimator(matrix, method="iterative")
        for chunk in iter_chunks(disguised, chunk_size):
            estimate = online.update(chunk)
        batch = estimate_distribution(disguised, matrix, method="iterative")
        assert estimate.converged and batch.converged
        # Both runs reach the same fixed point of the full-count update map,
        # each stopping within the 1e-9 L1 tolerance of it.
        np.testing.assert_allclose(
            estimate.probabilities, batch.probabilities, atol=1e-6
        )

    def test_warm_start_saves_iterations(self):
        matrix = uniform_perturbation_matrix(8, 0.4)
        disguised = RandomizedResponse(matrix).randomize_codes(
            np.random.default_rng(5).integers(0, 8, size=20_000), seed=6
        )
        warm = OnlineEstimator(matrix, method="iterative")
        for chunk in iter_chunks(disguised, 2_000):
            warm.update(chunk)
        diagnostics = warm.diagnostics
        assert [entry["chunk_index"] for entry in diagnostics] == list(range(10))
        assert all(entry["converged"] for entry in diagnostics)
        # Every warm-started refresh needs fewer iterations than the cold
        # first chunk.
        cold_iterations = diagnostics[0]["n_iterations"]
        assert all(
            entry["n_iterations"] < cold_iterations for entry in diagnostics[1:]
        )

    def test_kill_restore_round_trip_bit_identical_estimates(self):
        matrix = uniform_perturbation_matrix(6, 0.5)
        codes = np.random.default_rng(9).integers(0, 6, size=9_000)
        chunks = list(iter_chunks(codes, 1_000))

        def run(prefix_restore_at: int | None):
            disguiser = StreamingDisguiser(matrix, seed=21)
            online = OnlineEstimator(matrix, method="iterative")
            estimate = None
            for index, chunk in enumerate(chunks):
                if index == prefix_restore_at:
                    # Simulate a kill: serialize to JSON text, rebuild both
                    # objects from scratch, restore.
                    state = json.loads(
                        json.dumps(
                            {
                                "disguiser": disguiser.state_document(),
                                "estimator": online.state_document(),
                            }
                        )
                    )
                    disguiser = StreamingDisguiser(matrix, seed=0)
                    disguiser.restore_state(state["disguiser"])
                    online = OnlineEstimator(matrix, method="iterative")
                    online.restore_state(state["estimator"])
                estimate = online.update(disguiser.disguise_chunk(chunk))
            return estimate

        uninterrupted = run(None)
        resumed = run(5)
        np.testing.assert_array_equal(
            resumed.probabilities, uninterrupted.probabilities
        )
        np.testing.assert_array_equal(
            resumed.raw_probabilities, uninterrupted.raw_probabilities
        )
        assert resumed.n_iterations == uninterrupted.n_iterations

    def test_restore_rejects_method_mismatch(self):
        matrix = warner_matrix(3, 0.6)
        online = OnlineEstimator(matrix, method="inversion")
        online.update(np.array([0, 1, 2]))
        document = online.state_document()
        with pytest.raises(ValidationError, match="method"):
            OnlineEstimator(matrix, method="iterative").restore_state(document)

    def test_estimator_options_are_forwarded(self):
        matrix = uniform_perturbation_matrix(4, 0.5)
        online = OnlineEstimator(matrix, method="iterative", max_iterations=3)
        estimate = online.update(np.array([0, 1, 2, 3] * 50))
        assert estimate.n_iterations <= 3


class TestIterativeEstimatorWorkspaces:
    def test_shared_final_copy_is_detached_from_workspaces(self):
        # The estimate must not alias estimator-internal buffers: two calls
        # return independent arrays.
        matrix = uniform_perturbation_matrix(4, 0.5)
        estimator = IterativeEstimator()
        counts = np.array([40.0, 30.0, 20.0, 10.0])
        first = estimator.estimate(counts, matrix)
        second = estimator.estimate(counts + 1.0, matrix)
        assert first.probabilities is not second.probabilities
        assert not np.array_equal(first.probabilities, second.probabilities)

    def test_impossible_report_rows_still_zeroed(self):
        # A report row with zero probability everywhere must contribute
        # exactly zero weight (the np.where semantics the workspace version
        # must preserve).
        probabilities = np.array(
            [
                [0.0, 0.0, 0.0],
                [0.6, 0.7, 0.2],
                [0.4, 0.3, 0.8],
            ]
        )
        matrix = RRMatrix(probabilities)
        estimate = IterativeEstimator().estimate(
            np.array([0.0, 60.0, 40.0]), matrix
        )
        assert estimate.converged
        assert estimate.probabilities.sum() == pytest.approx(1.0)
