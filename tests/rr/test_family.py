"""Tests for repro.rr.family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.rr.family import (
    FrappFamily,
    UniformPerturbationFamily,
    WarnerFamily,
    family_names,
    scheme_family,
)


class TestWarnerFamily:
    def test_grid_covers_unit_interval(self):
        family = WarnerFamily(5)
        grid = family.parameter_grid(11)
        assert grid[0] == 0.0 and grid[-1] == 1.0
        assert grid.size == 11

    def test_matrices_materialisation(self):
        family = WarnerFamily(4)
        matrices = family.matrices(5)
        assert len(matrices) == 5
        assert matrices[-1].isclose(matrices[-1])  # all valid RRMatrix objects

    def test_default_sweep_matches_paper(self):
        family = WarnerFamily(3)
        assert len(list(family)) == 1001

    def test_name(self):
        assert WarnerFamily(3).name == "warner"


class TestUniformPerturbationFamily:
    def test_endpoints(self):
        family = UniformPerturbationFamily(4)
        matrices = family.matrices(3)
        np.testing.assert_allclose(matrices[0].probabilities, 0.25)
        np.testing.assert_allclose(matrices[-1].probabilities, np.eye(4))


class TestFrappFamily:
    def test_grid_is_positive(self):
        family = FrappFamily(5)
        grid = family.parameter_grid(10)
        assert np.all(grid > 0)

    def test_diagonal_spans_range(self):
        family = FrappFamily(5)
        matrices = family.matrices(50)
        diagonals = np.array([matrix[0, 0] for matrix in matrices])
        assert diagonals.min() == pytest.approx(1.0 / 5, abs=1e-6)
        assert diagonals.max() > 0.99


class TestSchemeFamilyLookup:
    def test_lookup_by_name(self):
        assert isinstance(scheme_family("warner", 4), WarnerFamily)
        assert isinstance(scheme_family("up", 4), UniformPerturbationFamily)
        assert isinstance(scheme_family("frapp", 4), FrappFamily)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(scheme_family("WARNER", 4), WarnerFamily)

    def test_unknown_family(self):
        with pytest.raises(ValidationError, match="unknown scheme family"):
            scheme_family("laplace", 4)

    def test_family_names(self):
        assert set(family_names()) == {"warner", "uniform-perturbation", "frapp"}

    def test_requires_two_categories(self):
        with pytest.raises(ValidationError):
            WarnerFamily(1)
