"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig4a" in output
        assert "thm2" in output


class TestSearchSpace:
    def test_prints_fact1_exponent(self, capsys):
        assert main(["search-space", "--categories", "10", "--grid", "100"]) == 0
        assert "10^126" in capsys.readouterr().out


class TestOptimize:
    def test_optimize_small_run(self, capsys):
        exit_code = main([
            "optimize",
            "--distribution", "normal",
            "--categories", "6",
            "--records", "2000",
            "--delta", "0.8",
            "--generations", "15",
            "--population", "12",
            "--seed", "1",
            "--plot",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "privacy range" in output
        assert "Pareto front" in output

    def test_optimize_adult_attribute(self, capsys):
        exit_code = main([
            "optimize",
            "--distribution", "adult:sex",
            "--records", "1000",
            "--generations", "10",
            "--population", "8",
        ])
        assert exit_code == 0
        assert "privacy range" in capsys.readouterr().out


class TestCompareSchemes:
    def test_prints_three_family_tables(self, capsys):
        assert main(["compare-schemes", "--categories", "5", "--records", "1000"]) == 0
        output = capsys.readouterr().out
        assert "warner" in output
        assert "frapp" in output
        assert "uniform-perturbation" in output


class TestRun:
    def test_run_fact1(self, capsys):
        assert main(["run", "fact1"]) == 0
        assert "1.98e126" in capsys.readouterr().out.replace("REPRODUCED] fact1: paper: ", "")

    def test_run_fig4a_small(self, capsys):
        exit_code = main([
            "run", "fig4a", "--generations", "30", "--population", "12", "--plot",
        ])
        output = capsys.readouterr().out
        assert "fig4a" in output
        assert exit_code in (0, 1)  # tiny budgets may legitimately diverge

    def test_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "does-not-exist"])


class TestArgumentErrors:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
