"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

#: Tiny optimizer budget for campaign CLI tests.
FAST_CAMPAIGN = ["--generations", "5", "--population", "8"]


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig4a" in output
        assert "thm2" in output


class TestSearchSpace:
    def test_prints_fact1_exponent(self, capsys):
        assert main(["search-space", "--categories", "10", "--grid", "100"]) == 0
        assert "10^126" in capsys.readouterr().out


class TestOptimize:
    def test_optimize_small_run(self, capsys):
        exit_code = main([
            "optimize",
            "--distribution", "normal",
            "--categories", "6",
            "--records", "2000",
            "--delta", "0.8",
            "--generations", "15",
            "--population", "12",
            "--seed", "1",
            "--plot",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "privacy range" in output
        assert "Pareto front" in output

    def test_optimize_adult_attribute(self, capsys):
        exit_code = main([
            "optimize",
            "--distribution", "adult:sex",
            "--records", "1000",
            "--generations", "10",
            "--population", "8",
        ])
        assert exit_code == 0
        assert "privacy range" in capsys.readouterr().out


class TestCompareSchemes:
    def test_prints_three_family_tables(self, capsys):
        assert main(["compare-schemes", "--categories", "5", "--records", "1000"]) == 0
        output = capsys.readouterr().out
        assert "warner" in output
        assert "frapp" in output
        assert "uniform-perturbation" in output


class TestRun:
    def test_run_fact1(self, capsys):
        assert main(["run", "fact1"]) == 0
        assert "1.98e126" in capsys.readouterr().out.replace("REPRODUCED] fact1: paper: ", "")

    def test_run_fig4a_small(self, capsys):
        exit_code = main([
            "run", "fig4a", "--generations", "30", "--population", "12", "--plot",
        ])
        output = capsys.readouterr().out
        assert "fig4a" in output
        assert exit_code in (0, 1)  # tiny budgets may legitimately diverge

    def test_unknown_experiment_exits_2_with_message(self, capsys):
        assert main(["run", "does-not-exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_rejected_override_exits_2_listing_accepted_keys(self, capsys):
        # thm2 does not take an optimizer budget; the error must name the
        # accepted keys instead of surfacing a raw TypeError.
        assert main(["run", "thm2", "--population", "8"]) == 2
        error = capsys.readouterr().err
        assert "does not accept" in error
        assert "n_categories" in error


class TestCampaign:
    def test_campaign_runs_and_writes_aggregate(self, capsys, tmp_path):
        output = tmp_path / "aggregate.json"
        exit_code = main([
            "campaign", "fact1", "fig4a",
            "--seeds", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--output", str(output),
            *FAST_CAMPAIGN,
        ])
        assert exit_code == 0
        stdout = capsys.readouterr().out
        assert "2 experiment(s) x 2 seed(s) = 4 run(s)" in stdout
        assert "fact1" in stdout
        assert "fig4a" in stdout
        document = json.loads(output.read_text())
        assert document["type"] == "campaign_aggregate"
        assert set(document["experiments"]) == {"fact1", "fig4a"}
        assert document["experiments"]["fig4a"]["seeds"] == [0, 1]

    def test_campaign_glob_patterns_expand(self, capsys):
        assert main(["campaign", "fig4[ab]", "--seeds", "1", *FAST_CAMPAIGN]) == 0
        stdout = capsys.readouterr().out
        assert "fig4a" in stdout
        assert "fig4b" in stdout

    def test_cached_rerun_is_byte_identical(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        arguments = ["campaign", "fact1", "--seeds", "2", "--cache-dir", cache]
        assert main(arguments + ["--output", str(first)]) == 0
        assert main(arguments + ["--jobs", "2", "--output", str(second)]) == 0
        assert "2 from cache" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()

    def test_unmatched_pattern_exits_2(self, capsys):
        assert main(["campaign", "fig9*", "--seeds", "1"]) == 2
        assert "matches no experiment" in capsys.readouterr().err

    def test_zero_seeds_exits_2(self, capsys):
        assert main(["campaign", "fact1", "--seeds", "0"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_zero_jobs_exits_2(self, capsys):
        assert main(["campaign", "fact1", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_missing_output_directory_fails_before_running(self, capsys, tmp_path):
        exit_code = main([
            "campaign", "fact1", "--seeds", "1",
            "--output", str(tmp_path / "nope" / "agg.json"),
        ])
        assert exit_code == 2
        error = capsys.readouterr().err
        assert "--output" in error

    def test_cache_dir_pointing_at_file_exits_2(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        exit_code = main([
            "campaign", "fact1", "--seeds", "1", "--cache-dir", str(blocker),
        ])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_cache_dir_nested_under_a_file_exits_2(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        exit_code = main([
            "campaign", "fact1", "--seeds", "1",
            "--cache-dir", str(blocker / "cache"),
        ])
        assert exit_code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_output_pointing_at_directory_exits_2(self, capsys, tmp_path):
        exit_code = main([
            "campaign", "fact1", "--seeds", "1", "--output", str(tmp_path),
        ])
        assert exit_code == 2
        assert "existing directory" in capsys.readouterr().err


class TestOptimizeOutput:
    def test_writes_loadable_front_document(self, capsys, tmp_path):
        output = tmp_path / "front.json"
        exit_code = main([
            "optimize", "--distribution", "normal", "--categories", "5",
            "--records", "1000", "--generations", "8", "--population", "8",
            "--output", str(output),
        ])
        assert exit_code == 0
        assert "front written to" in capsys.readouterr().out
        from repro.io import load_result

        result = load_result(output)
        assert len(result.points) > 0
        assert result.points[0].matrix.n_categories == 5

    def test_missing_output_directory_fails_before_running(self, capsys, tmp_path):
        exit_code = main([
            "optimize", "--distribution", "normal",
            "--output", str(tmp_path / "nope" / "front.json"),
        ])
        assert exit_code == 2
        assert "--output" in capsys.readouterr().err


#: Tiny pipeline workload shared by the CLI pipeline tests.
FAST_PIPELINE = ["--data", "adult:sex", "--records", "600"]


class TestPipeline:
    def test_runs_schemes_and_writes_aggregate(self, capsys, tmp_path):
        output = tmp_path / "aggregate.json"
        exit_code = main([
            "pipeline", *FAST_PIPELINE,
            "--schemes", "warner:0.8,warner:0.7",
            "--miners", "tree,rules,distribution",
            "--seeds", "0-1",
            "--output", str(output),
        ])
        assert exit_code == 0
        stdout = capsys.readouterr().out
        assert "2 scheme(s) x 2 seed(s) x 3 miner(s) = 12 cell(s)" in stdout
        assert "warner:0.8" in stdout
        document = json.loads(output.read_text())
        assert document["type"] == "pipeline_aggregate"
        assert document["seeds"] == [0, 1]
        assert [row["scheme"] for row in document["schemes"]] == [
            "warner:0.8", "warner:0.7",
        ]

    def test_result_document_written(self, capsys, tmp_path):
        result_path = tmp_path / "result.json"
        exit_code = main([
            "pipeline", *FAST_PIPELINE,
            "--schemes", "warner:0.8", "--miners", "distribution",
            "--seeds", "1", "--result", str(result_path),
        ])
        assert exit_code == 0
        document = json.loads(result_path.read_text())
        assert document["type"] == "pipeline_result"
        assert len(document["cells"]) == 1

    def test_byte_identical_across_jobs_and_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        third = tmp_path / "third.json"
        arguments = [
            "pipeline", *FAST_PIPELINE,
            "--schemes", "warner:0.8,warner:0.7", "--miners", "tree,rules",
            "--seeds", "0-1", "--cache-dir", cache,
        ]
        assert main(arguments + ["--jobs", "2", "--output", str(first)]) == 0
        assert main(arguments + ["--jobs", "1", "--output", str(second)]) == 0
        assert "8 from cache" in capsys.readouterr().out
        assert main([
            "pipeline", *FAST_PIPELINE,
            "--schemes", "warner:0.8,warner:0.7", "--miners", "tree,rules",
            "--seeds", "0-1", "--output", str(third),
        ]) == 0
        assert first.read_bytes() == second.read_bytes() == third.read_bytes()

    def test_front_document_feeds_the_pipeline(self, capsys, tmp_path):
        front = tmp_path / "front.json"
        assert main([
            "optimize", "--distribution", "adult:sex", "--records", "600",
            "--generations", "8", "--population", "8",
            "--output", str(front),
        ]) == 0
        exit_code = main([
            "pipeline", *FAST_PIPELINE,
            "--front", str(front), "--front-schemes", "2",
            "--miners", "distribution", "--seeds", "1",
        ])
        assert exit_code == 0
        assert "front[00]" in capsys.readouterr().out

    def test_schemes_or_front_required(self, capsys):
        assert main(["pipeline", *FAST_PIPELINE]) == 2
        assert "--schemes" in capsys.readouterr().err

    def test_unreadable_front_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "absent.json"
        assert main([
            "pipeline", *FAST_PIPELINE, "--front", str(missing),
        ]) == 2
        assert "--front" in capsys.readouterr().err

    def test_bad_seeds_exit_2(self, capsys):
        assert main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--seeds", "x",
        ]) == 2
        assert "seeds" in capsys.readouterr().err

    def test_unknown_miner_exits_2(self, capsys):
        assert main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--miners", "nope",
        ]) == 2
        assert "unknown miner" in capsys.readouterr().err

    def test_bad_scheme_exits_2(self, capsys):
        assert main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner",
        ]) == 2
        assert "family:parameter" in capsys.readouterr().err

    def test_conflicting_categories_exit_2(self, capsys):
        assert main([
            "pipeline", "--data", "adult:sex", "--categories", "10",
            "--schemes", "warner:0.8",
        ]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_miner_param_override_applies(self, capsys, tmp_path):
        result_path = tmp_path / "result.json"
        exit_code = main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--miners", "rules", "--seeds", "1",
            "--miner-param", "rules:min_support=0.2",
            "--result", str(result_path),
        ])
        assert exit_code == 0
        document = json.loads(result_path.read_text())
        assert document["miner_params"]["rules"]["min_support"] == 0.2

    def test_miner_param_accepts_documented_alias(self, capsys):
        exit_code = main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--miners", "dist", "--seeds", "1",
            "--miner-param", "dist:method=inversion",
        ])
        assert exit_code == 0

    def test_cell_time_estimation_error_exits_2(self, capsys):
        # The method value is only validated when the miner runs; the failure
        # must still surface as the documented exit-2 error, not a traceback.
        exit_code = main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--miners", "distribution", "--seeds", "1",
            "--miner-param", "distribution:method=nope",
        ])
        assert exit_code == 2
        assert "unknown estimation method" in capsys.readouterr().err

    def test_uncoercible_miner_param_value_exits_2(self, capsys):
        exit_code = main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--miners", "tree", "--miner-param", "tree:max_depth=abc",
        ])
        assert exit_code == 2
        assert "expects a" in capsys.readouterr().err

    def test_front_schemes_without_front_exits_2(self, capsys):
        exit_code = main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--front-schemes", "2",
        ])
        assert exit_code == 2
        assert "--front-schemes" in capsys.readouterr().err

    def test_malformed_miner_param_exits_2(self, capsys):
        assert main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--miner-param", "rules-min_support-0.2",
        ]) == 2
        assert "miner:key=value" in capsys.readouterr().err

    def test_missing_output_directory_fails_before_running(self, capsys, tmp_path):
        assert main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8",
            "--output", str(tmp_path / "nope" / "agg.json"),
        ]) == 2
        assert "--output" in capsys.readouterr().err

    def test_zero_jobs_exits_2(self, capsys):
        assert main([
            "pipeline", *FAST_PIPELINE, "--schemes", "warner:0.8", "--jobs", "0",
        ]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestAdultCategoriesResolution:
    def test_optimize_derives_categories_from_adult_attribute(self, capsys):
        exit_code = main([
            "optimize", "--distribution", "adult:sex",
            "--records", "500", "--generations", "5", "--population", "8",
        ])
        assert exit_code == 0
        assert "privacy range" in capsys.readouterr().out

    def test_optimize_accepts_matching_explicit_categories(self, capsys):
        exit_code = main([
            "optimize", "--distribution", "adult:sex", "--categories", "2",
            "--records", "500", "--generations", "5", "--population", "8",
        ])
        assert exit_code == 0

    def test_optimize_rejects_conflicting_categories(self, capsys):
        exit_code = main([
            "optimize", "--distribution", "adult:sex", "--categories", "10",
            "--records", "500", "--generations", "5", "--population", "8",
        ])
        assert exit_code == 2
        error = capsys.readouterr().err
        assert "--categories 10 conflicts" in error
        assert "'sex'" in error

    def test_compare_schemes_rejects_conflicting_categories(self, capsys):
        exit_code = main([
            "compare-schemes", "--distribution", "adult:sex",
            "--categories", "5", "--records", "500",
        ])
        assert exit_code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_compare_schemes_derives_categories(self, capsys):
        exit_code = main([
            "compare-schemes", "--distribution", "adult:sex", "--records", "500",
        ])
        assert exit_code == 0
        assert "warner" in capsys.readouterr().out

    def test_unknown_adult_attribute_exits_2(self, capsys):
        assert main(["optimize", "--distribution", "adult:nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestArgumentErrors:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


#: Tiny shared workload for checkpoint/resume CLI tests.
FAST_OPTIMIZE = [
    "optimize", "--distribution", "normal", "--categories", "6",
    "--records", "2000", "--population", "8", "--seed", "3",
]


class TestOptimizeCheckpointResume:
    def test_interrupted_resume_is_byte_identical(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        checkpoint = tmp_path / "ck.json"
        assert main(FAST_OPTIMIZE + ["--generations", "6", "--output", str(full)]) == 0
        # "Interrupted" run: a smaller budget with per-generation checkpoints.
        assert main(
            FAST_OPTIMIZE
            + ["--generations", "2", "--checkpoint", str(checkpoint),
               "--checkpoint-every", "1"]
        ) == 0
        assert checkpoint.is_file()
        # Resume extends the budget; the result must match the uninterrupted
        # run byte for byte.
        assert main(
            ["optimize", "--resume", str(checkpoint), "--generations", "6",
             "--output", str(resumed)]
        ) == 0
        assert full.read_bytes() == resumed.read_bytes()

    def test_resume_of_finished_run_replays_result(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        replay = tmp_path / "replay.json"
        checkpoint = tmp_path / "ck.json"
        assert main(
            FAST_OPTIMIZE
            + ["--generations", "4", "--checkpoint", str(checkpoint),
               "--checkpoint-every", "1", "--output", str(full)]
        ) == 0
        # Without a new budget, resume reproduces the finished run's result
        # from the checkpoint without recomputing any generations.
        assert main(
            ["optimize", "--resume", str(checkpoint), "--output", str(replay)]
        ) == 0
        assert full.read_bytes() == replay.read_bytes()

    def test_deadline_flag_accepts_run(self, tmp_path, capsys):
        output = tmp_path / "out.json"
        assert main(
            FAST_OPTIMIZE
            + ["--generations", "3", "--deadline", "9999", "--output", str(output)]
        ) == 0
        assert output.is_file()

    def test_checkpoint_every_requires_destination(self, capsys):
        assert main(FAST_OPTIMIZE + ["--generations", "2", "--checkpoint-every", "1"]) == 2
        assert "--checkpoint-every" in capsys.readouterr().err

    def test_checkpoint_every_must_be_positive(self, tmp_path, capsys):
        assert main(
            FAST_OPTIMIZE
            + ["--generations", "2", "--checkpoint", str(tmp_path / "c.json"),
               "--checkpoint-every", "0"]
        ) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_deadline_must_be_positive(self, capsys):
        assert main(FAST_OPTIMIZE + ["--generations", "2", "--deadline", "0"]) == 2
        assert "--deadline" in capsys.readouterr().err

    def test_resume_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["optimize", "--resume", str(tmp_path / "absent.json")]) == 2
        assert "cannot read --resume" in capsys.readouterr().err

    def test_resume_non_checkpoint_document_is_usage_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"type": "rr_matrix", "format_version": 1}))
        assert main(["optimize", "--resume", str(bogus)]) == 2
        assert "checkpoint" in capsys.readouterr().err


class TestRunCheckpointFlags:
    FAST_RUN = ["run", "fig4a", "--generations", "4", "--population", "8"]

    def test_checkpoint_dir_cleaned_after_success(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        code = main(self.FAST_RUN + ["--checkpoint-dir", str(parts)])
        assert code in (0, 1)  # reproduction verdict is budget-dependent
        assert not list(parts.glob("*.json"))

    def test_resume_alias_sets_checkpoint_dir(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        code = main(self.FAST_RUN + ["--resume", str(parts)])
        assert code in (0, 1)
        assert parts.is_dir()

    def test_checkpoint_every_requires_directory(self, capsys):
        assert main(self.FAST_RUN + ["--checkpoint-every", "2"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_deadline_flag(self, capsys):
        code = main(self.FAST_RUN + ["--deadline", "9999"])
        assert code in (0, 1)
