"""Batch/scalar equivalence properties of the vectorized evaluation engine.

The batch engine (`MatrixEvaluator.evaluate_batch`, the batched variation
operators and the array-level EMOO primitives) must agree with the scalar
reference implementations to 1e-12 across random, diagonally-biased and
singular matrices — these properties are what lets the optimizer switch to
the vectorized hot path without changing results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.operators import (
    _rebalance_column,
    _rebalance_columns_batch,
    column_crossover_batch,
    enforce_privacy_bound,
    enforce_privacy_bound_batch,
    proportional_column_mutation_batch,
)
from repro.data.distribution import CategoricalDistribution
from repro.emoo.dominance import pareto_ranks, pareto_ranks_reference
from repro.emoo.individual import Individual
from repro.metrics.evaluation import MatrixEvaluator
from repro.metrics.privacy import (
    adversary_accuracy,
    adversary_accuracy_batch,
    max_posterior,
    max_posterior_batch,
    posterior_matrix,
    posterior_tensor,
    privacy_score,
    privacy_score_batch,
)
from repro.rr.matrix import RRMatrix, random_rr_matrix, stack_matrices, unstack_matrices

TOLERANCE = 1e-12

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- strategies ---------------------------------------------------------------
@st.composite
def priors(draw, min_categories: int = 2, max_categories: int = 8):
    n = draw(st.integers(min_categories, max_categories))
    weights = draw(
        hnp.arrays(
            np.float64,
            n,
            elements=st.floats(0.05, 10.0, allow_nan=False, allow_infinity=False),
        )
    )
    return CategoricalDistribution.from_weights(weights)


def _near_singular_blend(rng: np.random.Generator, n: int, log10_t: float) -> RRMatrix:
    """A matrix whose last column is a ``10**log10_t``-blend away from the
    first — near-singular, landing around the condition limit for
    ``log10_t`` near -12 (the former 1-norm/2-norm divergence band)."""
    values = random_rr_matrix(n, seed=rng).as_array()
    t = 10.0 ** log10_t
    blended = (1.0 - t) * values[:, 0] + t * values[:, -1]
    values[:, -1] = blended / blended.sum()
    return RRMatrix(values)


@st.composite
def matrix_batches(draw, n: int, max_batch: int = 6):
    """A stack of random matrices mixing plain-random, diagonally-biased,
    singular (duplicated-column) and near-singular members — the regimes the
    batch engine must classify exactly like the scalar path."""
    batch_size = draw(st.integers(1, max_batch))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    matrices = []
    for index in range(batch_size):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            matrices.append(random_rr_matrix(n, seed=rng))
        elif kind == 1:
            bias = float(rng.uniform(1.0, 12.0))
            matrices.append(random_rr_matrix(n, seed=rng, diagonal_bias=bias))
        elif kind == 2:
            # Exactly singular: duplicate one column.
            values = random_rr_matrix(n, seed=rng).as_array()
            values[:, -1] = values[:, 0]
            matrices.append(RRMatrix(values))
        elif kind == 3:
            # Rank-one (uniform columns): singular for n >= 2.
            matrices.append(RRMatrix.uniform(n))
        else:
            # Near-singular, straddling the condition limit.
            log10_t = draw(st.floats(-14.0, -9.0))
            matrices.append(_near_singular_blend(rng, n, log10_t))
    return matrices


@st.composite
def priors_and_batches(draw):
    prior = draw(priors())
    return prior, draw(matrix_batches(prior.n_categories))


# -- evaluation engine ---------------------------------------------------------
class TestBatchEvaluationEquivalence:
    @SETTINGS
    @given(case=priors_and_batches(), n_records=st.integers(10, 100_000))
    def test_evaluate_batch_matches_scalar(self, case, n_records):
        prior, matrices = case
        evaluator = MatrixEvaluator(prior, n_records, delta=None)
        batch = evaluator.evaluate_batch(matrices)
        assert len(batch) == len(matrices)
        for index, matrix in enumerate(matrices):
            scalar = evaluator.evaluate_scalar(matrix)
            result = batch[index]
            assert result.invertible == scalar.invertible
            assert result.feasible == scalar.feasible
            assert result.privacy == pytest.approx(scalar.privacy, abs=TOLERANCE)
            assert result.max_posterior == pytest.approx(
                scalar.max_posterior, abs=TOLERANCE
            )
            if scalar.invertible:
                assert result.utility == pytest.approx(
                    scalar.utility, rel=TOLERANCE, abs=TOLERANCE
                )
            else:
                assert not np.isfinite(result.utility)

    @SETTINGS
    @given(case=priors_and_batches(), delta_offset=st.floats(0.01, 0.3))
    def test_feasibility_matches_scalar_with_delta(self, case, delta_offset):
        prior, matrices = case
        delta = min(0.999, prior.max_probability + delta_offset)
        evaluator = MatrixEvaluator(prior, 1000, delta=delta)
        batch = evaluator.evaluate_batch(matrices)
        for index, matrix in enumerate(matrices):
            assert batch[index].feasible == evaluator.evaluate_scalar(matrix).feasible

    @SETTINGS
    @given(case=priors_and_batches())
    def test_posterior_tensor_matches_posterior_matrix(self, case):
        prior, matrices = case
        stack = stack_matrices(matrices)
        tensor = posterior_tensor(stack, prior.probabilities)
        for index, matrix in enumerate(matrices):
            np.testing.assert_allclose(
                tensor[index],
                posterior_matrix(matrix, prior.probabilities),
                atol=TOLERANCE,
            )

    @SETTINGS
    @given(case=priors_and_batches())
    def test_batch_metric_helpers_match_scalar(self, case):
        prior, matrices = case
        stack = stack_matrices(matrices)
        accuracies = adversary_accuracy_batch(stack, prior.probabilities)
        privacies = privacy_score_batch(stack, prior.probabilities)
        posteriors = max_posterior_batch(stack, prior.probabilities)
        for index, matrix in enumerate(matrices):
            assert accuracies[index] == pytest.approx(
                adversary_accuracy(matrix, prior.probabilities), abs=TOLERANCE
            )
            assert privacies[index] == pytest.approx(
                privacy_score(matrix, prior.probabilities), abs=TOLERANCE
            )
            assert posteriors[index] == pytest.approx(
                max_posterior(matrix, prior.probabilities), abs=TOLERANCE
            )

    @SETTINGS
    @given(case=priors_and_batches())
    def test_scalar_evaluate_is_batch_of_one(self, case):
        """The public scalar API is a thin wrapper: identical to the batch."""
        prior, matrices = case
        evaluator = MatrixEvaluator(prior, 1000, delta=None)
        batch = evaluator.evaluate_batch(matrices)
        for index, matrix in enumerate(matrices):
            assert evaluator.evaluate(matrix) == batch[index]

    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 8),
        log10_t=st.floats(-13.5, -10.5),
    )
    def test_invertibility_agrees_in_the_former_divergence_band(self, seed, n, log10_t):
        """Regression for PR 1's wart: the batch path classified near-singular
        matrices by the 1-norm condition estimate while the scalar path used
        the SVD 2-norm, so the two could disagree in a band around the
        condition limit.  Classification is unified now — every public path
        must agree on invertibility for matrices inside that band."""
        rng = np.random.default_rng(seed)
        matrix = _near_singular_blend(rng, n, log10_t)
        prior = CategoricalDistribution(np.full(n, 1.0 / n))
        evaluator = MatrixEvaluator(prior, 1000, delta=None)
        batch = evaluator.evaluate_batch([matrix])
        assert evaluator.evaluate(matrix).invertible == batch[0].invertible
        assert evaluator.evaluate_scalar(matrix).invertible == batch[0].invertible
        assert matrix.is_invertible == batch[0].invertible


# -- variation operators -------------------------------------------------------
class TestBatchOperatorEquivalence:
    @SETTINGS
    @given(case=priors_and_batches(), delta_offset=st.floats(0.01, 0.3))
    def test_bound_repair_batch_matches_scalar(self, case, delta_offset):
        prior, matrices = case
        delta = min(0.999, prior.max_probability + delta_offset)
        stack = stack_matrices(matrices)
        repaired = enforce_privacy_bound_batch(stack, prior.probabilities, delta)
        for index, matrix in enumerate(matrices):
            reference = enforce_privacy_bound(matrix, prior.probabilities, delta)
            np.testing.assert_allclose(
                repaired[index], reference.probabilities, atol=TOLERANCE
            )

    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 8),
        batch_size=st.integers(1, 8),
    )
    def test_rebalance_batch_matches_scalar(self, seed, n, batch_size):
        rng = np.random.default_rng(seed)
        columns = rng.dirichlet(np.ones(n), size=batch_size)
        changed = rng.integers(0, n, size=batch_size)
        room_up = 1.0 - columns[np.arange(batch_size), changed]
        room_down = columns[np.arange(batch_size), changed]
        deltas = np.where(
            rng.integers(0, 2, size=batch_size).astype(bool),
            rng.uniform(0, 1, size=batch_size) * room_up,
            -rng.uniform(0, 1, size=batch_size) * room_down,
        )
        batch = _rebalance_columns_batch(columns, changed, deltas)
        for index in range(batch_size):
            reference = _rebalance_column(
                columns[index], int(changed[index]), float(deltas[index])
            )
            np.testing.assert_allclose(batch[index], reference, atol=TOLERANCE)

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 8), pairs=st.integers(1, 6))
    def test_crossover_batch_children_are_column_stochastic(self, seed, n, pairs):
        rng = np.random.default_rng(seed)
        first = stack_matrices([random_rr_matrix(n, seed=rng) for _ in range(pairs)])
        second = stack_matrices([random_rr_matrix(n, seed=rng) for _ in range(pairs)])
        child_a, child_b = column_crossover_batch(first, second, rng)
        for child in (child_a, child_b):
            np.testing.assert_allclose(child.sum(axis=1), 1.0, atol=1e-8)
            assert np.all(child >= -1e-12)
        # Every column of every child comes verbatim from one of its parents.
        for pair in range(pairs):
            for column in range(n):
                from_first = np.allclose(child_a[pair, :, column], first[pair, :, column])
                from_second = np.allclose(child_a[pair, :, column], second[pair, :, column])
                assert from_first or from_second

    @SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 8),
        batch_size=st.integers(1, 8),
        scale=st.floats(0.01, 1.0),
    )
    def test_mutation_batch_preserves_stochasticity(self, seed, n, batch_size, scale):
        rng = np.random.default_rng(seed)
        stack = stack_matrices([random_rr_matrix(n, seed=rng) for _ in range(batch_size)])
        mutated = proportional_column_mutation_batch(stack, rng, scale=scale)
        np.testing.assert_allclose(mutated.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(mutated >= -1e-12)
        assert np.all(mutated <= 1.0 + 1e-12)
        # At most one column differs per matrix (one mutation per matrix).
        for index in range(batch_size):
            changed_columns = [
                column
                for column in range(n)
                if not np.allclose(mutated[index, :, column], stack[index, :, column])
            ]
            assert len(changed_columns) <= 1

    def test_unstack_roundtrip(self):
        matrices = [random_rr_matrix(5, seed=index) for index in range(4)]
        assert unstack_matrices(stack_matrices(matrices)) == matrices


# -- EMOO primitives -----------------------------------------------------------
def _random_population(rng: np.random.Generator, size: int) -> list[Individual]:
    objectives = rng.normal(size=(size, 2))
    # Duplicate some rows so ties are exercised.
    if size >= 4:
        objectives[size // 2] = objectives[0]
    feasible = rng.random(size) < 0.8
    return [
        Individual(genome=None, objectives=objectives[index], feasible=bool(feasible[index]))
        for index in range(size)
    ]


class TestParetoRankEquivalence:
    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), size=st.integers(1, 60))
    def test_vectorized_ranks_match_reference_loop(self, seed, size):
        population = _random_population(np.random.default_rng(seed), size)
        reference = pareto_ranks_reference(population)
        vectorized = pareto_ranks(population)
        np.testing.assert_array_equal(vectorized, reference)
        for individual, rank in zip(population, vectorized):
            assert individual.rank == int(rank)

    def test_empty_population(self):
        assert pareto_ranks([]).size == 0
        assert pareto_ranks_reference([]).size == 0
