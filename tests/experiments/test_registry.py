"""Tests for the experiment registry and specifications."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import available_experiments, get_experiment
from repro.experiments.base import (
    ExperimentResult,
    ExperimentSpec,
    default_generations,
    default_population,
)
from repro.experiments.registry import find_experiments, register_experiment
from repro.experiments.runner import run_experiment


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        experiments = available_experiments()
        expected = {"fig4a", "fig4b", "fig4c", "fig4d", "fig5a", "fig5b", "fig5c", "fig5d",
                    "thm2", "fact1"}
        assert expected <= set(experiments)

    def test_get_experiment_returns_spec(self):
        spec = get_experiment("fig4a")
        assert spec.paper_artifact == "Figure 4(a)"
        assert spec.parameters["delta"] == 0.6

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("fact1")
        with pytest.raises(ExperimentError, match="already registered"):
            register_experiment(spec)

    def test_every_spec_has_claim_and_runner(self):
        for experiment_id in available_experiments():
            spec = get_experiment(experiment_id)
            assert spec.paper_claim
            assert spec.description
            assert callable(spec.runner)


class TestFindExperiments:
    def test_exact_ids_pass_through(self):
        assert find_experiments(["fig4a", "thm2"]) == ("fig4a", "thm2")

    def test_glob_expands_sorted(self):
        assert find_experiments(["fig4*"]) == ("fig4a", "fig4b", "fig4c", "fig4d")

    def test_duplicates_collapse_first_wins(self):
        assert find_experiments(["fig4a", "fig4*"]) == (
            "fig4a", "fig4b", "fig4c", "fig4d",
        )

    def test_unmatched_pattern_raises(self):
        with pytest.raises(ExperimentError, match="matches no experiment"):
            find_experiments(["fig9*"])


class TestOverrideValidation:
    def test_run_experiment_rejects_unknown_override(self):
        with pytest.raises(ExperimentError, match="accepted keys"):
            run_experiment("thm2", seed=0, population_size=8)

    def test_error_lists_accepted_keys(self):
        with pytest.raises(ExperimentError, match="'n_categories'"):
            run_experiment("fact1", seed=0, nonsense=True)

    def test_spec_run_validates_too(self):
        spec = get_experiment("fig4a")
        with pytest.raises(ExperimentError, match="does not accept"):
            spec.run(seed=0, delta=0.5)

    def test_front_comparison_specs_accept_budget_overrides(self):
        for experiment_id in ("fig4a", "fig5a", "fig5d"):
            spec = get_experiment(experiment_id)
            assert set(spec.accepted_overrides) == {
                "n_generations",
                "population_size",
                "low_fidelity_fraction",
            }

    def test_filter_overrides_keeps_only_accepted(self):
        spec = get_experiment("thm2")
        filtered = spec.filter_overrides({"n_categories": 6, "n_generations": 10})
        assert filtered == {"n_categories": 6}


class TestEnvironmentOverrides:
    def test_default_generations_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_GENERATIONS", raising=False)
        assert default_generations(123) == 123

    def test_default_generations_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GENERATIONS", "77")
        assert default_generations(123) == 77

    def test_default_generations_rejects_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_GENERATIONS", "-5")
        with pytest.raises(ValueError):
            default_generations()

    def test_default_population_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POPULATION", "12")
        assert default_population() == 12

    def test_default_population_rejects_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_POPULATION", "1")
        with pytest.raises(ValueError):
            default_population()


class TestExperimentResult:
    def test_summary_text_joins_lines(self):
        result = ExperimentResult("x", summary=("line one", "line two"))
        assert result.summary_text() == "line one\nline two"

    def test_spec_run_forwards_overrides(self):
        captured = {}

        def runner(*, seed=0, **overrides):
            captured.update(overrides, seed=seed)
            return ExperimentResult("custom")

        spec = ExperimentSpec(
            experiment_id="custom",
            paper_artifact="n/a",
            description="test",
            paper_claim="n/a",
            parameters={},
            runner=runner,
        )
        spec.run(seed=5, n_generations=3)
        assert captured == {"seed": 5, "n_generations": 3}
