"""Tests for the per-figure experiment runners (small optimization budgets).

These tests execute every paper experiment end to end with a reduced budget:
the goal is to verify the plumbing (fronts produced, metrics populated,
summaries formatted), not to reproduce the paper-quality fronts — the
benchmark harness does that with larger budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.common import (
    FrontComparisonWorkload,
    empirical_front_mse,
    optimize_front,
    run_front_comparison,
    warner_front,
)
from repro.experiments.factsheet import run_fact1
from repro.experiments.runner import run_experiment
from repro.experiments.theorem2 import run_theorem2
from repro.data.synthetic import normal_distribution

#: Reduced budget shared by all runner tests.
FAST = {"n_generations": 40, "population_size": 16}


class TestCommonHelpers:
    def test_optimize_front_returns_front_and_result(self, normal_prior):
        front, result = optimize_front(normal_prior, 10_000, 0.8, seed=1, **FAST)
        assert not front.is_empty
        assert result.n_generations == FAST["n_generations"]

    def test_warner_front_respects_bound(self, normal_prior):
        bounded = warner_front(normal_prior, 10_000, 0.7)
        unbounded = warner_front(normal_prior, 10_000, None)
        assert bounded.privacy_range[0] > unbounded.privacy_range[0]

    def test_empirical_front_mse_produces_positive_mse(self, normal_prior):
        front, _ = optimize_front(normal_prior, 5_000, 0.8, seed=0, **FAST)
        empirical = empirical_front_mse(front, normal_prior, 5_000, n_trials=1, seed=0)
        assert not empirical.is_empty
        assert np.all(empirical.utility_values() > 0)

    def test_run_front_comparison_structure(self):
        workload = FrontComparisonWorkload(
            experiment_id="unit-test",
            prior=normal_distribution(8),
            n_records=5_000,
            delta=0.8,
            paper_claim="test claim",
        )
        result = run_front_comparison(workload, seed=0, **FAST)
        assert isinstance(result, ExperimentResult)
        assert set(result.fronts) == {"optrr", "warner"}
        assert result.comparison is not None
        assert "optrr_min_privacy" in result.metrics
        assert result.summary


@pytest.mark.parametrize("experiment_id", ["fig4a", "fig4c", "fig5a", "fig5b"])
class TestFrontComparisonExperiments:
    def test_runs_and_produces_fronts(self, experiment_id):
        result = run_experiment(experiment_id, seed=0, **FAST)
        assert result.experiment_id == experiment_id
        assert not result.fronts["optrr"].is_empty
        assert not result.fronts["warner"].is_empty
        assert result.metrics["n_generations"] == FAST["n_generations"]
        assert "[REPRODUCED]" in result.summary[0] or "[DIVERGED]" in result.summary[0]


class TestFig5c:
    def test_adult_workload_runs(self):
        result = run_experiment("fig5c", seed=0, **FAST)
        assert result.fronts["optrr"].privacy_range[1] <= 1.0
        assert result.metrics["warner_min_privacy"] > 0


class TestFig5d:
    def test_iterative_estimator_experiment(self):
        result = run_experiment("fig5d", seed=0, **FAST)
        assert result.experiment_id == "fig5d"
        assert not result.fronts["optrr"].is_empty
        # The empirically re-measured utilities must be positive MSE values.
        assert np.all(result.fronts["optrr"].utility_values() > 0)


class TestTheorem2:
    def test_equivalence_is_reproduced(self):
        result = run_theorem2()
        assert result.reproduced
        assert result.metrics["max_matrix_gap"] < 1e-9
        assert set(result.fronts) == {"warner", "uniform-perturbation", "frapp"}

    def test_fronts_have_identical_shape(self):
        result = run_theorem2(n_categories=6)
        warner = result.fronts["warner"]
        up = result.fronts["uniform-perturbation"]
        assert abs(len(warner) - len(up)) <= 2


class TestFact1:
    def test_paper_value_reproduced(self):
        result = run_fact1()
        assert result.reproduced
        assert result.metrics["log10_combinations"] == pytest.approx(126.3, abs=0.1)

    def test_small_cases_exact(self):
        result = run_fact1()
        assert result.metrics["small_case_n2_d4"] == 25.0
        assert result.metrics["small_case_n3_d3"] == 1000.0
