"""Tests for the generic cached-grid executor."""

from __future__ import annotations

import json

import pytest

from repro.experiments.grid import DocumentCache, execute_grid


def _worker(payload):
    if payload.get("explode"):
        raise RuntimeError("boom")
    return {"type": "test_doc", "value": payload["value"] * 2}


def _parse(document):
    return int(document["value"])


class TestDocumentCache:
    def test_store_then_load(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.store_document("k1", {"type": "test_doc", "value": 4})
        assert cache.load_document("k1") == {"type": "test_doc", "value": 4}

    def test_miss_returns_none(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        assert cache.load_document("absent") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.path_for_key("k").write_text("{not json", encoding="utf-8")
        assert cache.load_document("k") is None

    def test_wrong_type_is_a_miss(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.path_for_key("k").write_text(json.dumps({"type": "other"}), encoding="utf-8")
        assert cache.load_document("k") is None

    def test_writes_are_canonical_json(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.store_document("k", {"b": 1, "a": 2, "type": "test_doc"})
        text = cache.path_for_key("k").read_text(encoding="utf-8")
        assert text == json.dumps({"b": 1, "a": 2, "type": "test_doc"},
                                  indent=2, sort_keys=True)


class TestExecuteGrid:
    def test_results_in_grid_order(self):
        payloads = [{"value": v} for v in (5, 1, 9)]
        outcomes = execute_grid(payloads, _worker, parse=_parse)
        assert [o.value for o in outcomes] == [10, 2, 18]
        assert all(not o.from_cache for o in outcomes)

    def test_parallel_matches_serial(self):
        payloads = [{"value": v} for v in range(6)]
        serial = execute_grid(payloads, _worker, parse=_parse, n_jobs=1)
        parallel = execute_grid(payloads, _worker, parse=_parse, n_jobs=2)
        assert [o.value for o in serial] == [o.value for o in parallel]

    def test_cache_replay(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        payloads = [{"value": v} for v in (1, 2)]
        keys = ["a", "b"]
        cold = execute_grid(payloads, _worker, parse=_parse, keys=keys, cache=cache)
        warm = execute_grid(payloads, _worker, parse=_parse, keys=keys, cache=cache)
        assert [o.from_cache for o in cold] == [False, False]
        assert [o.from_cache for o in warm] == [True, True]
        assert [o.value for o in warm] == [o.value for o in cold]

    def test_unparseable_cache_entry_reruns(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.store_document("a", {"type": "test_doc"})  # missing "value"
        outcomes = execute_grid(
            [{"value": 3}], _worker, parse=_parse, keys=["a"], cache=cache
        )
        assert outcomes[0].value == 6
        assert not outcomes[0].from_cache

    def test_cache_without_keys_rejected(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        with pytest.raises(ValueError, match="keys are required"):
            execute_grid([{"value": 1}], _worker, parse=_parse, cache=cache)

    def test_mismatched_key_count_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            execute_grid([{"value": 1}], _worker, parse=_parse, keys=["a", "b"])

    def test_worker_failure_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            execute_grid([{"value": 1, "explode": True}], _worker, parse=_parse)

    def test_progress_callback_sees_every_cell(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        execute_grid([{"value": 1}], _worker, parse=_parse, keys=["a"], cache=cache)
        seen = []
        execute_grid(
            [{"value": 1}, {"value": 2}], _worker, parse=_parse,
            keys=["a", "b"], cache=cache,
            on_task_done=lambda index, cached: seen.append((index, cached)),
        )
        assert sorted(seen) == [(0, True), (1, False)]
