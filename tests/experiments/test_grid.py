"""Tests for the generic cached-grid executor."""

from __future__ import annotations

import json

import pytest

from repro.experiments.grid import DocumentCache, execute_grid


def _worker(payload):
    if payload.get("explode"):
        raise RuntimeError("boom")
    return {"type": "test_doc", "value": payload["value"] * 2}


def _parse(document):
    return int(document["value"])


class TestDocumentCache:
    def test_store_then_load(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.store_document("k1", {"type": "test_doc", "value": 4})
        assert cache.load_document("k1") == {"type": "test_doc", "value": 4}

    def test_miss_returns_none(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        assert cache.load_document("absent") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.path_for_key("k").write_text("{not json", encoding="utf-8")
        assert cache.load_document("k") is None

    def test_wrong_type_is_a_miss(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.path_for_key("k").write_text(json.dumps({"type": "other"}), encoding="utf-8")
        assert cache.load_document("k") is None

    def test_writes_are_canonical_json(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.store_document("k", {"b": 1, "a": 2, "type": "test_doc"})
        text = cache.path_for_key("k").read_text(encoding="utf-8")
        assert text == json.dumps({"b": 1, "a": 2, "type": "test_doc"},
                                  indent=2, sort_keys=True)


class TestExecuteGrid:
    def test_results_in_grid_order(self):
        payloads = [{"value": v} for v in (5, 1, 9)]
        outcomes = execute_grid(payloads, _worker, parse=_parse)
        assert [o.value for o in outcomes] == [10, 2, 18]
        assert all(not o.from_cache for o in outcomes)

    def test_parallel_matches_serial(self):
        payloads = [{"value": v} for v in range(6)]
        serial = execute_grid(payloads, _worker, parse=_parse, n_jobs=1)
        parallel = execute_grid(payloads, _worker, parse=_parse, n_jobs=2)
        assert [o.value for o in serial] == [o.value for o in parallel]

    def test_cache_replay(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        payloads = [{"value": v} for v in (1, 2)]
        keys = ["a", "b"]
        cold = execute_grid(payloads, _worker, parse=_parse, keys=keys, cache=cache)
        warm = execute_grid(payloads, _worker, parse=_parse, keys=keys, cache=cache)
        assert [o.from_cache for o in cold] == [False, False]
        assert [o.from_cache for o in warm] == [True, True]
        assert [o.value for o in warm] == [o.value for o in cold]

    def test_unparseable_cache_entry_reruns(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        cache.store_document("a", {"type": "test_doc"})  # missing "value"
        outcomes = execute_grid(
            [{"value": 3}], _worker, parse=_parse, keys=["a"], cache=cache
        )
        assert outcomes[0].value == 6
        assert not outcomes[0].from_cache

    def test_cache_without_keys_rejected(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        with pytest.raises(ValueError, match="keys are required"):
            execute_grid([{"value": 1}], _worker, parse=_parse, cache=cache)

    def test_mismatched_key_count_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            execute_grid([{"value": 1}], _worker, parse=_parse, keys=["a", "b"])

    def test_worker_failure_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            execute_grid([{"value": 1, "explode": True}], _worker, parse=_parse)

    def test_progress_callback_sees_every_cell(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="test_doc")
        execute_grid([{"value": 1}], _worker, parse=_parse, keys=["a"], cache=cache)
        seen = []
        execute_grid(
            [{"value": 1}, {"value": 2}], _worker, parse=_parse,
            keys=["a", "b"], cache=cache,
            on_task_done=lambda index, cached: seen.append((index, cached)),
        )
        assert sorted(seen) == [(0, True), (1, False)]


# -- interrupted-cell resume ---------------------------------------------------
#: Module-level so the grid executor can pickle it by reference; configured
#: through the payload because worker processes share no state with the test.
def _optimizer_cell_worker(payload):
    """A grid cell that runs a real OptRR optimization — and optionally
    crashes after a fixed number of generations (simulating a kill)."""
    import numpy as np

    from repro.core.config import OptRRConfig
    from repro.core.optimizer import OptRROptimizer
    from repro.data.synthetic import normal_distribution
    from repro.io import result_to_dict

    optimizer = OptRROptimizer(
        normal_distribution(6),
        3000,
        OptRRConfig(
            population_size=8,
            archive_size=8,
            n_generations=int(payload["generations"]),
            delta=0.85,
            seed=int(payload["seed"]),
        ),
    )
    driver = optimizer.driver()
    executed = 0
    for _snapshot in driver.steps():
        executed += 1
        crash_after = payload.get("crash_after")
        if crash_after is not None and executed >= crash_after:
            raise RuntimeError("simulated mid-cell kill")
    result = driver.result()
    document = result_to_dict(result, include_optimal_set=True)
    document["type"] = "test_doc"
    document["value"] = executed  # generations executed in THIS attempt
    document["front_privacy"] = [float(p) for p in np.asarray(result.privacy_values())]
    return document


class TestInterruptedCellResume:
    """A cell killed mid-optimization resumes from its partial checkpoint on
    the next grid run — producing the byte-identical result document while
    re-executing only the remaining generations."""

    def test_cell_resumes_from_partial_checkpoint(self, tmp_path):
        cache = DocumentCache(tmp_path / "cache", document_type="test_doc")
        partial = tmp_path / "cache" / "partial"
        payload = {"generations": 6, "seed": 4}
        kwargs = dict(
            worker=_optimizer_cell_worker,
            parse=lambda document: document,
            keys=["cell-key"],
            cache=cache,
            checkpoint_dir=partial,
            checkpoint_every=1,
        )
        # Attempt 1 dies after 2 generations; the partial checkpoint survives.
        with pytest.raises(RuntimeError, match="simulated"):
            execute_grid([dict(payload, crash_after=2)], **kwargs)
        assert list(partial.glob("cell-key-*.json"))
        # Attempt 2 completes — running only the remaining generations.
        outcomes = execute_grid([payload], **kwargs)
        resumed = outcomes[0].document
        assert resumed["value"] == 6 - 2  # only generations 2..5 re-ran
        # Partials are cleaned up once the cell's result is safely cached.
        assert not list(partial.glob("cell-key-*.json"))
        # The resumed document matches an uninterrupted cold run bit for bit.
        uninterrupted = execute_grid(
            [payload],
            worker=_optimizer_cell_worker,
            parse=lambda document: document,
        )[0].document
        uninterrupted["value"] = resumed["value"]  # attempt-local by design
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            uninterrupted, sort_keys=True
        )

    def test_checkpointing_does_not_change_results(self, tmp_path):
        payload = {"generations": 4, "seed": 9}
        plain = execute_grid(
            [payload], worker=_optimizer_cell_worker, parse=lambda d: d
        )[0].document
        checkpointed = execute_grid(
            [payload],
            worker=_optimizer_cell_worker,
            parse=lambda d: d,
            checkpoint_dir=tmp_path / "partial",
            checkpoint_every=1,
        )[0].document
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            checkpointed, sort_keys=True
        )
