"""Tests for the campaign orchestration subsystem.

Budgets are kept tiny (a handful of generations on small populations): the
tests verify orchestration — grid planning, caching, parallel dispatch,
deterministic aggregation — not front quality.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.exceptions import ExperimentError
from repro.experiments.campaign import (
    CampaignCache,
    CampaignSpec,
    CampaignTask,
    plan_campaign,
    run_campaign,
)
from repro.io import experiment_result_to_dict
from repro.experiments.runner import run_experiment

#: Tiny budget shared by every campaign test.
FAST = {"n_generations": 5, "population_size": 8}


class TestPlanCampaign:
    def test_glob_and_id_resolution(self):
        spec = plan_campaign(["fig4a", "fact1"], [0, 1])
        assert spec.experiments == ("fig4a", "fact1")
        assert spec.seeds == (0, 1)

    def test_grid_order_is_experiments_outer_seeds_inner(self):
        spec = plan_campaign(["fig4a", "fact1"], [3, 7], FAST)
        cells = [(task.experiment_id, task.seed) for task in spec.tasks()]
        assert cells == [("fig4a", 3), ("fig4a", 7), ("fact1", 3), ("fact1", 7)]

    def test_overrides_filtered_per_experiment(self):
        spec = plan_campaign(["fig4a", "fact1"], [0], FAST)
        by_experiment = {task.experiment_id: task for task in spec.tasks()}
        # Unset budget keys the experiment accepts are materialized from the
        # environment-aware defaults so the cache key records the budget the
        # task actually ran under (here: the default low-fidelity fraction).
        assert dict(by_experiment["fig4a"].overrides) == {
            **FAST,
            "low_fidelity_fraction": 1.0,
        }
        assert by_experiment["fact1"].overrides == ()

    def test_override_unknown_everywhere_rejected(self):
        with pytest.raises(ExperimentError, match="not accepted by any"):
            plan_campaign(["fig4a"], [0], {"bogus_knob": 1})

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ExperimentError, match="at least one seed"):
            plan_campaign(["fig4a"], [])

    def test_unmatched_pattern_rejected(self):
        with pytest.raises(ExperimentError, match="matches no experiment"):
            plan_campaign(["nope*"], [0])


class TestCacheKeys:
    def test_distinct_across_grid_dimensions(self):
        base = CampaignTask("fig4a", 0, (("n_generations", 5),))
        assert base.cache_key() != CampaignTask("fig4b", 0, base.overrides).cache_key()
        assert base.cache_key() != CampaignTask("fig4a", 1, base.overrides).cache_key()
        assert base.cache_key() != CampaignTask("fig4a", 0, ()).cache_key()

    def test_stable_for_equal_tasks(self):
        task = CampaignTask("fig4a", 0, (("n_generations", 5),))
        assert task.cache_key() == CampaignTask("fig4a", 0, (("n_generations", 5),)).cache_key()

    def test_version_is_part_of_the_key(self, monkeypatch):
        task = CampaignTask("fig4a", 0)
        before = task.cache_key()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert task.cache_key() != before


class TestCampaignCache:
    def test_store_then_load_round_trips(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        task = CampaignTask("fact1", 0)
        result = run_experiment("fact1", seed=0)
        cache.store(task, experiment_result_to_dict(result))
        loaded = cache.load_result(task)
        assert loaded is not None
        assert loaded.metrics == dict(result.metrics)
        assert loaded.reproduced == result.reproduced

    def test_miss_returns_none(self, tmp_path):
        cache = CampaignCache(tmp_path)
        assert cache.load_result(CampaignTask("fact1", 123)) is None

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = CampaignCache(tmp_path)
        task = CampaignTask("fact1", 0)
        cache.path_for(task).write_text("{not json", encoding="utf-8")
        assert cache.load_result(task) is None

    def test_wrong_document_type_counts_as_miss(self, tmp_path):
        cache = CampaignCache(tmp_path)
        task = CampaignTask("fact1", 0)
        cache.path_for(task).write_text(json.dumps({"type": "rr_matrix"}), encoding="utf-8")
        assert cache.load_result(task) is None

    def test_structurally_invalid_entry_counts_as_miss(self, tmp_path):
        # Right type but missing required fields must re-run, not crash.
        cache = CampaignCache(tmp_path)
        task = CampaignTask("fact1", 0)
        cache.path_for(task).write_text(
            json.dumps({"type": "experiment_result", "format_version": 1}),
            encoding="utf-8",
        )
        assert cache.load_result(task) is None
        campaign = run_campaign(["fact1"], seeds=[0], cache_dir=tmp_path)
        assert campaign.n_cache_hits == 0


class TestRunCampaign:
    def test_records_follow_grid_order_and_aggregate(self):
        result = run_campaign(["fig4a", "fact1"], seeds=[0, 1], overrides=FAST)
        assert [(r.task.experiment_id, r.task.seed) for r in result.records] == [
            ("fig4a", 0), ("fig4a", 1), ("fact1", 0), ("fact1", 1),
        ]
        assert list(result.aggregates) == ["fig4a", "fact1"]
        assert result.aggregates["fig4a"].seeds == (0, 1)
        assert 0.0 <= result.aggregates["fig4a"].reproduction_rate <= 1.0
        assert result.n_cache_hits == 0

    def test_results_match_direct_run_experiment(self):
        campaign = run_campaign(["fact1"], seeds=[0], overrides=None)
        direct = run_experiment("fact1", seed=0)
        record = campaign.records[0]
        assert record.result.metrics == dict(direct.metrics)
        assert record.result.reproduced == direct.reproduced

    def test_second_run_hits_cache_and_matches(self, tmp_path):
        cold = run_campaign(["fig4a"], seeds=[0, 1], overrides=FAST, cache_dir=tmp_path)
        warm = run_campaign(["fig4a"], seeds=[0, 1], overrides=FAST, cache_dir=tmp_path)
        assert cold.n_cache_hits == 0
        assert warm.n_cache_hits == 2
        assert warm.aggregate_json() == cold.aggregate_json()

    def test_seed_extension_reuses_existing_entries(self, tmp_path):
        run_campaign(["fact1"], seeds=[0], cache_dir=tmp_path)
        extended = run_campaign(["fact1"], seeds=[0, 1], cache_dir=tmp_path)
        assert extended.n_cache_hits == 1

    def test_environment_budget_is_part_of_the_cache_key(self, monkeypatch, tmp_path):
        # REPRO_GENERATIONS/REPRO_POPULATION change the computed fronts, so a
        # budget change must miss the cache instead of replaying stale runs.
        monkeypatch.setenv("REPRO_GENERATIONS", "5")
        monkeypatch.setenv("REPRO_POPULATION", "8")
        first = run_campaign(["fig4a"], seeds=[0], cache_dir=tmp_path)
        monkeypatch.setenv("REPRO_GENERATIONS", "6")
        second = run_campaign(["fig4a"], seeds=[0], cache_dir=tmp_path)
        assert second.n_cache_hits == 0
        assert second.records[0].result.metrics["n_generations"] == 6.0
        replay = run_campaign(["fig4a"], seeds=[0], cache_dir=tmp_path)
        assert replay.n_cache_hits == 1
        assert first.records[0].result.metrics["n_generations"] == 5.0

    def test_explicit_override_equal_to_env_budget_shares_the_entry(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_GENERATIONS", "5")
        monkeypatch.setenv("REPRO_POPULATION", "8")
        run_campaign(["fig4a"], seeds=[0], cache_dir=tmp_path)
        monkeypatch.delenv("REPRO_GENERATIONS")
        monkeypatch.delenv("REPRO_POPULATION")
        explicit = run_campaign(
            ["fig4a"], seeds=[0],
            overrides={"n_generations": 5, "population_size": 8},
            cache_dir=tmp_path,
        )
        assert explicit.n_cache_hits == 1

    def test_progress_callback_sees_every_task(self):
        seen = []
        run_campaign(
            ["fact1"], seeds=[0, 1, 2],
            on_task_done=lambda task, cached: seen.append((task.seed, cached)),
        )
        assert sorted(seen) == [(0, False), (1, False), (2, False)]

    def test_requires_seeds_with_patterns(self):
        with pytest.raises(ExperimentError, match="seeds are required"):
            run_campaign(["fact1"])

    def test_rejects_seeds_or_overrides_alongside_a_spec(self):
        spec = plan_campaign(["fact1"], [0])
        with pytest.raises(ExperimentError, match="part of the CampaignSpec"):
            run_campaign(spec, seeds=[1])
        with pytest.raises(ExperimentError, match="part of the CampaignSpec"):
            run_campaign(spec, overrides={"n_generations": 5})


class TestCampaignDeterminism:
    """The acceptance property: byte-identical aggregates no matter how the
    campaign was executed (worker count, cache state)."""

    @pytest.fixture(scope="class")
    def spec(self) -> CampaignSpec:
        return plan_campaign(["fig4a", "thm2"], [0, 1], FAST)

    @pytest.fixture(scope="class")
    def serial_cold(self, spec):
        return run_campaign(spec, n_jobs=1)

    def test_parallel_matches_serial_byte_for_byte(self, spec, serial_cold):
        parallel = run_campaign(spec, n_jobs=2)
        assert parallel.aggregate_json() == serial_cold.aggregate_json()

    def test_cached_replay_matches_byte_for_byte(self, spec, serial_cold, tmp_path):
        warmup = run_campaign(spec, n_jobs=2, cache_dir=tmp_path)
        replay = run_campaign(spec, n_jobs=1, cache_dir=tmp_path)
        assert replay.n_cache_hits == len(spec.tasks())
        assert warmup.aggregate_json() == serial_cold.aggregate_json()
        assert replay.aggregate_json() == serial_cold.aggregate_json()
