"""Grammar and determinism tests for the fault-plan model."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)


class TestGrammar:
    def test_single_clause(self):
        plan = parse_fault_plan("error@cell:3")
        assert plan.seed == 0
        assert plan.specs == (FaultSpec(kind="error", site="cell", selector="3"),)

    def test_full_suffix_stack(self):
        plan = parse_fault_plan("oserror@cell:1*2=0.5%0.75")
        (spec,) = plan.specs
        assert spec == FaultSpec(
            kind="oserror", site="cell", selector="1",
            times=2, value=0.5, probability=0.75,
        )

    def test_seed_clause_and_multiple_specs(self):
        plan = parse_fault_plan("seed=7; crash@cell:0; hang@cell:2=30")
        assert plan.seed == 7
        assert [spec.kind for spec in plan.specs] == ["crash", "hang"]

    def test_every_cell_selector_with_probability(self):
        # The trailing ``*`` of ``cell:*`` is a selector, never an empty
        # times suffix — this clause must parse.
        (spec,) = parse_fault_plan("crash@cell:*%0.5").specs
        assert spec.selector == "*"
        assert spec.times is None
        assert spec.probability == 0.5

    def test_hang_defaults_to_effectively_forever(self):
        (spec,) = parse_fault_plan("hang@cell:0").specs
        assert spec.value == DEFAULT_HANG_SECONDS

    def test_file_site_for_checkpoint_truncation(self):
        (spec,) = parse_fault_plan("truncate-checkpoint@file:ck.json").specs
        assert spec.matches_file("ck.json")
        assert spec.matches_file("deep-ck.json")
        assert not spec.matches_file("other.json")

    def test_empty_text_is_an_empty_plan(self):
        assert parse_fault_plan("  ;  ") == FaultPlan()

    @pytest.mark.parametrize(
        "text",
        [
            "explode@cell:0",           # unknown kind
            "error@cell",               # no selector
            "error@socket:3",           # unknown site
            "error@cell:x",             # non-integer cell index
            "crash@file:ck.json",       # file site is truncate-only
            "error@cell:0*0",           # times < 1
            "error@cell:0%0",           # probability outside (0, 1]
            "error@cell:0%1.5",
            "seed=x",
        ],
    )
    def test_malformed_clauses_fail_loudly(self, text):
        with pytest.raises(ValidationError):
            parse_fault_plan(text)


class TestTargeting:
    def test_cell_index_and_wildcard(self):
        indexed = FaultSpec(kind="error", site="cell", selector="2")
        assert indexed.matches_cell(2)
        assert not indexed.matches_cell(3)
        wildcard = FaultSpec(kind="error", site="cell", selector="*")
        assert wildcard.matches_cell(0) and wildcard.matches_cell(99)

    def test_times_limits_attempts(self):
        spec = FaultSpec(kind="oserror", site="cell", selector="1", times=2)
        assert spec.fires(0, 1, 1)
        assert spec.fires(0, 1, 2)
        assert not spec.fires(0, 1, 3)

    def test_plan_selects_cell_faults_in_clause_order(self):
        plan = parse_fault_plan("hang@cell:1=5; oserror@cell:1; error@cell:2")
        assert [spec.kind for spec in plan.cell_faults(1, 1)] == ["hang", "oserror"]
        assert [spec.kind for spec in plan.cell_faults(2, 1)] == ["error"]
        assert plan.cell_faults(0, 1) == ()

    def test_corruption_kinds_do_not_fire_in_cell(self):
        plan = parse_fault_plan("corrupt-cache@cell:0; truncate-checkpoint@file:ck")
        assert plan.cell_faults(0, 1) == ()
        assert [s.kind for s in plan.cache_corruptions(0, 1)] == ["corrupt-cache"]
        assert [s.kind for s in plan.checkpoint_truncations("my-ck.json")] == [
            "truncate-checkpoint"
        ]


class TestSeededProbability:
    def test_draws_are_a_pure_function_of_coordinates(self):
        spec = FaultSpec(kind="error", site="cell", selector="*", probability=0.5)
        pattern = [spec.fires(3, index, 1) for index in range(64)]
        assert pattern == [spec.fires(3, index, 1) for index in range(64)]
        # The pattern is a genuine mix at p=0.5 over 64 cells.
        assert 0 < sum(pattern) < 64

    def test_seed_changes_the_pattern(self):
        spec = FaultSpec(kind="error", site="cell", selector="*", probability=0.5)
        a = [spec.fires(0, index, 1) for index in range(64)]
        b = [spec.fires(1, index, 1) for index in range(64)]
        assert a != b

    def test_kind_decorrelates_draws_at_the_same_coordinate(self):
        error = FaultSpec(kind="error", site="cell", selector="*", probability=0.5)
        crash = FaultSpec(kind="crash", site="cell", selector="*", probability=0.5)
        assert [error.fires(0, i, 1) for i in range(64)] != [
            crash.fires(0, i, 1) for i in range(64)
        ]
