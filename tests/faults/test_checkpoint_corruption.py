"""Corruption-tolerant checkpoint state: rotation, fallback, quarantine —
and the headline acceptance scenario: resume from a deliberately truncated
newest checkpoint recovers from the previous valid one bit-exactly."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import CheckpointCorruptionError
from repro.faults import fault_plan, parse_fault_plan
from repro.io import (
    checkpoint_quarantine_path,
    checkpoint_rotation_path,
    load_checkpoint,
    load_checkpoint_with_fallback,
    save_checkpoint,
)


def _document(generation: int) -> dict:
    return {
        "type": "checkpoint",
        "format_version": 1,
        "generation": generation,
    }


def _truncate(path) -> None:
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


class TestRotation:
    def test_second_save_rotates_the_first(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_document(1), path)
        assert not checkpoint_rotation_path(path).exists()
        save_checkpoint(_document(2), path)
        assert load_checkpoint(path)["generation"] == 2
        assert load_checkpoint(checkpoint_rotation_path(path))["generation"] == 1

    def test_injected_truncation_fires_on_save(self, tmp_path):
        path = tmp_path / "run-ck.json"
        with fault_plan(parse_fault_plan("truncate-checkpoint@file:run-ck")):
            save_checkpoint(_document(1), path)
        with pytest.raises(CheckpointCorruptionError, match="not decodable"):
            load_checkpoint(path)


class TestLoadDistinguishesCorruptFromMissing:
    def test_missing_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent.json")

    def test_undecodable_is_corruption(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_document(1), path)
        _truncate(path)
        with pytest.raises(CheckpointCorruptionError, match="not decodable"):
            load_checkpoint(path)

    def test_wrong_envelope_is_corruption(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"type": "something_else"}', encoding="utf-8")
        with pytest.raises(CheckpointCorruptionError, match="envelope"):
            load_checkpoint(path)


class TestFallback:
    def test_falls_back_to_rotation_and_quarantines_newest(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_document(1), path)
        save_checkpoint(_document(2), path)
        _truncate(path)
        document, loaded_from = load_checkpoint_with_fallback(path)
        assert document["generation"] == 1
        assert loaded_from == checkpoint_rotation_path(path)
        # The corrupt newest is parked for forensics, not deleted.
        assert checkpoint_quarantine_path(path).is_file()
        assert not path.exists()

    def test_valid_newest_wins(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_document(1), path)
        save_checkpoint(_document(2), path)
        document, loaded_from = load_checkpoint_with_fallback(path)
        assert document["generation"] == 2
        assert loaded_from == path

    def test_all_candidates_corrupt_raises_corruption(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_document(1), path)
        save_checkpoint(_document(2), path)
        _truncate(path)
        _truncate(checkpoint_rotation_path(path))
        with pytest.raises(CheckpointCorruptionError, match="both corrupt"):
            load_checkpoint_with_fallback(path)

    def test_no_candidates_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint_with_fallback(tmp_path / "absent.json")


#: Tiny optimizer workload shared by the resume acceptance tests.
FAST_OPTIMIZE = [
    "optimize", "--distribution", "normal", "--categories", "6",
    "--records", "2000", "--population", "8", "--seed", "3",
]


class TestTruncatedResumeAcceptance:
    def test_resume_from_truncated_newest_is_bit_exact(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        checkpoint = tmp_path / "ck.json"
        assert main(FAST_OPTIMIZE + ["--generations", "6", "--output", str(full)]) == 0
        # Interrupted run with per-generation checkpoints: ck.json is the
        # generation-3 snapshot, ck.json.prev the generation-2 one.
        assert main(
            FAST_OPTIMIZE
            + ["--generations", "3", "--checkpoint", str(checkpoint),
               "--checkpoint-every", "1"]
        ) == 0
        assert checkpoint_rotation_path(checkpoint).is_file()
        _truncate(checkpoint)
        # Resume quarantines the torn newest checkpoint, falls back to the
        # previous valid one, re-runs the lost generation — and still lands
        # on the byte-identical final result.
        assert main(
            ["optimize", "--resume", str(checkpoint), "--generations", "6",
             "--output", str(resumed)]
        ) == 0
        stderr = capsys.readouterr().err
        assert "ck.json.prev" in stderr
        assert full.read_bytes() == resumed.read_bytes()
        assert checkpoint_quarantine_path(checkpoint).is_file()

    def test_resume_with_both_candidates_corrupt_is_a_clean_error(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(
            FAST_OPTIMIZE
            + ["--generations", "3", "--checkpoint", str(checkpoint),
               "--checkpoint-every", "1"]
        ) == 0
        _truncate(checkpoint)
        _truncate(checkpoint_rotation_path(checkpoint))
        assert main(["optimize", "--resume", str(checkpoint)]) == 2
        assert "cannot read --resume" in capsys.readouterr().err
