"""Tests for the injection hooks themselves (activation, firing, no-ops)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import FaultInjectedError
from repro.faults import (
    FAULTS_ENVIRONMENT_VARIABLE,
    active_fault_plan,
    fault_plan,
    fire_cell_faults,
    install_fault_plan,
    parse_fault_plan,
)
from repro.faults.injector import corrupt_stored_document, truncate_checkpoint_file


class TestActivation:
    def test_no_plan_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENVIRONMENT_VARIABLE, raising=False)
        install_fault_plan(None)
        assert active_fault_plan() is None
        fire_cell_faults(0, 1)  # a no-op, not an error

    def test_environment_variable_activates(self, monkeypatch):
        install_fault_plan(None)
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "error@cell:5")
        plan = active_fault_plan()
        assert plan is not None
        assert plan.specs[0].selector == "5"
        # The parse is cached per text value and refreshed when it changes.
        assert active_fault_plan() is plan
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "error@cell:6")
        assert active_fault_plan().specs[0].selector == "6"

    def test_installed_plan_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "error@cell:1")
        with fault_plan(parse_fault_plan("error@cell:2")) as installed:
            assert active_fault_plan() is installed

    def test_context_manager_restores_previous_plan(self):
        install_fault_plan(None)
        with fault_plan(parse_fault_plan("error@cell:1")):
            pass
        assert active_fault_plan() is None


class TestCellFaults:
    def test_error_fault_raises_inside_the_cell(self):
        with fault_plan(parse_fault_plan("error@cell:3")):
            fire_cell_faults(2, 1)  # other cells untouched
            with pytest.raises(FaultInjectedError, match="cell 3 attempt 1"):
                fire_cell_faults(3, 1)

    def test_oserror_fault_is_a_real_oserror(self):
        with fault_plan(parse_fault_plan("oserror@cell:0*2")):
            with pytest.raises(OSError, match="injected transient"):
                fire_cell_faults(0, 1)
            with pytest.raises(OSError):
                fire_cell_faults(0, 2)
            fire_cell_faults(0, 3)  # transient: attempt 3 sails through


class TestCorruptionHooks:
    def test_stored_document_is_truncated_when_planned(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps({"value": list(range(50))}), encoding="utf-8")
        with fault_plan(parse_fault_plan("corrupt-cache@cell:4*1")):
            corrupt_stored_document(path, index=3, attempt=1)  # wrong cell
            json.loads(path.read_text(encoding="utf-8"))
            corrupt_stored_document(path, index=4, attempt=2)  # past times
            json.loads(path.read_text(encoding="utf-8"))
            corrupt_stored_document(path, index=4, attempt=1)
            with pytest.raises(ValueError):
                json.loads(path.read_text(encoding="utf-8"))

    def test_checkpoint_truncation_targets_by_name(self, tmp_path):
        target = tmp_path / "run-ck.json"
        other = tmp_path / "other.json"
        payload = json.dumps({"state": list(range(50))})
        target.write_text(payload, encoding="utf-8")
        other.write_text(payload, encoding="utf-8")
        with fault_plan(parse_fault_plan("truncate-checkpoint@file:run-ck")):
            truncate_checkpoint_file(target)
            truncate_checkpoint_file(other)
        with pytest.raises(ValueError):
            json.loads(target.read_text(encoding="utf-8"))
        json.loads(other.read_text(encoding="utf-8"))

    def test_hooks_are_inert_without_a_plan(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENVIRONMENT_VARIABLE, raising=False)
        install_fault_plan(None)
        path = tmp_path / "doc.json"
        path.write_text("{}", encoding="utf-8")
        corrupt_stored_document(path, 0, 1)
        truncate_checkpoint_file(path)
        assert path.read_text(encoding="utf-8") == "{}"
