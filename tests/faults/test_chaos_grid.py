"""Grid-level chaos: every fault class, single- and multi-worker.

Each scenario asserts the grid under faults produces results equal to the
fault-free run — resilience that changed the answer would be worse than no
resilience at all.  Worker functions are module-level so worker processes
can pickle them by reference.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import FaultInjectedError, GridCellError
from repro.experiments.grid import DocumentCache, RetryPolicy, run_grid
from repro.faults import FAULTS_ENVIRONMENT_VARIABLE, fault_plan, parse_fault_plan


def _worker(payload):
    return {"type": "chaos_doc", "value": payload["value"] * 2}


def _parse(document):
    return int(document["value"])


def _values(report):
    return [None if o is None else o.value for o in report.outcomes]


PAYLOADS = [{"value": v} for v in (5, 1, 9, 4)]
FAULT_FREE = [10, 2, 18, 8]


class TestTransientErrors:
    def test_oserror_retried_to_success_serial(self):
        with fault_plan(parse_fault_plan("oserror@cell:1*2")):
            report = run_grid(
                PAYLOADS, _worker, parse=_parse,
                policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
            )
        assert _values(report) == FAULT_FREE
        assert report.complete
        history = report.attempt_histories[1]
        assert [attempt.status for attempt in history] == ["error", "error", "ok"]
        assert "OSError" in history[0].error

    def test_oserror_retried_to_success_multiworker(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "oserror@cell:2*1")
        report = run_grid(
            PAYLOADS, _worker, parse=_parse, n_jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        assert _values(report) == FAULT_FREE
        assert [a.status for a in report.attempt_histories[2]] == ["error", "ok"]

    def test_exhausted_attempts_fail_fast_by_default(self):
        with fault_plan(parse_fault_plan("oserror@cell:0")):
            with pytest.raises(OSError, match="injected transient"):
                run_grid(
                    PAYLOADS, _worker, parse=_parse,
                    policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
                )

    def test_real_exception_type_propagates_from_worker_process(self, monkeypatch):
        # The worker's actual exception object crosses the process boundary.
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "error@cell:0")
        with pytest.raises(FaultInjectedError, match="cell 0"):
            run_grid(
                PAYLOADS, _worker, parse=_parse, n_jobs=2,
                policy=RetryPolicy(max_attempts=1),
            )


class TestQuarantine:
    def test_poison_cell_quarantined_with_keep_going(self):
        with fault_plan(parse_fault_plan("error@cell:2")):
            report = run_grid(
                PAYLOADS, _worker, parse=_parse,
                policy=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, keep_going=True
                ),
            )
        assert _values(report) == [10, 2, None, 8]
        assert not report.complete
        (failure,) = report.failures
        assert failure.index == 2
        assert "FaultInjectedError" in failure.message
        with pytest.raises(GridCellError, match="cell 2"):
            report.require_complete()

    def test_failure_manifest_structure(self):
        with fault_plan(parse_fault_plan("error@cell:2; oserror@cell:1*1")):
            report = run_grid(
                PAYLOADS, _worker, parse=_parse,
                policy=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, keep_going=True
                ),
            )
        manifest = report.failure_manifest(describe=lambda index: {"label": f"c{index}"})
        assert manifest["type"] == "failure_manifest"
        assert manifest["quarantined_cells"] == [2]
        by_index = {cell["index"]: cell for cell in manifest["cells"]}
        # Cell 1 recovered on retry: present in the manifest, not quarantined.
        assert by_index[1]["quarantined"] is False
        assert by_index[1]["label"] == "c1"
        assert [a["status"] for a in by_index[1]["attempts"]] == ["error", "ok"]
        assert by_index[2]["quarantined"] is True
        assert [a["status"] for a in by_index[2]["attempts"]] == ["error", "error"]

    def test_manifest_is_none_when_nothing_failed(self):
        report = run_grid(PAYLOADS, _worker, parse=_parse)
        assert report.failure_manifest() is None
        assert report.attempt_histories == {}


class TestCrashes:
    def test_crashed_worker_is_replaced_and_cell_retried(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "crash@cell:1*1")
        report = run_grid(
            PAYLOADS, _worker, parse=_parse, n_jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        assert _values(report) == FAULT_FREE
        assert [a.status for a in report.attempt_histories[1]] == ["crash", "ok"]

    def test_persistent_crash_quarantined_with_keep_going(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "crash@cell:0")
        report = run_grid(
            PAYLOADS, _worker, parse=_parse, n_jobs=2,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.0, keep_going=True),
        )
        assert _values(report) == [None, 2, 18, 8]
        (failure,) = report.failures
        assert failure.index == 0
        assert all(a.status == "crash" for a in failure.attempts)

    def test_persistent_crash_aborts_without_keep_going(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "crash@cell:0")
        with pytest.raises(GridCellError, match="cell 0"):
            run_grid(
                PAYLOADS, _worker, parse=_parse, n_jobs=2,
                policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )


class TestHangsAndTimeouts:
    def test_hung_cell_killed_and_retried(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "hang@cell:3*1=60")
        # cell_timeout forces process isolation even at n_jobs=1.
        report = run_grid(
            PAYLOADS, _worker, parse=_parse,
            policy=RetryPolicy(
                max_attempts=2, backoff_base=0.0, cell_timeout=0.5
            ),
        )
        assert _values(report) == FAULT_FREE
        history = report.attempt_histories[3]
        assert [a.status for a in history] == ["timeout", "ok"]
        assert "timeout" in history[0].error

    def test_persistent_hang_quarantined_with_keep_going(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "hang@cell:1=60")
        report = run_grid(
            PAYLOADS, _worker, parse=_parse, n_jobs=2,
            policy=RetryPolicy(
                max_attempts=1, cell_timeout=0.5, keep_going=True
            ),
        )
        assert _values(report) == [10, None, 18, 8]
        (failure,) = report.failures
        assert failure.attempts[-1].status == "timeout"


class TestCacheCorruption:
    def test_corrupted_store_quarantined_and_rerun(self, tmp_path):
        cache = DocumentCache(tmp_path, document_type="chaos_doc")
        keys = ["a", "b", "c", "d"]
        with fault_plan(parse_fault_plan("corrupt-cache@cell:0*1")):
            faulted = run_grid(PAYLOADS, _worker, parse=_parse, keys=keys, cache=cache)
        assert _values(faulted) == FAULT_FREE
        # The stored entry was corrupted after the store; the rerun must
        # quarantine it (preserving the evidence) and recompute the cell.
        rerun = run_grid(PAYLOADS, _worker, parse=_parse, keys=keys, cache=cache)
        assert _values(rerun) == FAULT_FREE
        assert [o.from_cache for o in rerun.outcomes] == [False, True, True, True]
        assert (tmp_path / "a.json.corrupt").is_file()
        # The fresh entry replaced the corrupt one; a third run replays it.
        replay = run_grid(PAYLOADS, _worker, parse=_parse, keys=keys, cache=cache)
        assert all(o.from_cache for o in replay.outcomes)
        assert _values(replay) == FAULT_FREE


class TestFaultFreeEquivalence:
    def test_resilience_policy_does_not_change_clean_results(self, tmp_path):
        plain = run_grid(PAYLOADS, _worker, parse=_parse)
        resilient = run_grid(
            PAYLOADS, _worker, parse=_parse,
            policy=RetryPolicy(max_attempts=3, cell_timeout=30.0, keep_going=True),
        )
        assert json.dumps([o.document for o in plain.outcomes], sort_keys=True) == \
            json.dumps([o.document for o in resilient.outcomes], sort_keys=True)
        assert resilient.failure_manifest() is None

    def test_faulted_run_caches_the_same_documents(self, tmp_path):
        keys = ["a", "b", "c", "d"]
        clean = DocumentCache(tmp_path / "clean", document_type="chaos_doc")
        run_grid(PAYLOADS, _worker, parse=_parse, keys=keys, cache=clean)
        chaotic = DocumentCache(tmp_path / "chaos", document_type="chaos_doc")
        with fault_plan(parse_fault_plan("oserror@cell:1*1; oserror@cell:3*1")):
            run_grid(
                PAYLOADS, _worker, parse=_parse, keys=keys, cache=chaotic,
                policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )
        for key in keys:
            assert clean.path_for_key(key).read_bytes() == \
                chaotic.path_for_key(key).read_bytes()
