"""End-to-end chaos for the orchestration layers (campaign, pipeline, CLI).

The headline acceptance scenario: a campaign with one persistently crashing
cell and one hanging cell completes all other cells, exits non-zero, and its
failure manifest names both quarantined cells.  Fault-free runs under the
resilience machinery stay byte-identical to plain runs.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.experiments.campaign import run_campaign
from repro.faults import FAULTS_ENVIRONMENT_VARIABLE, fault_plan, parse_fault_plan
from repro.pipeline import plan_pipeline, run_pipeline


class TestCampaignAcceptance:
    def test_poison_cells_quarantined_rest_completes(self, monkeypatch):
        # Grid order is experiments outer, seeds inner: fact1 seeds 0,1,2 are
        # cells 0,1,2.  Cell 0 crashes on every attempt, cell 1 hangs past
        # the timeout on every attempt, cell 2 is healthy.
        monkeypatch.setenv(
            FAULTS_ENVIRONMENT_VARIABLE, "crash@cell:0; hang@cell:1=60"
        )
        result = run_campaign(
            ["fact1"], seeds=[0, 1, 2], retries=1, cell_timeout=1.0,
        )
        assert not result.complete
        assert [(task.experiment_id, task.seed) for task in result.failures] == [
            ("fact1", 0), ("fact1", 1),
        ]
        # Every other cell completed and aggregated.
        assert [record.task.seed for record in result.records] == [2]
        assert "fact1" in result.aggregates
        manifest = result.failure_manifest
        assert manifest["quarantined_cells"] == [0, 1]
        by_index = {cell["index"]: cell for cell in manifest["cells"]}
        assert by_index[0]["experiment_id"] == "fact1" and by_index[0]["seed"] == 0
        assert [a["status"] for a in by_index[0]["attempts"]] == ["crash", "crash"]
        assert [a["status"] for a in by_index[1]["attempts"]] == ["timeout", "timeout"]
        # The manifest rides along in the aggregate document.
        assert result.aggregate_document()["failure_manifest"] == manifest

    def test_cli_exits_non_zero_and_names_both_cells(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv(
            FAULTS_ENVIRONMENT_VARIABLE, "crash@cell:0; hang@cell:1=60"
        )
        output = tmp_path / "aggregate.json"
        exit_code = main([
            "campaign", "fact1", "--seeds", "3",
            "--retries", "0", "--cell-timeout", "1",
            "--output", str(output),
        ])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "2 campaign cell(s) quarantined" in captured.err
        assert "cell 0 (experiment_id=fact1, seed=0)" in captured.err
        assert "cell 1 (experiment_id=fact1, seed=1)" in captured.err
        # Aggregates over the surviving cells were still written, manifest
        # included.
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["type"] == "campaign_aggregate"
        assert document["failure_manifest"]["quarantined_cells"] == [0, 1]

    def test_transient_fault_leaves_aggregates_identical(self, monkeypatch):
        clean = run_campaign(["fact1"], seeds=[0, 1])
        monkeypatch.setenv(FAULTS_ENVIRONMENT_VARIABLE, "oserror@cell:1*1")
        recovered = run_campaign(["fact1"], seeds=[0, 1], retries=1)
        assert recovered.complete
        # The retry restored the exact fault-free aggregates; the only trace
        # of the fault is the manifest recording the recovered attempt.
        faulted_document = recovered.aggregate_document()
        manifest = faulted_document.pop("failure_manifest")
        assert json.dumps(faulted_document, sort_keys=True) == \
            json.dumps(clean.aggregate_document(), sort_keys=True)
        assert manifest["quarantined_cells"] == []
        assert [a["status"] for a in manifest["cells"][0]["attempts"]] == ["error", "ok"]

    def test_fault_free_resilient_run_is_byte_identical(self):
        plain = run_campaign(["fact1"], seeds=[0, 1])
        resilient = run_campaign(
            ["fact1"], seeds=[0, 1], retries=3, cell_timeout=30.0, keep_going=True,
        )
        assert resilient.complete
        assert resilient.aggregate_json() == plain.aggregate_json()


#: Smallest meaningful pipeline: one scheme, one miner, two seeds.
FAST_PIPELINE = dict(
    schemes=["warner:0.8"], miners=["distribution"], seeds=[0, 1], n_records=2000,
)


class TestPipelineChaos:
    def test_poison_cell_quarantined_with_keep_going(self):
        spec = plan_pipeline("adult:education", **FAST_PIPELINE)
        with fault_plan(parse_fault_plan("error@cell:0")):
            result = run_pipeline(spec, keep_going=True)
        assert not result.complete
        assert result.failures == (("warner:0.8", 0, "distribution"),)
        assert result.failure_manifest["quarantined_cells"] == [0]
        # The healthy cell still mined.
        assert [cell.seed for cell in result.cells] == [1]
        assert result.aggregate_document()["failure_manifest"] is not None

    def test_transient_fault_recovers_to_identical_aggregates(self):
        spec = plan_pipeline("adult:education", **FAST_PIPELINE)
        clean = run_pipeline(spec)
        with fault_plan(parse_fault_plan("oserror@cell:1*1")):
            recovered = run_pipeline(spec, retries=1)
        assert recovered.complete
        document = recovered.aggregate_document()
        document.pop("failure_manifest")
        assert json.dumps(document, sort_keys=True) == \
            json.dumps(clean.aggregate_document(), sort_keys=True)
