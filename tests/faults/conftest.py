"""Shared isolation for the chaos suite.

Fault plans are process-global (an installed plan plus the ``REPRO_FAULTS``
environment variable that worker processes inherit); a leaked plan would
turn every later test into an accidental chaos test.  This guard restores
both after each test.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import injector


@pytest.fixture(autouse=True)
def _isolate_fault_state():
    installed = injector._INSTALLED
    env = os.environ.get(injector.FAULTS_ENVIRONMENT_VARIABLE)
    try:
        yield
    finally:
        injector.install_fault_plan(installed)
        if env is None:
            os.environ.pop(injector.FAULTS_ENVIRONMENT_VARIABLE, None)
        else:
            os.environ[injector.FAULTS_ENVIRONMENT_VARIABLE] = env
