"""End-to-end integration tests across the library's subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CategoricalDistribution,
    InversionEstimator,
    MatrixEvaluator,
    OptRRConfig,
    OptRROptimizer,
    ParetoFront,
    RandomizedResponse,
    compare_fronts,
    gamma_distribution,
    normal_distribution,
    sample_dataset,
    warner_matrix,
)
from repro.rr.family import WarnerFamily


class TestPublicApiSurface:
    def test_top_level_exports_exist(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing top-level export {name}"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestEndToEndDisguiseAndRecover:
    """The full RR workflow: optimize a matrix, disguise a dataset with it,
    recover the distribution, and verify privacy/utility guarantees."""

    def test_full_workflow(self):
        prior = gamma_distribution(8, alpha=1.0, beta=2.0)
        n_records = 20_000
        delta = 0.8

        # 1. Optimize RR matrices for this workload.
        config = OptRRConfig(
            population_size=24, archive_size=24, n_generations=60, delta=delta, seed=5
        )
        result = OptRROptimizer(prior, n_records, config).run()
        assert len(result) > 3

        # 2. Pick the most useful matrix achieving privacy >= 0.5.
        point = result.best_matrix_for_privacy(0.5)
        assert point.privacy >= 0.5
        assert point.max_posterior <= delta + 1e-6

        # 3. Disguise a sampled dataset with it.
        dataset = sample_dataset(prior, n_records, name="value", seed=1)
        mechanism = RandomizedResponse(point.matrix)
        disguised = mechanism.randomize_attribute(dataset, "value", seed=2)
        # The disguised column must differ substantially from the original.
        changed = np.mean(disguised.column("value") != dataset.column("value"))
        assert changed > 0.2

        # 4. Recover the original distribution from the disguised data.
        estimate = InversionEstimator().estimate_from_codes(
            disguised.column("value"), point.matrix
        )
        truth = dataset.distribution("value").probabilities
        observed_mse = float(np.mean((estimate.probabilities - truth) ** 2))
        # The observed error should be within an order of magnitude of the
        # closed-form prediction (Theorem 6) used as the utility objective.
        assert observed_mse < max(point.utility * 10, 1e-4)

    def test_optimized_matrix_beats_warner_at_same_privacy_level(self):
        prior = normal_distribution(10)
        n_records = 10_000
        delta = 0.75
        config = OptRRConfig(
            population_size=32, archive_size=32, n_generations=150, delta=delta, seed=11
        )
        result = OptRROptimizer(prior, n_records, config).run()
        optrr = ParetoFront.from_result("optrr", result)
        warner = ParetoFront.from_family(WarnerFamily(10), prior, n_records, delta=delta)
        comparison = compare_fronts(optrr, warner)
        # OptRR must not be dominated: it wins or ties almost everywhere and
        # reaches at least as low a privacy value.
        probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
        assert probes > 0
        assert comparison.candidate_wins + comparison.ties >= 0.7 * probes
        assert comparison.extra_privacy_range > -0.02


class TestEvaluatorConsistencyAcrossSubsystems:
    def test_front_point_metrics_match_fresh_evaluation(self, normal_prior):
        delta = 0.8
        config = OptRRConfig(
            population_size=16, archive_size=16, n_generations=30, delta=delta, seed=2
        )
        result = OptRROptimizer(normal_prior, 10_000, config).run()
        evaluator = MatrixEvaluator(normal_prior, 10_000, delta)
        for point in list(result)[::5]:
            evaluation = evaluator.evaluate(point.matrix)
            assert evaluation.privacy == pytest.approx(point.privacy, abs=1e-12)
            assert evaluation.utility == pytest.approx(point.utility, rel=1e-9)
            assert evaluation.feasible


class TestWarnerEndpointsSanity:
    def test_identity_and_uniform_are_the_extreme_points(self):
        """The paper's M1/M2 example: the identity matrix has zero privacy and
        the best possible utility, the uniform matrix has maximal privacy and
        the worst (undefined/infinite) utility."""
        prior = CategoricalDistribution(np.array([0.35, 0.3, 0.2, 0.15]))
        evaluator = MatrixEvaluator(prior, 1_000)
        identity = evaluator.evaluate(warner_matrix(4, 1.0))
        assert identity.privacy == pytest.approx(0.0)
        near_uniform = evaluator.evaluate(warner_matrix(4, 0.26))
        assert near_uniform.privacy > 0.6
        assert near_uniform.utility > identity.utility
