#!/usr/bin/env python
"""Perf-regression gate over the emitted ``BENCH_<name>.json`` trajectory.

Every benchmark writes a machine-readable ``BENCH_<name>.json`` (schema in
``docs/benchmarks.md``).  This checker compares the ``speedup`` field of the
freshly emitted records against the committed thresholds in
``benchmarks/perf_baseline.json`` and fails when any tracked op regresses
below its bar — the CI perf job runs the quick benchmark profiles first and
then this script.

Usage (from the repository root, after running the benchmarks)::

    python tools/check_perf.py [--baseline benchmarks/perf_baseline.json]
                               [--bench-dir .]

Exit code 0 when every tracked op meets its threshold, 1 otherwise (missing
BENCH files or ops count as failures: a benchmark that silently stopped
emitting must not turn the gate green).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_records(bench_dir: Path, name: str) -> dict[str, dict]:
    """Op -> record mapping of one BENCH_<name>.json file (empty if absent)."""
    path = bench_dir / f"BENCH_{name}.json"
    if not path.is_file():
        return {}
    document = json.loads(path.read_text())
    return {record["op"]: record for record in document.get("records", [])}


def check(baseline_path: Path, bench_dir: Path, only: list[str] | None = None) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures: list[str] = []
    print(f"perf gate: thresholds from {baseline_path}, records from {bench_dir}/")
    if only:
        unknown = sorted(set(only) - set(baseline))
        if unknown:
            print(
                f"perf gate FAILED: unknown --only section(s) {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 1
    for name, thresholds in baseline.items():
        if name.startswith("_"):
            continue
        if only and name not in only:
            continue
        records = load_records(bench_dir, name)
        if not records:
            failures.append(f"BENCH_{name}.json is missing or empty")
            continue
        for op, minimum in thresholds.items():
            record = records.get(op)
            if record is None:
                failures.append(f"{name}:{op}: no record emitted")
                continue
            speedup = record.get("speedup")
            if speedup is None:
                failures.append(f"{name}:{op}: record has no speedup field")
                continue
            verdict = "ok" if speedup >= minimum else "REGRESSION"
            print(
                f"  {name}:{op:24s} speedup {speedup:6.2f}x  "
                f"(required >= {minimum:.2f}x)  {verdict}"
            )
            if speedup < minimum:
                failures.append(
                    f"{name}:{op}: speedup {speedup:.2f}x below required {minimum:.2f}x"
                )
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/perf_baseline.json"),
        help="committed threshold file (default: benchmarks/perf_baseline.json)",
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=Path("."),
        help="directory holding the emitted BENCH_<name>.json files (default: .)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="check only this baseline section (repeatable); other sections' "
             "BENCH files need not exist — used by CI jobs that run a single "
             "benchmark",
    )
    arguments = parser.parse_args()
    return check(arguments.baseline, arguments.bench_dir, only=arguments.only)


if __name__ == "__main__":
    raise SystemExit(main())
