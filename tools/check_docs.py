#!/usr/bin/env python
"""Link and file-reference checker for the documentation suite.

Validates ``README.md`` and every ``docs/*.md`` file:

* **Markdown links** — every relative ``[text](target)`` must point at an
  existing file (anchors are stripped; external ``http(s)://`` links are
  skipped, since CI must not depend on the network).
* **File references** — every backticked path that looks like a repo file
  (``docs/pipeline.md``, ``benchmarks/bench_pipeline.py``,
  ``examples/quickstart.py``, ``src/repro/...``) must exist.  Paths in
  ``docs/paper_map.md`` are additionally resolved against ``src/repro/``
  (its table convention).
* **Module references** — every backticked dotted ``repro.*`` module name
  must be importable as a file under ``src/``.

Exit code 0 when everything resolves, 1 with a per-problem report otherwise.
Run from the repository root::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline link: [text](target)
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo-file reference: `docs/x.md`, `examples/y.py`, ...
FILE_REFERENCE_PATTERN = re.compile(
    r"`((?:docs|examples|benchmarks|tests|tools|src)/[A-Za-z0-9_./-]+?\.(?:md|py|toml|yml))`"
)

#: Backticked module reference: `repro.pipeline`, `repro.data.workload`, ...
MODULE_REFERENCE_PATTERN = re.compile(r"`(repro(?:\.[a-z_]+)+)`")

#: Backticked paper-map style source path: `rr/matrix.py`, `cli.py`, ...
SOURCE_PATH_PATTERN = re.compile(r"`([a-z_]+(?:/[a-z_]+)*\.py)`")


def _exists_as_module(dotted: str) -> bool:
    # Accept `repro.io.dump_canonical_json`-style references: the longest
    # resolvable dotted prefix names a module file, and the first tail
    # component must then appear in that module's source (a definition or
    # re-export) — otherwise any `repro.typo` would slip through on the
    # strength of the package prefix alone.
    parts = dotted.split(".")
    for length in range(len(parts), 0, -1):
        relative = Path("src", *parts[:length])
        module_file = (ROOT / relative).with_suffix(".py")
        package_init = ROOT / relative / "__init__.py"
        if module_file.is_file():
            source = module_file
        elif package_init.is_file():
            source = package_init
        else:
            continue
        tail = parts[length:]
        if not tail:
            return True
        pattern = rf"\b{re.escape(tail[0])}\b"
        return re.search(pattern, source.read_text(encoding="utf-8")) is not None
    return False


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    base = path.parent

    for match in LINK_PATTERN.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (base / target).exists() and not (ROOT / target).exists():
            problems.append(f"{path.relative_to(ROOT)}: broken link -> {target}")

    for match in FILE_REFERENCE_PATTERN.finditer(text):
        target = match.group(1)
        if not (ROOT / target).exists():
            problems.append(f"{path.relative_to(ROOT)}: missing file reference -> {target}")

    for match in MODULE_REFERENCE_PATTERN.finditer(text):
        dotted = match.group(1)
        if not _exists_as_module(dotted):
            problems.append(f"{path.relative_to(ROOT)}: unknown module -> {dotted}")

    if path.name == "paper_map.md":
        # Its tables reference implementation files relative to src/repro/;
        # bare names (`front.py` in an `analysis/` row) may live anywhere
        # under the package.
        for match in SOURCE_PATH_PATTERN.finditer(text):
            target = match.group(1)
            if (
                not (ROOT / "src" / "repro" / target).is_file()
                and not (ROOT / target).is_file()
                and not any((ROOT / "src" / "repro").rglob(target))
            ):
                problems.append(
                    f"{path.relative_to(ROOT)}: missing source reference -> {target}"
                )

    return problems


def main() -> int:
    documents = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    problems: list[str] = []
    for document in documents:
        problems.extend(check_file(document))
    if problems:
        print(f"{len(problems)} documentation problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"checked {len(documents)} document(s): all links and references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
