#!/usr/bin/env python
"""Profile the OptRR generation loop and print its hotspots.

The entry point future perf PRs start from: runs ``OptRROptimizer.run()``
(or the frozen pre-PR reference loop) under ``cProfile`` at a configurable
population/generation budget and prints wall time plus the top generation-
loop hotspots.

Usage (from the repository root)::

    PYTHONPATH=src python tools/profile_opt.py --population 200 --generations 50
    PYTHONPATH=src python tools/profile_opt.py --engine reference --top 15
    PYTHONPATH=src python tools/profile_opt.py --sort cumulative
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--population", type=int, default=40, help="population/archive size")
    parser.add_argument("--generations", type=int, default=50, help="generation budget")
    parser.add_argument("--categories", type=int, default=10, help="domain size n")
    parser.add_argument("--records", type=int, default=10_000, help="dataset size N")
    parser.add_argument("--delta", type=float, default=0.8, help="privacy bound (0 disables)")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument(
        "--engine",
        choices=("array", "reference"),
        default="array",
        help="array = the SoA loop; reference = the frozen pre-PR list loop",
    )
    parser.add_argument("--top", type=int, default=20, help="number of hotspots to print")
    parser.add_argument(
        "--sort",
        choices=("tottime", "cumulative", "ncalls"),
        default="tottime",
        help="pstats sort key",
    )
    arguments = parser.parse_args()

    from repro.core.config import OptRRConfig
    from repro.core.optimizer import OptRROptimizer
    from repro.core.reference import reference_optrr_run
    from repro.data.synthetic import normal_distribution

    prior = normal_distribution(arguments.categories)
    config = OptRRConfig(
        population_size=arguments.population,
        archive_size=arguments.population,
        n_generations=arguments.generations,
        delta=arguments.delta or None,
        seed=arguments.seed,
    )

    if arguments.engine == "array":
        runner = lambda: OptRROptimizer(prior, arguments.records, config).run()  # noqa: E731
    else:
        runner = lambda: reference_optrr_run(prior, arguments.records, config)  # noqa: E731

    # Untraced wall-clock first (the profiler roughly doubles the runtime).
    start = time.perf_counter()
    result = runner()
    wall = time.perf_counter() - start
    print(
        f"{arguments.engine} engine: n={arguments.categories}, "
        f"population={arguments.population}, generations={arguments.generations}, "
        f"delta={arguments.delta}"
    )
    print(
        f"wall time {wall:.3f} s  ({result.n_evaluations} evaluations, "
        f"front size {len(result)})"
    )
    print()

    profile = cProfile.Profile()
    profile.enable()
    runner()
    profile.disable()
    stats = pstats.Stats(profile)
    stats.sort_stats(arguments.sort).print_stats(arguments.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
