#!/usr/bin/env python
"""repro-lint entry point: AST invariant analyzer for the repo's contracts.

Thin wrapper around :mod:`repro.lintkit.runner` (also reachable as
``optrr lint``).  Run from the repository root::

    python tools/lint_repro.py                  # whole tree, committed baseline
    python tools/lint_repro.py src/repro/emoo   # a subtree
    python tools/lint_repro.py --list-rules
    python tools/lint_repro.py --write-baseline # snapshot current violations

Rule ids, the ``# repro-lint: allow[<rule>]`` pragma syntax and the
baseline workflow are documented in ``docs/invariants.md``.  CI runs this
with ``--forbid-baseline``, so committed baseline entries fail the gate.

Exit code 0 clean, 1 violations (or stale/unjustified/forbidden baseline
entries), 2 usage errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

if __name__ == "__main__":
    try:
        from repro.lintkit.runner import main
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.lintkit.runner import main
    raise SystemExit(main())
