"""Quickstart: optimize RR matrices for a categorical attribute.

This example walks through the core OptRR workflow end to end:

1. define the prior distribution of the sensitive attribute;
2. run the OptRR optimizer to obtain a set of Pareto-optimal RR matrices;
3. pick a matrix matching a privacy requirement;
4. disguise a dataset with it and reconstruct the original distribution.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    InversionEstimator,
    OptRRConfig,
    OptRROptimizer,
    RandomizedResponse,
    normal_distribution,
    sample_dataset,
)
from repro.analysis.front import ParetoFront
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import format_front_table


def main() -> None:
    # 1. The sensitive attribute has 10 categories whose probabilities follow
    #    a discretised normal distribution (the paper's synthetic workload).
    prior = normal_distribution(10)
    n_records = 10_000
    print("Prior distribution:", np.round(prior.probabilities, 3))

    # 2. Search for Pareto-optimal RR matrices under a worst-case privacy
    #    bound of delta = 0.8 (no posterior may exceed 0.8).
    config = OptRRConfig(
        population_size=40,
        archive_size=40,
        n_generations=200,
        delta=0.8,
        seed=42,
    )
    optimizer = OptRROptimizer(prior, n_records, config)
    result = optimizer.run()
    front = ParetoFront.from_result("optrr", result)
    print()
    print(format_front_table(front, max_rows=12))
    print()
    print(ascii_scatter([front], width=64, height=16))

    # 3. Pick the most useful matrix that still guarantees privacy >= 0.5.
    point = result.best_matrix_for_privacy(0.5)
    print()
    print(f"Chosen matrix: privacy={point.privacy:.3f}, "
          f"expected MSE={point.utility:.2e}, max posterior={point.max_posterior:.3f}")

    # 4. Disguise a sampled dataset and reconstruct the distribution.
    dataset = sample_dataset(prior, n_records, name="sensitive", seed=7)
    mechanism = RandomizedResponse(point.matrix)
    disguised = mechanism.randomize_attribute(dataset, "sensitive", seed=8)
    changed = np.mean(disguised.column("sensitive") != dataset.column("sensitive"))
    print(f"Fraction of records whose reported value changed: {changed:.1%}")

    estimate = InversionEstimator().estimate_from_codes(
        disguised.column("sensitive"), point.matrix
    )
    truth = dataset.distribution("sensitive").probabilities
    mse = float(np.mean((estimate.probabilities - truth) ** 2))
    print(f"Reconstruction MSE on this sample: {mse:.2e} "
          f"(closed-form prediction: {point.utility:.2e})")


if __name__ == "__main__":
    main()
