"""Privacy-preserving association mining on RR-disguised survey data.

A retailer surveys customers about income band, region and whether they
bought a product.  The income and region answers are sensitive and are
disguised on the respondent's device with OptRR-optimized matrices before
being submitted; the purchase flag is already known to the retailer.  The
analyst then mines frequent itemsets and association rules from the disguised
data by reconstructing the supports.

Run with::

    python examples/association_mining.py
"""

from __future__ import annotations

import numpy as np

from repro import OptRRConfig, OptRROptimizer
from repro.data.dataset import CategoricalDataset
from repro.data.distribution import CategoricalDistribution
from repro.mining.association import AssociationMiner
from repro.rr.randomize import randomize_dataset


def build_survey(n_records: int, seed: int) -> CategoricalDataset:
    """Synthesise survey responses with a planted income -> purchase pattern."""
    rng = np.random.default_rng(seed)
    income = rng.choice(3, size=n_records, p=[0.5, 0.3, 0.2])
    region = rng.choice(2, size=n_records, p=[0.6, 0.4])
    buy_probability = 0.15 + 0.35 * income + 0.05 * region
    buys = (rng.random(n_records) < buy_probability).astype(np.int64)
    return CategoricalDataset.from_columns(
        {"income": income, "region": region, "buys": buys},
        {
            "income": ("low", "mid", "high"),
            "region": ("north", "south"),
            "buys": ("no", "yes"),
        },
    )


def optimize_matrix(prior_weights, n_records: int, delta: float, seed: int):
    """Optimize an RR matrix for one attribute and pick a mid-privacy point."""
    prior = CategoricalDistribution.from_weights(np.asarray(prior_weights, dtype=float))
    config = OptRRConfig(
        population_size=30, archive_size=30, n_generations=150, delta=delta, seed=seed
    )
    result = OptRROptimizer(prior, n_records, config).run()
    low, high = result.privacy_range
    return result.best_matrix_for_privacy((low + high) / 2).matrix


def main() -> None:
    n_records = 20_000
    dataset = build_survey(n_records, seed=4)

    # Optimize one matrix per sensitive attribute (delta = 0.85).
    matrices = {
        "income": optimize_matrix([0.5, 0.3, 0.2], n_records, delta=0.85, seed=1),
        "region": optimize_matrix([0.6, 0.4], n_records, delta=0.85, seed=2),
    }
    disguised = randomize_dataset(dataset, matrices, seed=9)

    changed = {
        name: float(np.mean(disguised.column(name) != dataset.column(name)))
        for name in matrices
    }
    print("Fraction of responses changed by the disguise:",
          {name: f"{value:.1%}" for name, value in changed.items()})
    print()

    miner = AssociationMiner(matrices, min_support=0.08, min_confidence=0.55,
                             max_itemset_size=2)
    rules = miner.mine_rules(disguised, attributes=("income", "region", "buys"))

    print(f"Mined {len(rules)} rules from the disguised data "
          f"(min support 0.08, min confidence 0.55):")
    label_maps = {name: dataset.attribute(name).categories for name in dataset.attribute_names}
    for rule in rules[:10]:
        left = " & ".join(f"{a}={label_maps[a][v]}" for a, v in rule.antecedent)
        right = " & ".join(f"{a}={label_maps[a][v]}" for a, v in rule.consequent)
        print(f"  {left:32s} -> {right:14s} "
              f"support={rule.support:.3f} confidence={rule.confidence:.3f}")

    # Compare the headline rule's statistics against the undisguised truth.
    truth_support = float(np.mean(
        (dataset.column("income") == 2) & (dataset.column("buys") == 1)
    ))
    estimated = miner.itemset_support(disguised, [("income", 2), ("buys", 1)]).support
    print()
    print(f"support(income=high & buys=yes): true {truth_support:.3f}, "
          f"estimated from disguised data {estimated:.3f}")


if __name__ == "__main__":
    main()
