"""Privacy-preserving association mining on RR-disguised survey data.

An analyst wants association rules linking a sensitive survey attribute to
an outcome, but the attribute is disguised on the respondent's device before
submission.  This example optimizes RR matrices with OptRR, feeds the
resulting Pareto front into the end-to-end pipeline (``repro.pipeline``),
and reports how rule precision/recall and distribution reconstruction error
trade off against the privacy each front point provides.

Run with::

    python examples/association_mining.py
"""

from __future__ import annotations

from repro import OptRRConfig, OptRROptimizer
from repro.analysis.report import format_pipeline_table
from repro.data.workload import SENSITIVE_ATTRIBUTE, build_workload
from repro.pipeline import plan_pipeline, run_pipeline, schemes_from_front

DATA = "adult:sex"
N_RECORDS = 12_000


def main() -> None:
    # 1. Optimize RR matrices for the attribute's prior under a privacy
    #    bound (delta = 0.85: no posterior may exceed 0.85).
    workload = build_workload(DATA, N_RECORDS, seed=0)
    config = OptRRConfig(
        population_size=30, archive_size=30, n_generations=150, delta=0.85, seed=1
    )
    optimization = OptRROptimizer(workload.prior, N_RECORDS, config).run()
    low, high = optimization.privacy_range
    print(f"Optimized front: {len(optimization)} points, "
          f"privacy range [{low:.3f}, {high:.3f}]")

    # 2. Turn the front into pipeline schemes (thinned to three points) and
    #    mine association rules + distribution error through each of them.
    schemes = schemes_from_front(optimization, max_schemes=3)
    spec = plan_pipeline(
        DATA,
        schemes=schemes,
        miners=["rules", "distribution"],
        seeds=[0, 1],
        n_records=N_RECORDS,
        miner_options={"rules": {"min_support": 0.08, "min_confidence": 0.55}},
    )
    result = run_pipeline(spec, n_jobs=2)

    print()
    print("Rule-mining utility per optimized scheme (cross-seed mean +/- std):")
    print(format_pipeline_table(result.aggregate_document()))

    # 3. Drill into the cells: how many rules survived the harshest disguise?
    harshest = schemes[-1].name
    metrics = result.metrics_for(harshest, "rules", seed=0)
    print()
    print(f"Mined {metrics['n_rules']:.0f} rules through {harshest} "
          f"(clean data yields {metrics['n_clean_rules']:.0f}); "
          f"precision={metrics['precision']:.2f}, recall={metrics['recall']:.2f}")
    reconstruction = result.metrics_for(harshest, "distribution", seed=0)
    print(f"Reconstructed {SENSITIVE_ATTRIBUTE!r} distribution L1 error: "
          f"{reconstruction['l1_error']:.4f}")


if __name__ == "__main__":
    main()
