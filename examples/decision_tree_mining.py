"""Privacy-preserving decision-tree building on RR-disguised data.

Follows the Du & Zhan-style scenario from the paper's related work: build a
classifier for a survey outcome when the predictive attributes arrive only in
randomized (disguised) form.  The split criterion works on distributions
reconstructed with the inversion estimator rather than on raw counts.

Run with::

    python examples/decision_tree_mining.py
"""

from __future__ import annotations

import numpy as np

from repro import warner_matrix
from repro.data.dataset import CategoricalDataset
from repro.mining.decision_tree import DecisionTreeBuilder, DecisionTreeNode
from repro.rr.randomize import randomize_dataset


def build_dataset(n_records: int, seed: int) -> CategoricalDataset:
    """Synthetic loan-approval data: approval depends on income and savings."""
    rng = np.random.default_rng(seed)
    income = rng.choice(3, size=n_records, p=[0.4, 0.4, 0.2])          # low/mid/high
    savings = rng.choice(2, size=n_records, p=[0.65, 0.35])            # low/high
    employment = rng.choice(2, size=n_records, p=[0.7, 0.3])           # employed/self
    approve_probability = 0.1 + 0.3 * income + 0.25 * savings
    approved = (rng.random(n_records) < approve_probability).astype(np.int64)
    return CategoricalDataset.from_columns(
        {
            "income": income,
            "savings": savings,
            "employment": employment,
            "approved": approved,
        },
        {
            "income": ("low", "mid", "high"),
            "savings": ("low", "high"),
            "employment": ("employed", "self-employed"),
            "approved": ("no", "yes"),
        },
    )


def print_tree(node: DecisionTreeNode, dataset: CategoricalDataset, indent: str = "") -> None:
    """Pretty-print the reconstructed tree."""
    class_labels = dataset.attribute("approved").categories
    if node.is_leaf:
        distribution = ", ".join(
            f"{label}={probability:.2f}"
            for label, probability in zip(class_labels, node.class_distribution)
        )
        print(f"{indent}leaf -> predict {class_labels[node.predicted_class]!r} ({distribution})")
        return
    labels = dataset.attribute(node.split_attribute).categories
    print(f"{indent}split on {node.split_attribute!r}")
    for code, child in sorted(node.children.items()):
        print(f"{indent}  {node.split_attribute} = {labels[code]!r}:")
        print_tree(child, dataset, indent + "    ")


def main() -> None:
    n_records = 30_000
    dataset = build_dataset(n_records, seed=6)

    # The respondents disguise income and savings before submission.
    matrices = {
        "income": warner_matrix(3, 0.75),
        "savings": warner_matrix(2, 0.85),
    }
    disguised = randomize_dataset(dataset, matrices, seed=13)

    builder = DecisionTreeBuilder(
        matrices, class_attribute="approved", max_depth=3, min_information_gain=5e-3
    )
    tree = builder.build(disguised)

    print("Decision tree reconstructed from the disguised data:")
    print_tree(tree, dataset)
    print()

    # Evaluate predictions against the (undisguised) ground truth.
    names = dataset.attribute_names
    predictions = np.array([
        tree.predict_one(dict(zip(names, row))) for row in dataset.records
    ])
    truth = dataset.column("approved")
    accuracy = float(np.mean(predictions == truth))
    majority = float(max(np.mean(truth == 0), np.mean(truth == 1)))
    print(f"Accuracy on the original records: {accuracy:.3f} "
          f"(majority-class baseline: {majority:.3f})")


if __name__ == "__main__":
    main()
