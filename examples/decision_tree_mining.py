"""Privacy-preserving decision-tree building on RR-disguised data.

Follows the Du & Zhan-style scenario from the paper's related work: build a
classifier for a survey outcome when the predictive attribute arrives only in
randomized (disguised) form.  The split criterion works on distributions
reconstructed with the inversion estimator rather than on raw counts.

This example drives the scenario through the end-to-end pipeline API
(``repro.pipeline``): one declarative spec sweeps several disguise strengths,
fans out over seeds, and reports how tree accuracy degrades as privacy
rises.  It then drills into a single scheme to print the reconstructed tree.

Run with::

    python examples/decision_tree_mining.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_pipeline_table
from repro.data.workload import (
    CLASS_ATTRIBUTE,
    CONTEXT_ATTRIBUTE,
    SENSITIVE_ATTRIBUTE,
    build_workload,
)
from repro.mining.decision_tree import DecisionTreeBuilder, DecisionTreeNode
from repro.pipeline import disguise_workload, plan_pipeline, run_pipeline
from repro.rr.schemes import warner_matrix

DATA = "adult:education"
N_RECORDS = 12_000


def print_tree(node: DecisionTreeNode, workload, indent: str = "") -> None:
    """Pretty-print the reconstructed tree."""
    class_labels = workload.dataset.attribute(CLASS_ATTRIBUTE).categories
    if node.is_leaf:
        distribution = ", ".join(
            f"{label}={probability:.2f}"
            for label, probability in zip(class_labels, node.class_distribution)
        )
        print(f"{indent}leaf -> predict {class_labels[node.predicted_class]!r} ({distribution})")
        return
    labels = workload.dataset.attribute(node.split_attribute).categories
    print(f"{indent}split on {node.split_attribute!r}")
    for code, child in sorted(node.children.items()):
        print(f"{indent}  {node.split_attribute} = {labels[code]!r}:")
        print_tree(child, workload, indent + "    ")


def main() -> None:
    # 1. Sweep four disguise strengths through the full pipeline: each scheme
    #    disguises the education attribute, the tree miner reconstructs the
    #    split distributions, and accuracy is scored on the original records.
    spec = plan_pipeline(
        DATA,
        schemes=["warner:0.9", "warner:0.7", "warner:0.45", "warner:0.2"],
        miners=["tree"],
        seeds=[0, 1],
        n_records=N_RECORDS,
    )
    result = run_pipeline(spec, n_jobs=2)
    print("Tree accuracy vs disguise strength (cross-seed mean +/- std):")
    print(format_pipeline_table(result.aggregate_document()))
    print()

    # 2. Drill into one strong disguise: build and print its actual tree.
    workload = build_workload(DATA, N_RECORDS, seed=0)
    matrix = warner_matrix(workload.n_categories, 0.45)
    disguised = disguise_workload(workload, matrix)
    builder = DecisionTreeBuilder(
        {SENSITIVE_ATTRIBUTE: matrix}, class_attribute=CLASS_ATTRIBUTE, max_depth=2
    )
    tree = builder.build(disguised, [SENSITIVE_ATTRIBUTE, CONTEXT_ATTRIBUTE])
    print("Decision tree reconstructed from the disguised data (warner:0.45):")
    print_tree(tree, workload)
    print()

    # 3. Evaluate its predictions against the undisguised ground truth.
    names = workload.dataset.attribute_names
    predictions = np.array([
        tree.predict_one(dict(zip(names, row))) for row in workload.dataset.records
    ])
    truth = workload.dataset.column(CLASS_ATTRIBUTE)
    accuracy = float(np.mean(predictions == truth))
    majority = float(max(np.mean(truth == 0), np.mean(truth == 1)))
    print(f"Accuracy on the original records: {accuracy:.3f} "
          f"(majority-class baseline: {majority:.3f})")


if __name__ == "__main__":
    main()
