"""Compare OptRR against the classic Warner / UP / FRAPP schemes.

Reproduces the methodology of the paper's evaluation on a small budget:
sweep the Warner family (which, by Theorem 2, also represents Uniform
Perturbation and FRAPP), optimize matrices with OptRR for the same workload,
and compare the two Pareto fronts.

Run with::

    python examples/scheme_comparison.py [delta]
"""

from __future__ import annotations

import sys

from repro import OptRRConfig, OptRROptimizer, gamma_distribution
from repro.analysis.compare import compare_fronts
from repro.analysis.front import ParetoFront
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import format_comparison_table
from repro.rr.family import FrappFamily, UniformPerturbationFamily, WarnerFamily


def main(delta: float = 0.75) -> None:
    prior = gamma_distribution(10, alpha=1.0, beta=2.0)
    n_records = 10_000

    # Baseline fronts for the three classic schemes (Theorem 2 predicts they
    # coincide; the printout makes that visible).
    baselines = {}
    for family in (WarnerFamily(10), UniformPerturbationFamily(10), FrappFamily(10)):
        baselines[family.name] = ParetoFront.from_family(
            family, prior, n_records, delta=delta, n_points=501
        )
        low, high = baselines[family.name].privacy_range
        print(f"{family.name:22s}: {len(baselines[family.name]):4d} optimal matrices, "
              f"privacy range [{low:.3f}, {high:.3f}]")

    # OptRR front for the same workload.
    config = OptRRConfig(
        population_size=40, archive_size=40, n_generations=300, delta=delta, seed=1
    )
    result = OptRROptimizer(prior, n_records, config).run()
    optrr = ParetoFront.from_result("optrr", result)
    low, high = optrr.privacy_range
    print(f"{'optrr':22s}: {len(optrr):4d} optimal matrices, "
          f"privacy range [{low:.3f}, {high:.3f}]")

    print()
    comparison = compare_fronts(optrr, baselines["warner"])
    print(format_comparison_table([comparison]))
    print()
    print(ascii_scatter([optrr, baselines["warner"]], width=70, height=18))
    print()
    if comparison.covers_wider_privacy_range:
        print("OptRR covers a wider privacy range than the classic schemes "
              f"(extra {comparison.extra_privacy_range:.3f} towards low privacy).")
    print(f"Average utility advantage at equal privacy: "
          f"{comparison.mean_utility_ratio:.2f}x lower MSE.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.75)
