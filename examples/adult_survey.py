"""Disguise an Adult-census-like survey and recover aggregate statistics.

This example mirrors the paper's real-data scenario (Figure 5(c)): a data
collector gathers census-style records, the sensitive attributes are disguised
with randomized response before leaving the respondents, and the analyst later
reconstructs the attribute distributions from the disguised data.

Two matrices are compared for the same attribute: a Warner matrix and an
OptRR-optimized matrix with the same worst-case privacy bound.

Run with::

    python examples/adult_survey.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    InversionEstimator,
    MatrixEvaluator,
    OptRRConfig,
    OptRROptimizer,
    RandomizedResponse,
    load_adult_like,
    warner_matrix,
)
from repro.data.adult import adult_attribute_distribution


def reconstruct(disguised_codes: np.ndarray, matrix, truth: np.ndarray) -> float:
    """Reconstruct the distribution and return its MSE against the truth."""
    estimate = InversionEstimator().estimate_from_codes(disguised_codes, matrix)
    return float(np.mean((estimate.probabilities - truth) ** 2))


def main() -> None:
    delta = 0.75
    attribute = "age"
    dataset = load_adult_like(32_561, attributes=("age", "workclass", "income"), seed=3)
    prior = adult_attribute_distribution(attribute)
    truth = dataset.distribution(attribute).probabilities
    n_records = dataset.n_records
    evaluator = MatrixEvaluator(prior, n_records, delta)

    print(f"Adult-like dataset: {n_records} records, attribute {attribute!r} "
          f"with {prior.n_categories} categories")
    print("Attribute prior:", {c: round(p, 3) for c, p in prior.as_dict().items()})
    print()

    # Baseline: the strongest Warner matrix that still satisfies the bound.
    feasible_warner = None
    for p in np.linspace(1.0, 1.0 / prior.n_categories, 400):
        candidate = warner_matrix(prior.n_categories, float(p))
        if evaluator.evaluate(candidate).feasible:
            feasible_warner = candidate
            break
    assert feasible_warner is not None

    # OptRR: optimize matrices for this attribute and pick the one whose
    # privacy matches the Warner baseline.
    config = OptRRConfig(
        population_size=40, archive_size=40, n_generations=250, delta=delta, seed=5
    )
    result = OptRROptimizer(prior, n_records, config).run()
    warner_evaluation = evaluator.evaluate(feasible_warner)
    optrr_point = result.best_matrix_for_privacy(warner_evaluation.privacy)

    print(f"{'scheme':10s} {'privacy':>9s} {'max posterior':>14s} {'predicted MSE':>14s} "
          f"{'measured MSE':>13s}")
    for name, matrix in (("warner", feasible_warner), ("optrr", optrr_point.matrix)):
        evaluation = evaluator.evaluate(matrix)
        mechanism = RandomizedResponse(matrix)
        disguised = mechanism.randomize_codes(dataset.column(attribute), seed=11)
        measured = reconstruct(disguised, matrix, truth)
        print(f"{name:10s} {evaluation.privacy:>9.3f} {evaluation.max_posterior:>14.3f} "
              f"{evaluation.utility:>14.2e} {measured:>13.2e}")

    print()
    print("Both schemes satisfy the same worst-case bound; the optimized matrix "
          "achieves the same (or better) privacy with a lower reconstruction error.")


if __name__ == "__main__":
    main()
