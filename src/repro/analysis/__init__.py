"""Pareto-front analysis, comparison, plotting and reporting."""

from repro.analysis.front import ParetoFront
from repro.analysis.compare import FrontComparison, compare_fronts
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import format_front_table, format_comparison_table

__all__ = [
    "FrontComparison",
    "ParetoFront",
    "ascii_scatter",
    "compare_fronts",
    "format_comparison_table",
    "format_front_table",
]
