"""Pareto-front analysis, comparison, aggregation, plotting and reporting."""

from repro.analysis.front import ParetoFront
from repro.analysis.compare import FrontComparison, compare_fronts
from repro.analysis.plot import ascii_scatter
from repro.analysis.report import format_front_table, format_comparison_table
from repro.analysis.aggregate import (
    ExperimentAggregate,
    MetricAggregate,
    aggregate_campaign_runs,
    aggregate_experiment_runs,
    aggregate_to_document,
    format_aggregate_table,
)

__all__ = [
    "ExperimentAggregate",
    "FrontComparison",
    "MetricAggregate",
    "ParetoFront",
    "aggregate_campaign_runs",
    "aggregate_experiment_runs",
    "aggregate_to_document",
    "ascii_scatter",
    "compare_fronts",
    "format_aggregate_table",
    "format_front_table",
    "format_comparison_table",
]
