"""Pareto fronts in (privacy, utility) space.

The paper presents every experimental result as a Pareto front plotted with
privacy on the x-axis (larger is better) and utility/MSE on the y-axis
(smaller is better).  :class:`ParetoFront` is the analysis-side container for
such fronts; it can be built from an optimizer result, from a baseline scheme
sweep, or from raw (privacy, utility) pairs, and offers the queries the
evaluation section relies on (privacy range, utility at a privacy level,
dominance filtering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.result import OptimizationResult
from repro.data.distribution import CategoricalDistribution
from repro.emoo.dominance import non_dominated_objectives
from repro.exceptions import ValidationError
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.family import SchemeFamily
from repro.rr.matrix import RRMatrix


@dataclass(frozen=True)
class FrontPoint:
    """One (privacy, utility) point, optionally carrying its matrix."""

    privacy: float
    utility: float
    matrix: RRMatrix | None = None

    def dominates(self, other: "FrontPoint") -> bool:
        """Whether this point Pareto-dominates ``other`` (higher privacy,
        lower utility)."""
        no_worse = self.privacy >= other.privacy and self.utility <= other.utility
        better = self.privacy > other.privacy or self.utility < other.utility
        return no_worse and better


@dataclass(frozen=True)
class ParetoFront:
    """An immutable Pareto front in (privacy, utility) space.

    Points are stored sorted by increasing privacy; dominated points are
    removed at construction time unless ``keep_dominated`` was requested via
    :meth:`from_points`.
    """

    name: str
    points: tuple[FrontPoint, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.points, key=lambda point: (point.privacy, point.utility)))
        object.__setattr__(self, "points", ordered)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        name: str,
        pairs: Iterable[tuple[float, float]] | Sequence[FrontPoint],
        *,
        keep_dominated: bool = False,
    ) -> "ParetoFront":
        """Build a front from (privacy, utility) pairs or FrontPoint objects."""
        points: list[FrontPoint] = []
        for item in pairs:
            if isinstance(item, FrontPoint):
                points.append(item)
            else:
                privacy, utility = item
                points.append(FrontPoint(float(privacy), float(utility)))
        if not keep_dominated:
            points = _filter_dominated(points)
        return cls(name, tuple(points))

    @classmethod
    def from_result(cls, name: str, result: OptimizationResult) -> "ParetoFront":
        """Build a front from an OptRR optimization result."""
        points = [
            FrontPoint(point.privacy, point.utility, point.matrix) for point in result.points
        ]
        return cls(name, tuple(_filter_dominated(points)))

    @classmethod
    def from_matrices(
        cls,
        name: str,
        matrices: Sequence[RRMatrix],
        evaluator: MatrixEvaluator,
        *,
        require_feasible: bool = True,
    ) -> "ParetoFront":
        """Evaluate ``matrices`` and build the front of the feasible ones.

        This is how the Warner/UP/FRAPP baseline fronts are produced: sweep
        the scheme parameter, evaluate every matrix, drop infeasible ones
        (bound violations), and keep the non-dominated rest.
        """
        points = []
        for matrix in matrices:
            evaluation = evaluator.evaluate(matrix)
            if require_feasible and not evaluation.feasible:
                continue
            if not np.isfinite(evaluation.utility):
                continue
            points.append(FrontPoint(evaluation.privacy, evaluation.utility, matrix))
        return cls(name, tuple(_filter_dominated(points)))

    @classmethod
    def from_family(
        cls,
        family: SchemeFamily,
        prior: CategoricalDistribution,
        n_records: int,
        *,
        delta: float | None = None,
        n_points: int = 1001,
    ) -> "ParetoFront":
        """Baseline front of a parametric scheme family (paper methodology:
        1001-step parameter sweep, drop bound violations, keep the
        non-dominated points)."""
        evaluator = MatrixEvaluator(prior, n_records, delta)
        return cls.from_matrices(family.name, family.matrices(n_points), evaluator)

    # -- protocol ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[FrontPoint]:
        return iter(self.points)

    @property
    def is_empty(self) -> bool:
        """Whether the front has no points (e.g. no feasible matrices)."""
        return not self.points

    # -- views ------------------------------------------------------------------
    def privacy_values(self) -> np.ndarray:
        """Privacy coordinates, ascending."""
        return np.array([point.privacy for point in self.points])

    def utility_values(self) -> np.ndarray:
        """Utility coordinates aligned with :meth:`privacy_values`."""
        return np.array([point.utility for point in self.points])

    def as_array(self) -> np.ndarray:
        """Front as an ``(n_points, 2)`` array of (privacy, utility)."""
        return np.column_stack([self.privacy_values(), self.utility_values()])

    def as_minimization_array(self) -> np.ndarray:
        """Front as minimisation objectives ``(-privacy, utility)`` for the
        quality indicators."""
        return np.column_stack([-self.privacy_values(), self.utility_values()])

    @property
    def privacy_range(self) -> tuple[float, float]:
        """Smallest and largest privacy on the front."""
        if self.is_empty:
            raise ValidationError(f"front {self.name!r} is empty")
        privacies = self.privacy_values()
        return float(privacies.min()), float(privacies.max())

    # -- queries ------------------------------------------------------------------
    def utility_at_privacy(self, privacy: float) -> float:
        """Best (lowest) utility achievable at privacy >= ``privacy``.

        Returns ``inf`` when the front does not reach that privacy level.
        """
        candidates = [point.utility for point in self.points if point.privacy >= privacy - 1e-12]
        return float(min(candidates)) if candidates else float("inf")

    def interpolated_utility_at_privacy(self, privacy: float) -> float:
        """Utility of the front *curve* at a privacy level, with linear
        interpolation between adjacent front points.

        This matches the paper's visual comparison of fronts (is one curve
        below the other?) and is independent of how densely each front was
        sampled.  Privacy levels below the front's minimum return the
        lowest-privacy point's utility; levels above the maximum return
        ``inf``.
        """
        if self.is_empty:
            return float("inf")
        privacies = self.privacy_values()
        utilities = self.utility_values()
        if privacy <= privacies[0]:
            return float(utilities[0])
        if privacy > privacies[-1] + 1e-12:
            return float("inf")
        index = int(np.searchsorted(privacies, privacy, side="left"))
        index = min(index, privacies.size - 1)
        lower = index - 1
        span = privacies[index] - privacies[lower]
        if span <= 0:
            return float(min(utilities[lower], utilities[index]))
        weight = (privacy - privacies[lower]) / span
        return float(utilities[lower] + weight * (utilities[index] - utilities[lower]))

    def best_point_for_privacy(self, privacy: float) -> FrontPoint | None:
        """The point attaining :meth:`utility_at_privacy` (None if unreachable)."""
        candidates = [point for point in self.points if point.privacy >= privacy - 1e-12]
        if not candidates:
            return None
        return min(candidates, key=lambda point: point.utility)

    def restrict_privacy(self, low: float, high: float) -> "ParetoFront":
        """Sub-front whose privacy lies inside ``[low, high]``."""
        selected = tuple(point for point in self.points if low <= point.privacy <= high)
        return ParetoFront(self.name, selected)


def _filter_dominated(points: list[FrontPoint]) -> list[FrontPoint]:
    """Drop dominated points (maximise privacy, minimise utility)."""
    if not points:
        return []
    array = np.array([[-point.privacy, point.utility] for point in points])
    keep_array = non_dominated_objectives(array)
    kept: list[FrontPoint] = []
    used = np.zeros(len(points), dtype=bool)
    for row in keep_array:
        for index, point in enumerate(points):
            if used[index]:
                continue
            if np.isclose(-point.privacy, row[0]) and np.isclose(point.utility, row[1]):
                kept.append(point)
                used[index] = True
                break
    return kept
