"""Cross-seed aggregation of experiment results.

The paper's claims (Figures 4-5, Theorem 2) are statements about
*distributions over seeds*: OptRR fronts dominate the classic scheme
families on average, not merely for one lucky random stream.  This module
turns a collection of per-seed :class:`~repro.experiments.base.ExperimentResult`
objects into per-experiment summary statistics — mean/std/min/max of every
shared front indicator (hypervolume, privacy ranges, utility ratios, ...)
plus the reproduction verdict rate.

The aggregation is deterministic: runs are consumed in the caller-supplied
order, statistics are computed with plain ``float64`` reductions, and the
JSON rendering (:func:`aggregate_to_document` +
:func:`repro.io.dump_canonical_json`) sorts every key — so the same runs
always produce byte-identical aggregate documents, no matter how (serially,
in parallel, from cache) the results were obtained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - avoids an analysis <-> experiments cycle
    from repro.experiments.base import ExperimentResult
    from repro.pipeline.runner import PipelineResult

#: Format identifier embedded in aggregate documents.
AGGREGATE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class MetricAggregate:
    """Summary statistics of one metric across seeds."""

    mean: float
    std: float
    min: float
    max: float

    def as_dict(self) -> dict[str, float]:
        """JSON-compatible view."""
        return {"mean": self.mean, "std": self.std, "min": self.min, "max": self.max}


@dataclass(frozen=True)
class ExperimentAggregate:
    """Cross-seed summary of one experiment.

    Attributes
    ----------
    experiment_id:
        The aggregated experiment.
    seeds:
        Seeds contributing to the aggregate, in run order.
    reproduction_rate:
        Fraction of seeds whose run reproduced the paper's claim.
    metrics:
        Per-metric :class:`MetricAggregate` for every metric key shared by
        all runs of the experiment.
    """

    experiment_id: str
    seeds: tuple[int, ...]
    reproduction_rate: float
    metrics: Mapping[str, MetricAggregate]

    @property
    def n_runs(self) -> int:
        """Number of aggregated runs."""
        return len(self.seeds)


def aggregate_experiment_runs(
    experiment_id: str,
    seed_results: Sequence[tuple[int, ExperimentResult]],
) -> ExperimentAggregate:
    """Aggregate per-seed results of one experiment.

    Only metric keys present in *every* run are aggregated (a metric missing
    from some seed would make the statistics incomparable); the reproduction
    rate always covers all runs.
    """
    if not seed_results:
        raise ValidationError(f"no runs to aggregate for experiment {experiment_id!r}")
    for _, result in seed_results:
        if result.experiment_id != experiment_id:
            raise ValidationError(
                f"result for {result.experiment_id!r} cannot be aggregated "
                f"under {experiment_id!r}"
            )
    shared_keys: set[str] | None = None
    for _, result in seed_results:
        keys = set(result.metrics)
        shared_keys = keys if shared_keys is None else shared_keys & keys
    metrics: dict[str, MetricAggregate] = {}
    for key in sorted(shared_keys or ()):
        values = np.array(
            [float(result.metrics[key]) for _, result in seed_results], dtype=np.float64
        )
        metrics[key] = MetricAggregate(
            mean=float(values.mean()),
            std=float(values.std()),
            min=float(values.min()),
            max=float(values.max()),
        )
    reproduced = [bool(result.reproduced) for _, result in seed_results]
    return ExperimentAggregate(
        experiment_id=experiment_id,
        seeds=tuple(int(seed) for seed, _ in seed_results),
        reproduction_rate=float(sum(reproduced)) / float(len(reproduced)),
        metrics=metrics,
    )


def aggregate_campaign_runs(
    runs: Sequence[tuple[str, int, ExperimentResult]],
) -> dict[str, ExperimentAggregate]:
    """Aggregate a whole campaign's ``(experiment_id, seed, result)`` runs.

    Experiments appear in the returned mapping in first-occurrence order of
    the input sequence (the campaign grid order), each aggregated over its
    seeds in input order.
    """
    grouped: dict[str, list[tuple[int, ExperimentResult]]] = {}
    for experiment_id, seed, result in runs:
        grouped.setdefault(experiment_id, []).append((seed, result))
    return {
        experiment_id: aggregate_experiment_runs(experiment_id, seed_results)
        for experiment_id, seed_results in grouped.items()
    }


def aggregate_to_document(
    aggregates: Mapping[str, ExperimentAggregate],
) -> dict[str, Any]:
    """Render aggregates as a JSON-compatible ``campaign_aggregate`` document."""
    return {
        "format_version": AGGREGATE_FORMAT_VERSION,
        "type": "campaign_aggregate",
        "experiments": {
            experiment_id: {
                "seeds": list(aggregate.seeds),
                "n_runs": aggregate.n_runs,
                "reproduction_rate": aggregate.reproduction_rate,
                "metrics": {
                    key: metric.as_dict() for key, metric in aggregate.metrics.items()
                },
            }
            for experiment_id, aggregate in aggregates.items()
        },
    }


def _aggregate_metric_values(values: Sequence[float]) -> MetricAggregate:
    array = np.asarray(values, dtype=np.float64)
    return MetricAggregate(
        mean=float(array.mean()),
        std=float(array.std()),
        min=float(array.min()),
        max=float(array.max()),
    )


def aggregate_pipeline_cells(
    cells: Sequence[tuple[str, str, int, Mapping[str, float]]],
) -> dict[str, dict[str, dict[str, MetricAggregate]]]:
    """Aggregate pipeline cells across seeds.

    ``cells`` are ``(scheme, miner, seed, metrics)`` tuples; the result is a
    ``{scheme: {miner: {metric: MetricAggregate}}}`` mapping in
    first-occurrence order.  Only metric keys present in *every* seed of a
    ``(scheme, miner)`` pair are aggregated (mirroring
    :func:`aggregate_experiment_runs`); like the campaign aggregation, the
    reduction is order-deterministic: cells are consumed in the
    caller-supplied (grid) order.
    """
    grouped: dict[tuple[str, str], list[Mapping[str, float]]] = {}
    order: list[tuple[str, str]] = []
    for scheme, miner, _seed, metrics in cells:
        key = (scheme, miner)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(metrics)
    aggregates: dict[str, dict[str, dict[str, MetricAggregate]]] = {}
    for scheme, miner in order:
        runs = grouped[(scheme, miner)]
        shared: set[str] | None = None
        for metrics in runs:
            keys = set(metrics)
            shared = keys if shared is None else shared & keys
        per_metric = {
            metric: _aggregate_metric_values([float(run[metric]) for run in runs])
            for metric in sorted(shared or ())
        }
        aggregates.setdefault(scheme, {})[miner] = per_metric
    return aggregates


def pipeline_aggregate_to_document(
    result: "PipelineResult",
    aggregates: Mapping[str, Mapping[str, Mapping[str, MetricAggregate]]],
) -> dict[str, Any]:
    """Render a pipeline's cross-seed aggregates as a JSON-compatible
    ``pipeline_aggregate`` document.

    The per-scheme rows carry the batched privacy/utility evaluation next to
    the per-miner metric statistics — the per-scheme × per-miner table the
    paper's end-to-end claim is about.
    """
    spec = result.spec
    evaluation_by_scheme = {item.scheme: item for item in result.evaluations}
    return {
        "format_version": AGGREGATE_FORMAT_VERSION,
        "type": "pipeline_aggregate",
        "data": spec.data,
        "n_records": spec.n_records,
        "n_categories": spec.n_categories,
        "seeds": list(spec.seeds),
        "miners": list(spec.miners),
        "schemes": [
            {
                "scheme": scheme.name,
                "privacy": evaluation_by_scheme[scheme.name].privacy,
                "utility": evaluation_by_scheme[scheme.name].utility,
                "max_posterior": evaluation_by_scheme[scheme.name].max_posterior,
                "miners": {
                    miner: {
                        metric: statistic.as_dict()
                        for metric, statistic in aggregates[scheme.name][miner].items()
                    }
                    for miner in spec.miners
                },
            }
            for scheme in spec.schemes
        ],
    }


def format_aggregate_table(aggregates: Mapping[str, ExperimentAggregate]) -> str:
    """Human-readable per-experiment summary table for the CLI."""
    lines = [
        f"{'experiment':<10s} {'runs':>4s} {'reproduced':>10s} "
        f"{'hypervolume (mean+/-std)':>26s}"
    ]
    for experiment_id, aggregate in aggregates.items():
        hypervolume = aggregate.metrics.get("optrr_hypervolume")
        if hypervolume is not None:
            hypervolume_text = f"{hypervolume.mean:.6g} +/- {hypervolume.std:.2g}"
        else:
            hypervolume_text = "-"
        lines.append(
            f"{experiment_id:<10s} {aggregate.n_runs:>4d} "
            f"{aggregate.reproduction_rate:>10.0%} {hypervolume_text:>26s}"
        )
    return "\n".join(lines)
