"""Comparison of two Pareto fronts (the paper's evaluation methodology).

The evaluation argues that "scheme A is better than scheme B in a privacy
range" when A's front lies below B's front (lower MSE) throughout that range,
and that A "covers a wider privacy range" when A reaches privacy values B
cannot.  :func:`compare_fronts` turns both statements into numbers that the
benchmark harness prints and the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.front import ParetoFront
from repro.emoo.indicators import coverage, epsilon_indicator, hypervolume_2d
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class FrontComparison:
    """Summary of how a candidate front compares against a baseline front.

    Attributes
    ----------
    candidate_name, baseline_name:
        Names of the compared fronts.
    candidate_privacy_range, baseline_privacy_range:
        (min, max) privacy covered by each front.
    extra_privacy_range:
        How much further (towards low privacy) the candidate front reaches
        beyond the baseline: ``baseline_min_privacy - candidate_min_privacy``
        (positive means the candidate covers more of the range, matching the
        paper's "wider privacy range" claim).
    mean_utility_ratio:
        Average over the shared privacy range of
        ``baseline_utility / candidate_utility`` at equal privacy; values
        above 1 mean the candidate needs less MSE for the same privacy.
    candidate_wins, baseline_wins, ties:
        Counts of probe privacy levels where each front achieves strictly
        lower utility.
    hypervolume_candidate, hypervolume_baseline:
        2-D hypervolume of each front (minimisation form) against a shared
        reference point; larger is better.
    coverage_candidate_over_baseline:
        C-metric: fraction of baseline points weakly dominated by the
        candidate front.
    additive_epsilon:
        Additive epsilon indicator of the candidate against the baseline
        (lower/negative is better for the candidate).
    """

    candidate_name: str
    baseline_name: str
    candidate_privacy_range: tuple[float, float]
    baseline_privacy_range: tuple[float, float]
    extra_privacy_range: float
    mean_utility_ratio: float
    candidate_wins: int
    baseline_wins: int
    ties: int
    hypervolume_candidate: float
    hypervolume_baseline: float
    coverage_candidate_over_baseline: float
    additive_epsilon: float

    @property
    def candidate_dominates_shared_range(self) -> bool:
        """Whether the candidate front never loses at any probed privacy level."""
        return self.baseline_wins == 0

    @property
    def covers_wider_privacy_range(self) -> bool:
        """Whether the candidate extends to lower privacy than the baseline."""
        return self.extra_privacy_range > 1e-9


def compare_fronts(
    candidate: ParetoFront,
    baseline: ParetoFront,
    *,
    n_probes: int = 50,
    utility_tolerance: float = 1e-12,
    relative_tolerance: float = 0.01,
) -> FrontComparison:
    """Compare a candidate front against a baseline front.

    Probes ``n_probes`` privacy levels spanning the privacy range shared by
    both fronts and compares the two front *curves* (linear interpolation
    between front points, as in the paper's visual comparison) at each level,
    then computes the global front-quality indicators.

    A probe counts as a win only when the advantage exceeds both the absolute
    ``utility_tolerance`` and ``relative_tolerance`` (fraction of the other
    front's utility); differences smaller than that — typically sampling
    resolution of the sweeps — count as ties.
    """
    if candidate.is_empty or baseline.is_empty:
        raise ValidationError("both fronts must contain at least one point")
    if n_probes < 2:
        raise ValidationError("n_probes must be at least 2")

    candidate_range = candidate.privacy_range
    baseline_range = baseline.privacy_range
    shared_low = max(candidate_range[0], baseline_range[0])
    shared_high = min(candidate_range[1], baseline_range[1])

    candidate_wins = baseline_wins = ties = 0
    ratios: list[float] = []
    if shared_high > shared_low:
        probes = np.linspace(shared_low, shared_high, n_probes)
        for privacy in probes:
            candidate_utility = candidate.interpolated_utility_at_privacy(float(privacy))
            baseline_utility = baseline.interpolated_utility_at_privacy(float(privacy))
            if not (np.isfinite(candidate_utility) and np.isfinite(baseline_utility)):
                continue
            margin = max(
                utility_tolerance,
                relative_tolerance * min(candidate_utility, baseline_utility),
            )
            if candidate_utility < baseline_utility - margin:
                candidate_wins += 1
            elif baseline_utility < candidate_utility - margin:
                baseline_wins += 1
            else:
                ties += 1
            if candidate_utility > 0:
                ratios.append(baseline_utility / candidate_utility)

    candidate_array = candidate.as_minimization_array()
    baseline_array = baseline.as_minimization_array()
    all_points = np.vstack([candidate_array, baseline_array])
    reference = (float(all_points[:, 0].max()) + 1e-6, float(all_points[:, 1].max()) * 1.1 + 1e-12)

    return FrontComparison(
        candidate_name=candidate.name,
        baseline_name=baseline.name,
        candidate_privacy_range=candidate_range,
        baseline_privacy_range=baseline_range,
        extra_privacy_range=float(baseline_range[0] - candidate_range[0]),
        mean_utility_ratio=float(np.mean(ratios)) if ratios else float("nan"),
        candidate_wins=candidate_wins,
        baseline_wins=baseline_wins,
        ties=ties,
        hypervolume_candidate=hypervolume_2d(candidate_array, reference),
        hypervolume_baseline=hypervolume_2d(baseline_array, reference),
        coverage_candidate_over_baseline=coverage(candidate_array, baseline_array),
        additive_epsilon=epsilon_indicator(candidate_array, baseline_array),
    )
