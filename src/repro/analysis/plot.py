"""ASCII scatter plots of Pareto fronts.

The environment has no plotting backend, so the experiment runners render the
paper's figures as terminal scatter plots: privacy on the x-axis, utility
(MSE) on the y-axis, one marker character per front.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.front import ParetoFront
from repro.exceptions import ValidationError

#: Markers assigned to fronts in the order they are passed.
_MARKERS = "ox+*#@%&"


def ascii_scatter(
    fronts: Sequence[ParetoFront],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "privacy",
    y_label: str = "utility (MSE)",
) -> str:
    """Render one or more fronts as an ASCII scatter plot.

    Parameters
    ----------
    fronts:
        Fronts to overlay; each gets its own marker character.
    width, height:
        Plot area size in characters.
    x_label, y_label:
        Axis labels printed below / beside the plot.
    """
    fronts = [front for front in fronts if not front.is_empty]
    if not fronts:
        raise ValidationError("at least one non-empty front is required")
    if width < 10 or height < 5:
        raise ValidationError("plot area must be at least 10x5 characters")

    xs = np.concatenate([front.privacy_values() for front in fronts])
    ys = np.concatenate([front.utility_values() for front in fronts])
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for front_index, front in enumerate(fronts):
        marker = _MARKERS[front_index % len(_MARKERS)]
        for point in front:
            column = int(round((point.privacy - x_min) / x_span * (width - 1)))
            row = int(round((point.utility - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][column] = marker

    lines = []
    lines.append(f"{y_label}  [{y_min:.3e} .. {y_max:.3e}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_min:.4f} .. {x_max:.4f}]")
    legend = "  ".join(
        f"{_MARKERS[index % len(_MARKERS)]} = {front.name}" for index, front in enumerate(fronts)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
