"""Text reports for experiments: front tables and comparison summaries."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.compare import FrontComparison
from repro.analysis.front import ParetoFront


def format_front_table(front: ParetoFront, *, max_rows: int = 20) -> str:
    """Format a front as a fixed-width table of (privacy, utility) rows.

    Long fronts are subsampled evenly so the table stays readable.
    """
    header = f"Pareto front: {front.name} ({len(front)} points)"
    if front.is_empty:
        return header + "\n  (empty)"
    points = list(front)
    if len(points) > max_rows:
        step = len(points) / max_rows
        points = [points[int(index * step)] for index in range(max_rows)]
    lines = [header, f"  {'privacy':>10}  {'utility (MSE)':>14}"]
    for point in points:
        lines.append(f"  {point.privacy:>10.4f}  {point.utility:>14.6e}")
    return "\n".join(lines)


def format_comparison_table(comparisons: Sequence[FrontComparison]) -> str:
    """Format one or more front comparisons as a summary table."""
    if not comparisons:
        return "(no comparisons)"
    lines = [
        f"  {'candidate':>12} {'baseline':>12} {'priv. range (cand.)':>22} "
        f"{'priv. range (base)':>20} {'extra range':>12} {'util. ratio':>12} "
        f"{'wins':>5} {'losses':>7}"
    ]
    for comparison in comparisons:
        cand_range = f"[{comparison.candidate_privacy_range[0]:.3f}, {comparison.candidate_privacy_range[1]:.3f}]"
        base_range = f"[{comparison.baseline_privacy_range[0]:.3f}, {comparison.baseline_privacy_range[1]:.3f}]"
        lines.append(
            f"  {comparison.candidate_name:>12} {comparison.baseline_name:>12} "
            f"{cand_range:>22} {base_range:>20} "
            f"{comparison.extra_privacy_range:>12.4f} "
            f"{comparison.mean_utility_ratio:>12.3f} "
            f"{comparison.candidate_wins:>5d} {comparison.baseline_wins:>7d}"
        )
    return "\n".join(lines)


#: Metric each miner's column leads with in the pipeline summary table (the
#: remaining metrics stay available in the aggregate document).
PIPELINE_HEADLINE_METRICS = ("accuracy", "f1", "l1_error")


def format_pipeline_table(aggregate_document: dict) -> str:
    """Format a ``pipeline_aggregate`` document as a per-scheme summary table.

    One row per scheme (privacy from the batched evaluation), one column per
    miner showing its headline metric as ``mean +/- std``.  The headline is
    the first of :data:`PIPELINE_HEADLINE_METRICS` the miner reports,
    falling back to its alphabetically-first metric.
    """
    miners = list(aggregate_document.get("miners", []))
    rows = aggregate_document.get("schemes", [])
    if not rows:
        return "(empty pipeline)"
    headlines: dict[str, str] = {}
    for miner in miners:
        metrics = set()
        for row in rows:
            metrics |= set(row["miners"].get(miner, {}))
        headlines[miner] = next(
            (name for name in PIPELINE_HEADLINE_METRICS if name in metrics),
            min(metrics) if metrics else "-",
        )
    name_width = max(len("scheme"), *(len(row["scheme"]) for row in rows))
    header = f"  {'scheme':<{name_width}} {'privacy':>9}"
    for miner in miners:
        header += f"  {f'{miner}:{headlines[miner]}':>24}"
    lines = [header]
    for row in rows:
        line = f"  {row['scheme']:<{name_width}} {row['privacy']:>9.4f}"
        for miner in miners:
            statistic = row["miners"].get(miner, {}).get(headlines[miner])
            if statistic is None:
                cell = "-"
            else:
                cell = f"{statistic['mean']:.4f} +/- {statistic['std']:.3f}"
            line += f"  {cell:>24}"
        lines.append(line)
    return "\n".join(lines)


def format_paper_vs_measured(
    experiment_id: str,
    paper_claim: str,
    measured: str,
    holds: bool,
) -> str:
    """One-line paper-vs-measured record used by the benchmark harness."""
    status = "REPRODUCED" if holds else "DIVERGED"
    return f"[{status}] {experiment_id}: paper: {paper_claim} | measured: {measured}"
