"""Text reports for experiments: front tables and comparison summaries."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.compare import FrontComparison
from repro.analysis.front import ParetoFront


def format_front_table(front: ParetoFront, *, max_rows: int = 20) -> str:
    """Format a front as a fixed-width table of (privacy, utility) rows.

    Long fronts are subsampled evenly so the table stays readable.
    """
    header = f"Pareto front: {front.name} ({len(front)} points)"
    if front.is_empty:
        return header + "\n  (empty)"
    points = list(front)
    if len(points) > max_rows:
        step = len(points) / max_rows
        points = [points[int(index * step)] for index in range(max_rows)]
    lines = [header, f"  {'privacy':>10}  {'utility (MSE)':>14}"]
    for point in points:
        lines.append(f"  {point.privacy:>10.4f}  {point.utility:>14.6e}")
    return "\n".join(lines)


def format_comparison_table(comparisons: Sequence[FrontComparison]) -> str:
    """Format one or more front comparisons as a summary table."""
    if not comparisons:
        return "(no comparisons)"
    lines = [
        f"  {'candidate':>12} {'baseline':>12} {'priv. range (cand.)':>22} "
        f"{'priv. range (base)':>20} {'extra range':>12} {'util. ratio':>12} "
        f"{'wins':>5} {'losses':>7}"
    ]
    for comparison in comparisons:
        cand_range = f"[{comparison.candidate_privacy_range[0]:.3f}, {comparison.candidate_privacy_range[1]:.3f}]"
        base_range = f"[{comparison.baseline_privacy_range[0]:.3f}, {comparison.baseline_privacy_range[1]:.3f}]"
        lines.append(
            f"  {comparison.candidate_name:>12} {comparison.baseline_name:>12} "
            f"{cand_range:>22} {base_range:>20} "
            f"{comparison.extra_privacy_range:>12.4f} "
            f"{comparison.mean_utility_ratio:>12.3f} "
            f"{comparison.candidate_wins:>5d} {comparison.baseline_wins:>7d}"
        )
    return "\n".join(lines)


def format_paper_vs_measured(
    experiment_id: str,
    paper_claim: str,
    measured: str,
    holds: bool,
) -> str:
    """One-line paper-vs-measured record used by the benchmark harness."""
    status = "REPRODUCED" if holds else "DIVERGED"
    return f"[{status}] {experiment_id}: paper: {paper_claim} | measured: {measured}"
