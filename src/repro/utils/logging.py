"""Library logging helpers.

The library never configures the root logger; applications decide how log
records are handled.  ``get_logger`` simply namespaces loggers under
``repro.*`` so they can be enabled selectively.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger namespaced under the library root logger."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
