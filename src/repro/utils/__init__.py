"""Small shared utilities: validation, linear algebra and logging helpers."""

from repro.utils.validation import (
    check_in_unit_interval,
    check_matrix_stack,
    check_positive_int,
    check_probability_vector,
    check_square_matrix,
    check_stochastic_columns,
    normalize_probabilities,
)
from repro.utils.linalg import (
    batched_condition_numbers,
    batched_safe_inverses,
    condition_number,
    one_norm_condition_estimate,
    safe_inverse,
)
from repro.utils.logging import get_logger

__all__ = [
    "batched_condition_numbers",
    "batched_safe_inverses",
    "check_in_unit_interval",
    "check_matrix_stack",
    "check_positive_int",
    "check_probability_vector",
    "check_square_matrix",
    "check_stochastic_columns",
    "condition_number",
    "get_logger",
    "normalize_probabilities",
    "one_norm_condition_estimate",
    "safe_inverse",
]
