"""Input validation helpers.

Every public entry point of the library validates its inputs with these
functions so error messages are consistent and informative.  All functions
either return a normalised :class:`numpy.ndarray` or raise
:class:`repro.exceptions.ValidationError`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DataError, RRMatrixError, ValidationError

#: Tolerance used when checking that probabilities sum to one.
PROBABILITY_ATOL = 1e-8


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_in_unit_interval(
    value: float,
    name: str,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that ``value`` lies in the unit interval and return it."""
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value}")
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        low = "[" if inclusive_low else "("
        high = "]" if inclusive_high else ")"
        raise ValidationError(f"{name} must be in {low}0, 1{high}, got {value}")
    return value


def check_probability_vector(
    probabilities: Sequence[float] | np.ndarray,
    name: str = "probabilities",
    *,
    atol: float = PROBABILITY_ATOL,
) -> np.ndarray:
    """Validate a probability vector and return it as ``float64`` array.

    The vector must be one-dimensional, non-empty, non-negative, finite and
    sum to one (within ``atol``).
    """
    array = np.asarray(probabilities, dtype=np.float64)
    if array.ndim != 1:
        raise DataError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise DataError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise DataError(f"{name} must contain only finite values")
    if np.any(array < -atol):
        raise DataError(f"{name} must be non-negative, got minimum {array.min()}")
    total = float(array.sum())
    if not np.isclose(total, 1.0, atol=atol, rtol=0.0):
        raise DataError(f"{name} must sum to 1, got {total}")
    return np.clip(array, 0.0, 1.0)


def normalize_probabilities(
    weights: Sequence[float] | np.ndarray,
    name: str = "weights",
) -> np.ndarray:
    """Normalise non-negative ``weights`` into a probability vector."""
    array = np.asarray(weights, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise DataError(f"{name} must be a non-empty one-dimensional sequence")
    if not np.all(np.isfinite(array)):
        raise DataError(f"{name} must contain only finite values")
    if np.any(array < 0):
        raise DataError(f"{name} must be non-negative")
    total = float(array.sum())
    if total <= 0:
        raise DataError(f"{name} must have a positive sum, got {total}")
    return array / total


def check_matrix_stack(
    stack: np.ndarray,
    name: str = "stack",
) -> np.ndarray:
    """Validate that ``stack`` is a ``(B, n, n)`` array of square matrices
    and return it as C-contiguous float64.  Shared by every batched entry
    point (stacked operators, batched metrics, batched linear algebra) so
    malformed stacks raise one exception type everywhere.

    The contiguity canonicalisation matters for determinism, not just speed:
    BLAS contractions round differently depending on operand memory layout,
    so the array-backend kernels (:mod:`repro.backend`) are only bit-exact
    against each other when every caller hands them the same layout.  For the
    engine's own stacks this is a no-op (they are already contiguous)."""
    array = np.ascontiguousarray(stack, dtype=np.float64)
    if array.ndim != 3 or array.shape[-1] != array.shape[-2]:
        raise ValidationError(
            f"{name} must be a (B, n, n) stack of square matrices, got shape {array.shape}"
        )
    return array


def check_square_matrix(
    matrix: Sequence[Sequence[float]] | np.ndarray,
    name: str = "matrix",
) -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array and return it."""
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise RRMatrixError(f"{name} must be a square 2-D matrix, got shape {array.shape}")
    if array.shape[0] == 0:
        raise RRMatrixError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise RRMatrixError(f"{name} must contain only finite values")
    return array


def check_stochastic_columns(
    matrix: Sequence[Sequence[float]] | np.ndarray,
    name: str = "matrix",
    *,
    atol: float = PROBABILITY_ATOL,
) -> np.ndarray:
    """Validate that ``matrix`` is square and column-stochastic.

    Each entry must lie in ``[0, 1]`` and every column must sum to one.  The
    validated matrix is returned with entries clipped to ``[0, 1]``.
    """
    array = check_square_matrix(matrix, name)
    if np.any(array < -atol) or np.any(array > 1.0 + atol):
        raise RRMatrixError(f"{name} entries must lie in [0, 1]")
    column_sums = array.sum(axis=0)
    if not np.allclose(column_sums, 1.0, atol=max(atol, 1e-6), rtol=0.0):
        raise RRMatrixError(
            f"{name} columns must each sum to 1, got sums {column_sums.tolist()}"
        )
    return np.clip(array, 0.0, 1.0)
