"""Linear-algebra helpers for the inversion-based estimator."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SingularMatrixError

#: Matrices whose condition number exceeds this value are treated as singular
#: for the purpose of the inversion estimator; the resulting estimates would
#: be numerically meaningless anyway.
DEFAULT_CONDITION_LIMIT = 1e12


def condition_number(matrix: np.ndarray) -> float:
    """Return the 2-norm condition number of ``matrix`` (``inf`` if singular)."""
    try:
        return float(np.linalg.cond(matrix))
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return float("inf")


def is_invertible(matrix: np.ndarray, *, condition_limit: float = DEFAULT_CONDITION_LIMIT) -> bool:
    """Return ``True`` when ``matrix`` is numerically invertible."""
    cond = condition_number(matrix)
    return np.isfinite(cond) and cond < condition_limit


def safe_inverse(
    matrix: np.ndarray,
    *,
    condition_limit: float = DEFAULT_CONDITION_LIMIT,
) -> np.ndarray:
    """Invert ``matrix``, raising :class:`SingularMatrixError` when it is
    singular or too ill-conditioned to invert reliably."""
    cond = condition_number(matrix)
    if not np.isfinite(cond) or cond >= condition_limit:
        raise SingularMatrixError(
            f"matrix is singular or ill-conditioned (condition number {cond:.3e})"
        )
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise SingularMatrixError("matrix could not be inverted") from exc
