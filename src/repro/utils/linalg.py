"""Linear-algebra helpers for the inversion-based estimator."""

from __future__ import annotations

import numpy as np

from repro.exceptions import SingularMatrixError
from repro.utils.validation import check_matrix_stack

#: Matrices whose condition number exceeds this value are treated as singular
#: for the purpose of the inversion estimator; the resulting estimates would
#: be numerically meaningless anyway.
DEFAULT_CONDITION_LIMIT = 1e12


def condition_number(matrix: np.ndarray) -> float:
    """Return the 2-norm condition number of ``matrix`` (``inf`` if singular)."""
    try:
        return float(np.linalg.cond(matrix))
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return float("inf")


def is_invertible(matrix: np.ndarray, *, condition_limit: float = DEFAULT_CONDITION_LIMIT) -> bool:
    """Return ``True`` when ``matrix`` is numerically invertible."""
    cond = condition_number(matrix)
    return np.isfinite(cond) and cond < condition_limit


def safe_inverse(
    matrix: np.ndarray,
    *,
    condition_limit: float = DEFAULT_CONDITION_LIMIT,
) -> np.ndarray:
    """Invert ``matrix``, raising :class:`SingularMatrixError` when it is
    singular or too ill-conditioned to invert reliably."""
    cond = condition_number(matrix)
    if not np.isfinite(cond) or cond >= condition_limit:
        raise SingularMatrixError(
            f"matrix is singular or ill-conditioned (condition number {cond:.3e})"
        )
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise SingularMatrixError("matrix could not be inverted") from exc


def batched_condition_numbers(stack: np.ndarray) -> np.ndarray:
    """Condition number of every matrix in a ``(B, n, n)`` stack.

    Singular matrices get ``inf`` instead of raising, so a whole population
    can be classified in one call.
    """
    stack = check_matrix_stack(stack)
    if stack.shape[0] == 0:
        return np.empty(0)
    try:
        conditions = np.linalg.cond(stack)
    except np.linalg.LinAlgError:  # pragma: no cover - gesdd non-convergence
        conditions = np.array([condition_number(matrix) for matrix in stack])
    return np.where(np.isnan(conditions), np.inf, conditions)


def batched_safe_inverses(
    stack: np.ndarray,
    *,
    condition_limit: float = DEFAULT_CONDITION_LIMIT,
) -> tuple[np.ndarray, np.ndarray]:
    """Invert every numerically invertible matrix in a ``(B, n, n)`` stack.

    Returns ``(inverses, invertible)`` where ``invertible`` is a boolean mask
    and ``inverses[b]`` is ``stack[b]^-1`` for invertible matrices and zeros
    otherwise (callers must consult the mask before using a row).

    Exactly singular matrices are caught by the batched LU determinant sign
    before inversion; near-singular ones by the 1-norm condition estimate
    ``cond_1 = ||A||_1 ||A^-1||_1`` computed from the inverse that is needed
    anyway.  ``cond_1`` and the scalar path's SVD-based 2-norm condition
    number bound each other within a factor of ``n``, so classification can
    only differ inside a narrow band around the (heuristic) ``condition_limit``
    — and avoiding the batched SVD is what makes population evaluation cheap.
    """
    stack = check_matrix_stack(stack)
    inverses = np.zeros_like(stack)
    if stack.shape[0] == 0:
        return inverses, np.zeros(0, dtype=bool)
    signs, log_determinants = np.linalg.slogdet(stack)
    candidates = (signs != 0) & np.isfinite(log_determinants)
    if candidates.any():
        try:
            inverses[candidates] = np.linalg.inv(stack[candidates])
        except np.linalg.LinAlgError:  # pragma: no cover - slogdet said fine
            for index in np.flatnonzero(candidates):
                try:
                    inverses[index] = np.linalg.inv(stack[index])
                except np.linalg.LinAlgError:
                    candidates[index] = False
                    inverses[index] = 0.0
    one_norms = np.abs(stack).sum(axis=1).max(axis=1)
    inverse_one_norms = np.abs(inverses).sum(axis=1).max(axis=1)
    with np.errstate(over="ignore", invalid="ignore"):
        condition_estimates = one_norms * inverse_one_norms
    invertible = (
        candidates
        & np.isfinite(condition_estimates)
        & (condition_estimates < condition_limit)
    )
    return inverses, invertible
