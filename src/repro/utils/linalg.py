"""Linear-algebra helpers for the inversion-based estimator.

Near-singular classification
----------------------------
Whether a matrix counts as "numerically invertible" is decided — for the
scalar *and* the batched path — by the same rule: invert via LU and accept
the inverse only when the 1-norm condition estimate
``cond_1(A) = ||A||_1 ||A^-1||_1`` stays below the configured limit.  The
estimate reuses the inverse that the estimator needs anyway, so no SVD is
required, and because every caller goes through the shared helper
:func:`one_norm_condition_estimate` the scalar API and the batch engine can
never disagree about which matrices are usable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SingularMatrixError
from repro.utils.validation import check_matrix_stack

#: Matrices whose 1-norm condition estimate exceeds this value are treated as
#: singular for the purpose of the inversion estimator; the resulting
#: estimates would be numerically meaningless anyway.
DEFAULT_CONDITION_LIMIT = 1e12


def condition_number(matrix: np.ndarray) -> float:
    """Return the 2-norm condition number of ``matrix`` (``inf`` if singular).

    This is the textbook SVD-based diagnostic (exposed as
    ``RRMatrix.condition``); the invertibility *decision* uses
    :func:`one_norm_condition_estimate` instead.
    """
    try:
        return float(np.linalg.cond(matrix))
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return float("inf")


def one_norm_condition_estimate(matrix: np.ndarray, inverse: np.ndarray) -> np.ndarray:
    """1-norm condition estimate ``||A||_1 ||A^-1||_1`` from a known inverse.

    Works on a single ``(n, n)`` matrix or a ``(B, n, n)`` stack (the norms
    reduce over the trailing two axes either way).  ``cond_1`` and the SVD
    2-norm condition number bound each other within a factor of ``n``, and
    reusing the inverse makes the estimate essentially free — which is why it
    is the classification rule for both evaluation paths.
    """
    one_norms = np.abs(matrix).sum(axis=-2).max(axis=-1)
    inverse_one_norms = np.abs(inverse).sum(axis=-2).max(axis=-1)
    with np.errstate(over="ignore", invalid="ignore"):
        return one_norms * inverse_one_norms


def is_invertible(matrix: np.ndarray, *, condition_limit: float = DEFAULT_CONDITION_LIMIT) -> bool:
    """Return ``True`` when ``matrix`` is numerically invertible.

    Uses the same 1-norm condition estimate as the batched path, so
    ``is_invertible(m)`` and ``batched_safe_inverses(m[None])[1][0]`` always
    agree.
    """
    try:
        inverse = np.linalg.inv(matrix)
    except np.linalg.LinAlgError:
        return False
    estimate = one_norm_condition_estimate(matrix, inverse)
    return bool(np.isfinite(estimate) and estimate < condition_limit)


def safe_inverse(
    matrix: np.ndarray,
    *,
    condition_limit: float = DEFAULT_CONDITION_LIMIT,
) -> np.ndarray:
    """Invert ``matrix``, raising :class:`SingularMatrixError` when it is
    singular or too ill-conditioned to invert reliably.

    Classification matches :func:`batched_safe_inverses` exactly (shared
    1-norm condition estimate), so the scalar and batch paths agree on every
    matrix.
    """
    try:
        inverse = np.linalg.inv(matrix)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError("matrix is exactly singular") from exc
    estimate = float(one_norm_condition_estimate(matrix, inverse))
    if not np.isfinite(estimate) or estimate >= condition_limit:
        raise SingularMatrixError(
            f"matrix is singular or ill-conditioned (condition estimate {estimate:.3e})"
        )
    return inverse


def batched_condition_numbers(stack: np.ndarray) -> np.ndarray:
    """Condition number of every matrix in a ``(B, n, n)`` stack.

    Singular matrices get ``inf`` instead of raising, so a whole population
    can be classified in one call.
    """
    stack = check_matrix_stack(stack)
    if stack.shape[0] == 0:
        return np.empty(0)
    try:
        conditions = np.linalg.cond(stack)
    except np.linalg.LinAlgError:  # pragma: no cover - gesdd non-convergence
        conditions = np.array([condition_number(matrix) for matrix in stack])
    return np.where(np.isnan(conditions), np.inf, conditions)


def batched_safe_inverses(
    stack: np.ndarray,
    *,
    condition_limit: float = DEFAULT_CONDITION_LIMIT,
) -> tuple[np.ndarray, np.ndarray]:
    """Invert every numerically invertible matrix in a ``(B, n, n)`` stack.

    Returns ``(inverses, invertible)`` where ``invertible`` is a boolean mask
    and ``inverses[b]`` is ``stack[b]^-1`` for invertible matrices and zeros
    otherwise (callers must consult the mask before using a row).

    Exactly singular matrices are caught by the batched LU determinant sign
    before inversion; near-singular ones by the shared
    :func:`one_norm_condition_estimate` — the same rule :func:`safe_inverse`
    and :func:`is_invertible` apply, so the scalar and batched paths classify
    every matrix identically.

    The actual inversion is performed by the active array backend (see
    :mod:`repro.backend`); every backend must follow the classification rule
    above, and the default ``numpy`` backend is the original implementation
    moved behind the seam, bit for bit.
    """
    stack = check_matrix_stack(stack)
    # Imported lazily: the backend kernels import this module's condition
    # helper at module level, so the reverse edge must not exist at import
    # time.
    from repro.backend.registry import active_backend

    return active_backend().batched_safe_inverses(
        stack, condition_limit=condition_limit
    )
