"""Bit-exact JSON serialization of numpy arrays.

Checkpoint documents (:mod:`repro.core.driver`, :mod:`repro.io`) must restore
optimizer state *bit-for-bit*: a resumed run has to retrace the uninterrupted
run's floating-point trajectory exactly.  Encoding arrays as decimal text is
both lossy-looking (it round-trips, but only via shortest-repr float parsing)
and slow at checkpoint cadence, so arrays are stored as raw little-endian
bytes, base64-encoded inside an ordinary JSON object::

    {"dtype": "<f8", "shape": [40, 10, 10], "data": "zczMzMzM..."}

``encode_array``/``decode_array`` round-trip every dtype this code base uses
(float64 including ``inf``/``nan``/``-0.0``, bool, int64) without touching a
single bit.
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from repro.exceptions import ValidationError


def encode_array(array: np.ndarray) -> dict[str, Any]:
    """Encode an array as a JSON-compatible ``{dtype, shape, data}`` document."""
    array = np.ascontiguousarray(array)
    if array.dtype.hasobject:
        raise ValidationError("object arrays cannot be byte-encoded; use a genome codec")
    # Force a byte-order-explicit dtype string so documents written on a
    # big-endian host (dtype.str "​>f8") still decode correctly everywhere.
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(document: dict[str, Any]) -> np.ndarray:
    """Decode :func:`encode_array` output back into a writable array."""
    try:
        dtype = np.dtype(document["dtype"])
        shape = tuple(int(extent) for extent in document["shape"])
        raw = base64.b64decode(document["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed array document: {exc}") from exc
    if dtype.hasobject:
        raise ValidationError("array documents must hold a plain numeric dtype")
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if len(raw) != expected and not (shape and 0 in shape and len(raw) == 0):
        raise ValidationError(
            f"array document carries {len(raw)} bytes for dtype {dtype} shape {shape}"
        )
    # frombuffer returns a read-only view over the bytes object; copy so the
    # restored optimizer state is writable like the state it replaces.
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
