"""Registry mapping experiment ids to their specifications."""

from __future__ import annotations

import fnmatch
from typing import Iterable

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentSpec

_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register an experiment specification (id must be unique)."""
    if spec.experiment_id in _REGISTRY:
        raise ExperimentError(f"experiment {spec.experiment_id!r} is already registered")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_experiments() -> tuple[str, ...]:
    """Ids of all registered experiments, sorted."""
    return tuple(sorted(_REGISTRY))


def find_experiments(patterns: Iterable[str]) -> tuple[str, ...]:
    """Resolve experiment ids and shell-style globs (``fig4*``) against the
    registry.

    Matches are returned sorted per pattern, de-duplicated across patterns
    with the first occurrence winning, so the same pattern list always yields
    the same experiment order (the campaign grid depends on this).  A pattern
    matching nothing raises :class:`ExperimentError`.
    """
    resolved: list[str] = []
    for pattern in patterns:
        matches = sorted(fnmatch.filter(_REGISTRY, pattern))
        if not matches:
            raise ExperimentError(
                f"pattern {pattern!r} matches no experiment; available: {sorted(_REGISTRY)}"
            )
        for experiment_id in matches:
            if experiment_id not in resolved:
                resolved.append(experiment_id)
    return tuple(resolved)
