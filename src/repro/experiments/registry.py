"""Registry mapping experiment ids to their specifications."""

from __future__ import annotations

from repro.exceptions import ExperimentError
from repro.experiments.base import ExperimentSpec

_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Register an experiment specification (id must be unique)."""
    if spec.experiment_id in _REGISTRY:
        raise ExperimentError(f"experiment {spec.experiment_id!r} is already registered")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_experiments() -> tuple[str, ...]:
    """Ids of all registered experiments, sorted."""
    return tuple(sorted(_REGISTRY))
