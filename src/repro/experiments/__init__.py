"""Experiment harness: one runner per table/figure in the paper's evaluation,
plus campaign orchestration for multi-seed grids."""

from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.registry import (
    available_experiments,
    find_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.runner import run_experiment
from repro.experiments import figure4, figure5, theorem2, factsheet  # noqa: F401  (registration side effects)
from repro.experiments.campaign import (
    CampaignCache,
    CampaignResult,
    CampaignRunRecord,
    CampaignSpec,
    CampaignTask,
    plan_campaign,
    run_campaign,
)

__all__ = [
    "CampaignCache",
    "CampaignResult",
    "CampaignRunRecord",
    "CampaignSpec",
    "CampaignTask",
    "ExperimentResult",
    "ExperimentSpec",
    "available_experiments",
    "find_experiments",
    "get_experiment",
    "plan_campaign",
    "register_experiment",
    "run_experiment",
]
