"""Experiment harness: one runner per table/figure in the paper's evaluation."""

from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.registry import available_experiments, get_experiment, register_experiment
from repro.experiments.runner import run_experiment
from repro.experiments import figure4, figure5, theorem2, factsheet  # noqa: F401  (registration side effects)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_experiment",
]
