"""Fact 1: the size of the discretised RR-matrix search space.

The paper motivates the evolutionary search by noting that even a coarse
discretisation of the matrix entries yields an astronomically large search
space: for ``n = 10`` categories and grid resolution ``d = 100`` there are
about ``1.98e126`` candidate matrices.
"""

from __future__ import annotations

import math

from repro.analysis.report import format_paper_vs_measured
from repro.core.search_space import log10_rr_matrix_combinations, rr_matrix_combinations
from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.registry import register_experiment

#: The paper's quoted count for n = 10, d = 100.
PAPER_COUNT_LOG10 = math.log10(1.98) + 126


def run_fact1(*, seed: int = 0, n_categories: int = 10, d: int = 100) -> ExperimentResult:
    """Recompute the search-space size and compare against the paper's figure."""
    log10_count = log10_rr_matrix_combinations(n_categories, d)
    # Reproduced when our count matches the paper's 1.98e126 within 1% in log
    # space (the paper rounds to three significant digits).
    reproduced = abs(log10_count - PAPER_COUNT_LOG10) < 0.01 * PAPER_COUNT_LOG10
    mantissa = 10 ** (log10_count - math.floor(log10_count))
    measured = f"{mantissa:.2f}e{int(math.floor(log10_count))} combinations (n={n_categories}, d={d})"
    summary = (
        format_paper_vs_measured(
            "fact1",
            "for n=10 and d=100 the search space has about 1.98e126 RR matrices",
            measured,
            reproduced,
        ),
    )
    metrics = {
        "log10_combinations": log10_count,
        "small_case_n2_d4": float(rr_matrix_combinations(2, 4)),
        "small_case_n3_d3": float(rr_matrix_combinations(3, 3)),
    }
    return ExperimentResult(
        experiment_id="fact1",
        reproduced=reproduced,
        summary=summary,
        metrics=metrics,
    )


register_experiment(
    ExperimentSpec(
        experiment_id="fact1",
        paper_artifact="Fact 1",
        description="Search-space size of discretised RR matrices",
        paper_claim="n=10, d=100 gives about 1.98e126 candidate matrices",
        parameters={"n_categories": 10, "d": 100},
        runner=run_fact1,
        accepted_overrides=("n_categories", "d"),
    )
)
