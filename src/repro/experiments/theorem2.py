"""Theorem 2: the Warner, UP and FRAPP solution sets are identical.

The experiment sweeps all three families over matched parameter grids,
verifies that every UP / FRAPP matrix equals the Warner matrix with the
corresponding retention probability, and confirms that the resulting
(privacy, utility) solution sets coincide.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.front import ParetoFront
from repro.analysis.report import format_paper_vs_measured
from repro.data.synthetic import normal_distribution
from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.registry import register_experiment
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.family import FrappFamily, UniformPerturbationFamily
from repro.rr.schemes import warner_equivalent_p, warner_matrix

N_CATEGORIES = 10
N_RECORDS = 10_000
N_POINTS = 201


def run_theorem2(*, seed: int = 0, n_categories: int = N_CATEGORIES) -> ExperimentResult:
    """Verify Theorem 2 numerically."""
    prior = normal_distribution(n_categories)
    evaluator = MatrixEvaluator(prior, N_RECORDS, delta=None)

    # 1. Matrix-level equivalence: every UP / FRAPP matrix is a Warner matrix.
    up_family = UniformPerturbationFamily(n_categories)
    frapp_family = FrappFamily(n_categories)
    max_matrix_gap = 0.0
    for q in up_family.parameter_grid(51):
        p = warner_equivalent_p(n_categories, q=float(q))
        gap = np.abs(
            up_family.matrix(float(q)).probabilities - warner_matrix(n_categories, p).probabilities
        ).max()
        max_matrix_gap = max(max_matrix_gap, float(gap))
    for gamma in frapp_family.parameter_grid(51):
        p = warner_equivalent_p(n_categories, gamma=float(gamma))
        gap = np.abs(
            frapp_family.matrix(float(gamma)).probabilities
            - warner_matrix(n_categories, p).probabilities
        ).max()
        max_matrix_gap = max(max_matrix_gap, float(gap))

    # 2. Solution-set equivalence: on a matched grid of induced diagonal
    # values, the three schemes yield identical (privacy, utility) solutions.
    evaluator_points: dict[str, list[tuple[float, float]]] = {
        "warner": [],
        "uniform-perturbation": [],
        "frapp": [],
    }
    max_objective_gap = 0.0
    diagonals = np.linspace(1.0 / n_categories + 1e-6, 1.0 - 1e-6, N_POINTS)
    for diagonal in diagonals:
        p = float(diagonal)
        q = (diagonal * n_categories - 1.0) / (n_categories - 1.0)
        gamma = diagonal * (n_categories - 1.0) / (1.0 - diagonal)
        matched = {
            "warner": warner_matrix(n_categories, p),
            "uniform-perturbation": up_family.matrix(float(q)),
            "frapp": frapp_family.matrix(float(gamma)),
        }
        evaluations = {name: evaluator.evaluate(matrix) for name, matrix in matched.items()}
        reference = evaluations["warner"]
        for name, evaluation in evaluations.items():
            evaluator_points[name].append((evaluation.privacy, evaluation.utility))
            max_objective_gap = max(
                max_objective_gap,
                abs(evaluation.privacy - reference.privacy),
                abs(evaluation.utility - reference.utility),
            )

    fronts = {
        name: ParetoFront.from_points(name, pairs) for name, pairs in evaluator_points.items()
    }

    reproduced = max_matrix_gap < 1e-9 and max_objective_gap < 1e-9
    measured = (
        f"max matrix element gap {max_matrix_gap:.2e}; max objective gap "
        f"{max_objective_gap:.2e} over {N_POINTS} matched parameter values"
    )
    summary = (
        format_paper_vs_measured(
            "thm2",
            "the Warner, UP and FRAPP schemes generate identical solution sets",
            measured,
            reproduced,
        ),
    )
    return ExperimentResult(
        experiment_id="thm2",
        fronts=fronts,
        comparison=None,
        reproduced=reproduced,
        summary=summary,
        metrics={"max_matrix_gap": max_matrix_gap, "max_front_gap": max_objective_gap},
    )


register_experiment(
    ExperimentSpec(
        experiment_id="thm2",
        paper_artifact="Theorem 2",
        description="Warner / UP / FRAPP parameter sweeps produce the identical solution set",
        paper_claim="the solution sets of the Warner, UP and FRAPP schemes are identical",
        parameters={"n_categories": N_CATEGORIES, "n_records": N_RECORDS},
        runner=run_theorem2,
        accepted_overrides=("n_categories",),
    )
)
