"""Generic content-addressed grid execution with retry and quarantine.

Both orchestration subsystems — multi-seed experiment campaigns
(:mod:`repro.experiments.campaign`) and downstream-mining pipelines
(:mod:`repro.pipeline`) — share the same execution shape: a deterministic
grid of independent tasks, each fully described by a JSON-compatible payload,
executed serially or across disposable worker processes, with per-task
results stored in a content-addressed on-disk cache as canonical JSON
documents.  This module factors that shape out so every grid-shaped workload
gets the same guarantees:

* **Order independence.**  Results are collected by grid position, never by
  completion order, so worker count cannot change the outcome.
* **Cache/fresh interchangeability.**  Fresh results round-trip through the
  same canonical document that the cache stores, so a cached replay is
  bit-for-bit the same data as a cold run.
* **Resilience.**  A :class:`RetryPolicy` grants each cell a bounded number
  of attempts with capped deterministic exponential backoff, an optional
  per-cell wall-clock timeout enforced by killing and replacing the worker
  process (:mod:`repro.experiments.procpool`), and — with ``keep_going`` —
  poison-cell quarantine: a cell that exhausts its attempts is recorded in
  the :class:`GridReport` failure manifest while the rest of the grid runs
  to completion.  Without ``keep_going`` the default remains fail-fast: the
  first exhausted cell aborts the grid (and kills the in-flight workers).
* **Corruption tolerance.**  Cache entries that no longer decode — torn
  writes, truncation, bit rot — are *quarantined* (renamed to
  ``*.json.corrupt`` with a logged warning) rather than silently shadowing
  the cell, and the cell re-runs.

The chaos suite (``tests/faults/``) drives these guarantees through the
deterministic fault-injection hooks of :mod:`repro.faults`, which are inert
no-ops unless a fault plan is active.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.core.driver import DEFAULT_CHECKPOINT_EVERY, CheckpointScope, checkpoint_scope
from repro.exceptions import GridCellError, ValidationError
from repro.experiments.procpool import AttemptOutcome, ProcessCellRunner
from repro.faults.injector import corrupt_stored_document, fire_cell_faults
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Manifest schema version emitted by :meth:`GridReport.failure_manifest`.
FAILURE_MANIFEST_VERSION = 1


def _run_cell(
    bundle: tuple[Callable[[Any], dict[str, Any]], Any, str | None, str, int, int, int],
) -> dict[str, Any]:
    """Execute one grid-cell attempt under its checkpoint scope.

    Module-level so worker processes can pickle it by reference.  Every
    optimizer run the cell performs claims a ``<token>-<i>.json`` checkpoint
    file inside ``directory`` and auto-resumes from it, so a cell that was
    killed mid-optimization (or timed out and was replaced) continues from
    its last checkpoint instead of recomputing — and, by the driver's resume
    invariant, still produces the byte-identical result document.  The
    cell's partial checkpoints are deleted only after the result document is
    safely collected and cached (in the grid's collection step, not here — a
    crash between the cell finishing and the result landing must not lose
    the partials).
    """
    worker, payload, directory, token, every, index, attempt = bundle
    fire_cell_faults(index, attempt)
    if directory is None:
        return worker(payload)
    with checkpoint_scope(directory, token=token, every=every):
        return worker(payload)


class DocumentCache:
    """Content-addressed on-disk store of canonical JSON documents.

    One JSON file per key, named ``<key>.json``.  Writes go through a
    temporary file plus :func:`os.replace` so concurrent processes sharing a
    cache directory never observe partial documents.

    Parameters
    ----------
    directory:
        Cache directory; created (with parents) when missing.
    document_type:
        Expected ``type`` field of stored documents.  Entries with any other
        type count as misses, so unrelated caches can never cross-replay.
    """

    def __init__(self, directory: str | Path, *, document_type: str) -> None:
        self.directory = Path(directory)
        self.document_type = document_type
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for_key(self, key: str) -> Path:
        """Where the document for ``key`` lives (whether or not it exists)."""
        return self.directory / f"{key}.json"

    def load_document(self, key: str) -> dict[str, Any] | None:
        """Return the cached document for ``key``, or None on a miss.

        A *mistyped* entry (some other cache's document type) is a plain
        miss — unrelated caches may share a directory.  An *undecodable*
        entry (invalid JSON, or not a JSON object) is quarantined: renamed
        to ``<key>.json.corrupt`` with a logged warning, so the corruption
        is preserved for forensics instead of being silently overwritten,
        and the cell re-runs.
        """
        path = self.path_for_key(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            document = json.loads(text)
        except ValueError:
            self.quarantine_entry(key, "entry is not decodable JSON")
            return None
        if not isinstance(document, dict):
            self.quarantine_entry(key, "entry is not a JSON object")
            return None
        if document.get("type") != self.document_type:
            return None
        return document

    def quarantine_entry(self, key: str, reason: str) -> Path | None:
        """Rename ``key``'s entry to ``<key>.json.corrupt`` and warn.

        Returns the quarantine path, or None when the entry vanished (e.g.
        a concurrent process already quarantined it).  A later
        :meth:`store_document` for the same key writes a fresh entry; the
        quarantined file stays behind as evidence.
        """
        path = self.path_for_key(key)
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        logger.warning(
            "cache: quarantined %s -> %s (%s)", path.name, target.name, reason
        )
        return target

    def store_document(self, key: str, document: dict[str, Any]) -> Path:
        """Atomically write ``key``'s document (canonical JSON) and return
        its path."""
        path = self.path_for_key(key)
        descriptor, temporary = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(document, indent=2, sort_keys=True))
            os.replace(temporary, path)
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        return path


@dataclass(frozen=True)
class RetryPolicy:
    """How a grid treats failing cells.

    Attributes
    ----------
    max_attempts:
        Attempts granted to each cell (>= 1).  The default of 1 means no
        retries — identical to the historical fail-fast grid.
    backoff_base:
        Backoff before the second attempt, in seconds.  Attempt ``n`` waits
        ``min(backoff_cap, backoff_base * 2**(n-1))`` — deterministic capped
        exponential backoff, no jitter (reproducibility beats thundering-herd
        avoidance at this scale).
    backoff_cap:
        Upper bound on a single backoff, in seconds.
    cell_timeout:
        Per-attempt wall-clock limit in seconds.  Enforcement requires
        process isolation, so setting it routes the grid through
        :class:`~repro.experiments.procpool.ProcessCellRunner` even when
        ``n_jobs == 1``.  ``None`` disables the limit.
    keep_going:
        Quarantine cells that exhaust their attempts (recording them in the
        :class:`GridReport`) and keep running the rest, instead of aborting
        the whole grid on the first poison cell.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    cell_timeout: float | None = None
    keep_going: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValidationError("backoff_base and backoff_cap must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValidationError(
                f"cell_timeout must be positive, got {self.cell_timeout}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic backoff after failed attempt number ``attempt``."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


#: The historical grid behaviour: one attempt, fail fast, no timeout.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class CellAttempt:
    """One attempt at one grid cell, as recorded in the failure manifest."""

    attempt: int
    status: str  # "ok" | "error" | "timeout" | "crash"
    error: str = ""
    backoff_seconds: float = 0.0

    def to_document(self) -> dict[str, Any]:
        """Canonical JSON form (deterministic for a fixed policy+faults)."""
        return {
            "attempt": self.attempt,
            "status": self.status,
            "error": self.error or None,
            "backoff_seconds": self.backoff_seconds,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "CellAttempt":
        return cls(
            attempt=int(document["attempt"]),
            status=str(document["status"]),
            error=str(document.get("error") or ""),
            backoff_seconds=float(document.get("backoff_seconds", 0.0)),
        )


@dataclass(frozen=True)
class CellFailure:
    """A quarantined grid cell: every attempt exhausted, no result."""

    index: int
    key: str
    attempts: tuple[CellAttempt, ...]

    @property
    def message(self) -> str:
        """The last attempt's failure description."""
        return self.attempts[-1].error if self.attempts else ""


@dataclass(frozen=True)
class GridOutcome:
    """One executed grid cell.

    Attributes
    ----------
    value:
        The parsed task result (whatever ``parse`` returned).
    document:
        The canonical JSON document the result round-tripped through.
    from_cache:
        Whether the result was replayed from the cache.
    """

    value: Any
    document: dict[str, Any]
    from_cache: bool


@dataclass(frozen=True)
class GridReport:
    """Everything a grid run produced, including what went wrong.

    Attributes
    ----------
    outcomes:
        One entry per payload in grid order; ``None`` where the cell was
        quarantined.
    failures:
        The quarantined cells (empty on a clean run).
    attempt_histories:
        Attempt-by-attempt record for every cell that failed at least once —
        including cells that *recovered* on a retry (their history ends with
        an ``ok`` attempt).  Cells that succeeded first try do not appear.
    """

    outcomes: tuple[GridOutcome | None, ...]
    failures: tuple[CellFailure, ...] = ()
    attempt_histories: Mapping[int, tuple[CellAttempt, ...]] = field(
        default_factory=dict
    )

    @property
    def complete(self) -> bool:
        """Whether every cell produced a result."""
        return not self.failures

    def require_complete(self) -> list[GridOutcome]:
        """The outcomes, raising :class:`GridCellError` on any quarantine."""
        if self.failures:
            first = self.failures[0]
            raise GridCellError(
                f"{len(self.failures)} grid cell(s) failed after exhausting "
                f"their attempts; first: cell {first.index} ({first.key}): "
                f"{first.message}",
                failure=first,
            )
        return [outcome for outcome in self.outcomes if outcome is not None]

    def failure_manifest(
        self, describe: Callable[[int], Mapping[str, Any]] | None = None
    ) -> dict[str, Any] | None:
        """Structured record of retries and quarantines, or ``None``.

        Returns ``None`` when nothing failed — callers attach the manifest
        to result documents only when it exists, which keeps fault-free
        aggregates byte-identical to a build without the resilience layer.
        ``describe(index)`` may contribute domain labels (experiment id,
        seed, scheme...) to each cell entry.
        """
        if not self.attempt_histories:
            return None
        quarantined = {failure.index for failure in self.failures}
        cells: list[dict[str, Any]] = []
        for index in sorted(self.attempt_histories):
            entry: dict[str, Any] = {
                "index": index,
                "quarantined": index in quarantined,
            }
            if describe is not None:
                entry.update(describe(index))
            entry["attempts"] = [
                attempt.to_document() for attempt in self.attempt_histories[index]
            ]
            cells.append(entry)
        return {
            "type": "failure_manifest",
            "format_version": FAILURE_MANIFEST_VERSION,
            "quarantined_cells": sorted(quarantined),
            "cells": cells,
        }


def run_grid(
    payloads: Sequence[Any],
    worker: Callable[[Any], dict[str, Any]],
    *,
    parse: Callable[[dict[str, Any]], Any],
    keys: Sequence[str] | None = None,
    cache: DocumentCache | None = None,
    n_jobs: int = 1,
    on_task_done: Callable[[int, bool], None] | None = None,
    label: str = "grid",
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
) -> GridReport:
    """Run a grid of independent tasks under a retry policy.

    Parameters
    ----------
    payloads:
        One JSON/pickle-compatible payload per grid cell, in canonical grid
        order.  ``worker(payload)`` must return the cell's canonical result
        document (plain JSON-compatible data).
    worker:
        Module-level callable executing one cell (pickled by reference when
        it runs in a worker process).
    parse:
        Deserializer applied to every document — cached and fresh alike — so
        both paths return identical values.  A *cached* document that raises
        is quarantined (``*.json.corrupt``) and the cell re-runs; one that
        parses to None is a plain miss.  A fresh document failing to parse
        is a programming error and propagates.
    keys:
        Cache key per cell (required when ``cache`` is given).
    cache:
        Content-addressed document cache; ``None`` disables caching.
    n_jobs:
        Worker processes; ``1`` runs cells in this process — unless
        ``policy.cell_timeout`` is set, which forces process isolation so a
        hung cell can be killed.
    on_task_done:
        Optional progress callback invoked as ``(index, from_cache)`` when
        each cell finishes (completion order).
    label:
        Human-readable workload name used in log lines.
    checkpoint_dir:
        Directory for per-cell partial checkpoints.  Each cell attempt runs
        inside a :func:`~repro.core.driver.checkpoint_scope` keyed by its
        cache key (or grid index), so optimizer runs inside an interrupted
        cell — killed grid, crashed worker, or timed-out attempt — resume
        from their last checkpoint on the next attempt instead of
        recomputing the cell from scratch.  ``None`` disables cell
        checkpointing.
    checkpoint_every:
        Checkpoint cadence (generations) for the cell scopes.
    policy:
        Retry/timeout/quarantine behaviour; the default is the historical
        single-attempt fail-fast grid.

    Returns
    -------
    GridReport
        Outcomes in grid order (``None`` for quarantined cells), the
        quarantined-cell failures, and per-cell attempt histories.
    """
    if cache is not None and keys is None:
        raise ValueError("keys are required when a cache is given")
    if keys is not None and len(keys) != len(payloads):
        raise ValueError(f"{len(payloads)} payloads but {len(keys)} keys")

    values: dict[int, Any] = {}
    documents: dict[int, dict[str, Any]] = {}
    from_cache: dict[int, bool] = {}
    histories: dict[int, tuple[CellAttempt, ...]] = {}
    failures: list[CellFailure] = []
    pending: list[int] = []
    for index in range(len(payloads)):
        cached = cache.load_document(keys[index]) if cache is not None else None
        if cached is not None:
            try:
                value = parse(cached)
            except Exception as exc:
                # A cached document that decodes but no longer parses is
                # corrupt state, not a plain miss: preserve it for forensics
                # and re-run the cell.
                cache.quarantine_entry(
                    keys[index], f"cached document failed to parse: {exc}"
                )
                value = None
            if value is not None:
                values[index] = value
                documents[index] = cached
                from_cache[index] = True
                if on_task_done is not None:
                    on_task_done(index, True)
                continue
        pending.append(index)

    checkpoint_root = str(checkpoint_dir) if checkpoint_dir is not None else None

    def token_for(index: int) -> str:
        return keys[index] if keys is not None else f"cell-{index}"

    def bundle(index: int, attempt: int) -> tuple:
        return (
            worker, payloads[index], checkpoint_root, token_for(index),
            checkpoint_every, index, attempt,
        )

    def finish(index: int, document: dict[str, Any], attempt: int) -> None:
        # Fresh results also pass through the canonical document, so a later
        # cache replay is bit-for-bit the same data as this run.
        values[index] = parse(document)
        documents[index] = document
        from_cache[index] = False
        if cache is not None:
            stored = cache.store_document(keys[index], document)
            corrupt_stored_document(stored, index, attempt)
        if checkpoint_root is not None:
            # The result is collected (and cached); only now are the cell's
            # partial checkpoints redundant.
            CheckpointScope(directory=Path(checkpoint_root), token=token_for(index)).clear()
        if on_task_done is not None:
            on_task_done(index, False)

    def quarantine(index: int, attempts: list[CellAttempt]) -> CellFailure:
        failure = CellFailure(
            index=index, key=token_for(index), attempts=tuple(attempts)
        )
        failures.append(failure)
        logger.error(
            "%s: cell %d (%s) quarantined after %d attempt(s): %s",
            label, index, failure.key, len(attempts), failure.message,
        )
        return failure

    if pending:
        logger.info(
            "%s: running %d/%d tasks (%d cache hits) on %d worker(s)",
            label, len(pending), len(payloads), len(payloads) - len(pending),
            max(1, n_jobs),
        )

    use_processes = bool(pending) and (
        policy.cell_timeout is not None or (n_jobs > 1 and len(pending) > 1)
    )
    if not use_processes:
        _run_serial(pending, bundle, finish, quarantine, histories, policy, label)
    else:
        _run_isolated(
            pending, bundle, finish, quarantine, histories, policy, label,
            n_jobs=n_jobs, token_for=token_for,
        )

    return GridReport(
        outcomes=tuple(
            GridOutcome(
                value=values[index],
                document=documents[index],
                from_cache=from_cache[index],
            )
            if index in values
            else None
            for index in range(len(payloads))
        ),
        failures=tuple(failures),
        attempt_histories=histories,
    )


def _run_serial(
    pending: list[int],
    bundle: Callable[[int, int], tuple],
    finish: Callable[[int, dict[str, Any], int], None],
    quarantine: Callable[[int, list[CellAttempt]], CellFailure],
    histories: dict[int, tuple[CellAttempt, ...]],
    policy: RetryPolicy,
    label: str,
) -> None:
    """In-process execution: retries and backoff, but no timeout or crash
    isolation (a worker that dies takes this process with it)."""
    for index in pending:
        attempts: list[CellAttempt] = []
        attempt = 1
        while True:
            try:
                document = _run_cell(bundle(index, attempt))
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                if attempt < policy.max_attempts:
                    backoff = policy.backoff_seconds(attempt)
                    attempts.append(CellAttempt(attempt, "error", message, backoff))
                    logger.warning(
                        "%s: cell %d attempt %d failed (%s); retrying in %.2fs",
                        label, index, attempt, message, backoff,
                    )
                    time.sleep(backoff)
                    attempt += 1
                    continue
                attempts.append(CellAttempt(attempt, "error", message))
                histories[index] = tuple(attempts)
                if policy.keep_going:
                    quarantine(index, attempts)
                    break
                raise
            else:
                if attempts:
                    attempts.append(CellAttempt(attempt, "ok"))
                    histories[index] = tuple(attempts)
                finish(index, document, attempt)
                break


def _run_isolated(
    pending: list[int],
    bundle: Callable[[int, int], tuple],
    finish: Callable[[int, dict[str, Any], int], None],
    quarantine: Callable[[int, list[CellAttempt]], CellFailure],
    histories: dict[int, tuple[CellAttempt, ...]],
    policy: RetryPolicy,
    label: str,
    *,
    n_jobs: int,
    token_for: Callable[[int], str],
) -> None:
    """Process-isolated execution: kill-and-replace timeouts, crash
    classification, asynchronous backoff."""
    in_flight: dict[int, list[CellAttempt]] = {}

    def on_outcome(outcome: AttemptOutcome) -> float | None:
        index, attempt = outcome.index, outcome.attempt
        if outcome.status == "ok":
            record = in_flight.pop(index, None)
            if record is not None:
                record.append(CellAttempt(attempt, "ok"))
                histories[index] = tuple(record)
            assert outcome.document is not None
            finish(index, outcome.document, attempt)
            return None
        message = outcome.message
        record = in_flight.setdefault(index, [])
        if attempt < policy.max_attempts:
            backoff = policy.backoff_seconds(attempt)
            record.append(CellAttempt(attempt, outcome.status, message, backoff))
            logger.warning(
                "%s: cell %d attempt %d failed (%s); retrying in %.2fs",
                label, index, attempt, message, backoff,
            )
            return backoff
        record.append(CellAttempt(attempt, outcome.status, message))
        histories[index] = tuple(record)
        in_flight.pop(index, None)
        if policy.keep_going:
            quarantine(index, record)
            return None
        if outcome.error is not None:
            # Re-raise the worker's real exception so callers keep their
            # exception-type contracts (the runner kills remaining workers).
            raise outcome.error
        raise GridCellError(
            f"{label}: cell {index} ({token_for(index)}) failed: {message}",
            failure=CellFailure(index, token_for(index), tuple(record)),
        )

    runner = ProcessCellRunner(
        _run_cell,
        bundle,
        max_workers=min(max(1, n_jobs), len(pending)),
        cell_timeout=policy.cell_timeout,
    )
    runner.drive(pending, on_outcome)


def execute_grid(
    payloads: Sequence[Any],
    worker: Callable[[Any], dict[str, Any]],
    *,
    parse: Callable[[dict[str, Any]], Any],
    keys: Sequence[str] | None = None,
    cache: DocumentCache | None = None,
    n_jobs: int = 1,
    on_task_done: Callable[[int, bool], None] | None = None,
    label: str = "grid",
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
) -> list[GridOutcome]:
    """Run a grid and require every cell to produce a result.

    Thin wrapper over :func:`run_grid` for callers that have no use for a
    partial grid: quarantined cells (possible only with
    ``policy.keep_going``) raise :class:`GridCellError`.  See
    :func:`run_grid` for parameter semantics.
    """
    report = run_grid(
        payloads,
        worker,
        parse=parse,
        keys=keys,
        cache=cache,
        n_jobs=n_jobs,
        on_task_done=on_task_done,
        label=label,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        policy=policy,
    )
    return report.require_complete()
