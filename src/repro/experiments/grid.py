"""Generic content-addressed grid execution.

Both orchestration subsystems — multi-seed experiment campaigns
(:mod:`repro.experiments.campaign`) and downstream-mining pipelines
(:mod:`repro.pipeline`) — share the same execution shape: a deterministic
grid of independent tasks, each fully described by a JSON-compatible payload,
executed serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
with per-task results stored in a content-addressed on-disk cache as canonical
JSON documents.  This module factors that shape out so every grid-shaped
workload gets the same guarantees:

* **Order independence.**  Results are collected by grid position, never by
  completion order, so worker count cannot change the outcome.
* **Cache/fresh interchangeability.**  Fresh results round-trip through the
  same canonical document that the cache stores, so a cached replay is
  bit-for-bit the same data as a cold run.
* **Fail-fast.**  A failing task cancels the still-queued remainder of the
  grid instead of running it to completion first.
"""

from __future__ import annotations

import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.driver import DEFAULT_CHECKPOINT_EVERY, CheckpointScope, checkpoint_scope
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def _run_cell(
    bundle: tuple[Callable[[Any], dict[str, Any]], Any, str | None, str, int],
) -> dict[str, Any]:
    """Execute one grid cell under its checkpoint scope.

    Module-level so the process pool can pickle it by reference.  Every
    optimizer run the cell performs claims a ``<token>-<i>.json`` checkpoint
    file inside ``directory`` and auto-resumes from it, so a cell that was
    killed mid-optimization continues from its last checkpoint instead of
    recomputing — and, by the driver's resume invariant, still produces the
    byte-identical result document.  The cell's partial checkpoints are
    deleted only after the result document is safely collected and cached
    (in ``execute_grid``'s collection step, not here — a crash between the
    cell finishing and the result landing must not lose the partials).
    """
    worker, payload, directory, token, every = bundle
    if directory is None:
        return worker(payload)
    with checkpoint_scope(directory, token=token, every=every):
        return worker(payload)


class DocumentCache:
    """Content-addressed on-disk store of canonical JSON documents.

    One JSON file per key, named ``<key>.json``.  Writes go through a
    temporary file plus :func:`os.replace` so concurrent processes sharing a
    cache directory never observe partial documents.

    Parameters
    ----------
    directory:
        Cache directory; created (with parents) when missing.
    document_type:
        Expected ``type`` field of stored documents.  Entries with any other
        type count as misses, so unrelated caches can never cross-replay.
    """

    def __init__(self, directory: str | Path, *, document_type: str) -> None:
        self.directory = Path(directory)
        self.document_type = document_type
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for_key(self, key: str) -> Path:
        """Where the document for ``key`` lives (whether or not it exists)."""
        return self.directory / f"{key}.json"

    def load_document(self, key: str) -> dict[str, Any] | None:
        """Return the cached document for ``key``, or None on a miss.

        Unreadable or mistyped entries count as misses (the task simply
        re-runs and overwrites them).
        """
        try:
            document = json.loads(self.path_for_key(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict) or document.get("type") != self.document_type:
            return None
        return document

    def store_document(self, key: str, document: dict[str, Any]) -> Path:
        """Atomically write ``key``'s document (canonical JSON) and return
        its path."""
        path = self.path_for_key(key)
        descriptor, temporary = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(document, indent=2, sort_keys=True))
            os.replace(temporary, path)
        except BaseException:
            try:
                os.unlink(temporary)
            except OSError:
                pass
            raise
        return path


@dataclass(frozen=True)
class GridOutcome:
    """One executed grid cell.

    Attributes
    ----------
    value:
        The parsed task result (whatever ``parse`` returned).
    document:
        The canonical JSON document the result round-tripped through.
    from_cache:
        Whether the result was replayed from the cache.
    """

    value: Any
    document: dict[str, Any]
    from_cache: bool


def execute_grid(
    payloads: Sequence[Any],
    worker: Callable[[Any], dict[str, Any]],
    *,
    parse: Callable[[dict[str, Any]], Any],
    keys: Sequence[str] | None = None,
    cache: DocumentCache | None = None,
    n_jobs: int = 1,
    on_task_done: Callable[[int, bool], None] | None = None,
    label: str = "grid",
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
) -> list[GridOutcome]:
    """Run a grid of independent tasks, in parallel when ``n_jobs > 1``.

    Parameters
    ----------
    payloads:
        One JSON/pickle-compatible payload per grid cell, in canonical grid
        order.  ``worker(payload)`` must return the cell's canonical result
        document (plain JSON-compatible data).
    worker:
        Module-level callable executing one cell (pickled by reference when
        ``n_jobs > 1``).
    parse:
        Deserializer applied to every document — cached and fresh alike — so
        both paths return identical values.  When a *cached* document fails
        to parse (raises or returns None) the entry counts as a miss and the
        cell re-runs; a fresh document failing to parse is a programming
        error and propagates.
    keys:
        Cache key per cell (required when ``cache`` is given).
    cache:
        Content-addressed document cache; ``None`` disables caching.
    n_jobs:
        Worker processes; ``1`` runs everything in this process.
    on_task_done:
        Optional progress callback invoked as ``(index, from_cache)`` when
        each cell finishes (completion order).
    label:
        Human-readable workload name used in log lines.
    checkpoint_dir:
        Directory for per-cell partial checkpoints.  Each cell runs inside a
        :func:`~repro.core.driver.checkpoint_scope` keyed by its cache key
        (or grid index), so optimizer runs inside an interrupted cell resume
        from their last checkpoint when the grid re-runs, instead of
        recomputing the cell from scratch.  ``None`` disables cell
        checkpointing.
    checkpoint_every:
        Checkpoint cadence (generations) for the cell scopes.

    Returns
    -------
    list[GridOutcome]
        One outcome per payload, in grid order — independent of completion
        order, worker count and cache state.
    """
    if cache is not None and keys is None:
        raise ValueError("keys are required when a cache is given")
    if keys is not None and len(keys) != len(payloads):
        raise ValueError(f"{len(payloads)} payloads but {len(keys)} keys")

    values: dict[int, Any] = {}
    documents: dict[int, dict[str, Any]] = {}
    from_cache: dict[int, bool] = {}
    pending: list[int] = []
    for index in range(len(payloads)):
        cached = cache.load_document(keys[index]) if cache is not None else None
        if cached is not None:
            try:
                value = parse(cached)
            except Exception:
                value = None
            if value is not None:
                values[index] = value
                documents[index] = cached
                from_cache[index] = True
                if on_task_done is not None:
                    on_task_done(index, True)
                continue
        pending.append(index)

    def finish(index: int, document: dict[str, Any]) -> None:
        # Fresh results also pass through the canonical document, so a later
        # cache replay is bit-for-bit the same data as this run.
        values[index] = parse(document)
        documents[index] = document
        from_cache[index] = False
        if cache is not None:
            cache.store_document(keys[index], document)
        if checkpoint_root is not None:
            # The result is collected (and cached); only now are the cell's
            # partial checkpoints redundant.
            CheckpointScope(directory=Path(checkpoint_root), token=token_for(index)).clear()
        if on_task_done is not None:
            on_task_done(index, False)

    if pending:
        logger.info(
            "%s: running %d/%d tasks (%d cache hits) on %d worker(s)",
            label, len(pending), len(payloads), len(payloads) - len(pending),
            max(1, n_jobs),
        )

    checkpoint_root = str(checkpoint_dir) if checkpoint_dir is not None else None

    def token_for(index: int) -> str:
        return keys[index] if keys is not None else f"cell-{index}"

    def bundle(index: int) -> tuple:
        return (worker, payloads[index], checkpoint_root, token_for(index), checkpoint_every)

    if n_jobs <= 1 or len(pending) <= 1:
        for index in pending:
            finish(index, _run_cell(bundle(index)))
    else:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(pending))) as executor:
            futures = {
                executor.submit(_run_cell, bundle(index)): index for index in pending
            }
            try:
                for future in as_completed(futures):
                    finish(futures[future], future.result())
            except BaseException:
                # Fail fast: without this, the executor shutdown would run
                # every still-queued task to completion before re-raising.
                for queued in futures:
                    queued.cancel()
                raise

    return [
        GridOutcome(value=values[index], document=documents[index], from_cache=from_cache[index])
        for index in range(len(payloads))
    ]
