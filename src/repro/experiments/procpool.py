"""Kill-and-replace process execution for resilient grids.

:class:`concurrent.futures.ProcessPoolExecutor` cannot express the
resilience semantics the grid executor needs: killing a hung worker breaks
the whole pool (every sibling future collapses into
``BrokenProcessPool``), and there is no per-task wall-clock deadline at
all.  This module runs each grid-cell *attempt* in its own
:class:`multiprocessing.Process` connected by a pipe, so the parent can

* enforce a per-cell timeout by terminating exactly that process and
  scheduling a replacement attempt,
* classify a worker that died without reporting (crash — the pipe hits EOF)
  separately from one that raised (the exception object travels back over
  the pipe and can be re-raised verbatim),
* run retry backoffs asynchronously: a cell waiting out its backoff does
  not block the other cells' progress.

Retry policy, attempt accounting and quarantine decisions stay with the
caller (:mod:`repro.experiments.grid`) through callbacks; this module owns
only process lifecycle and timing.  It is one of the repro-lint ``RL002``
allowlisted timing sites: deadlines and backoff scheduling need a monotonic
clock, and nothing measured here can reach a result document.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as wait_for_connections
from typing import Any, Callable

from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Upper bound on one scheduler pause (seconds): the loop wakes at least
#: this often to start due retries even when no connection turns readable.
MAX_POLL_SECONDS = 0.25

#: Grace period after ``terminate()`` before escalating to ``kill()``.
TERMINATE_GRACE_SECONDS = 2.0


def _attempt_process_main(
    runner: Callable[[Any], dict[str, Any]], bundle: Any, connection: Connection
) -> None:
    """Child entry point: run the attempt, ship the outcome over the pipe.

    Ships ``("ok", document)`` or ``("error", exception)`` — the exception
    object itself when it pickles (so the parent re-raises the real thing),
    a rendered fallback otherwise.  A child that dies before sending
    anything leaves the pipe at EOF, which the parent classifies as a
    crash.
    """
    try:
        document = runner(bundle)
    except BaseException as exc:  # repro-lint: allow[RL007] — shipped to the parent over the pipe, never swallowed
        try:
            connection.send(("error", exc))
        except Exception:  # repro-lint: allow[RL007] — unpicklable payload; the original failure is re-sent rendered on the next line
            connection.send(("error", RuntimeError(f"{type(exc).__name__}: {exc}")))
        return
    connection.send(("ok", document))


@dataclass
class AttemptOutcome:
    """What one process-isolated attempt produced."""

    index: int
    attempt: int
    status: str  # "ok" | "error" | "timeout" | "crash"
    document: dict[str, Any] | None = None
    error: BaseException | None = None

    @property
    def message(self) -> str:
        """Human-readable failure description (empty for ``ok``)."""
        if self.status == "ok":
            return ""
        if self.status == "error" and self.error is not None:
            return f"{type(self.error).__name__}: {self.error}"
        if self.status == "timeout":
            return "cell exceeded its wall-clock timeout and was killed"
        return "worker process died without reporting a result"


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    connection: Connection
    index: int
    attempt: int
    deadline: float | None


@dataclass
class _Scheduled:
    ready_at: float
    index: int
    attempt: int
    order: int = field(default=0)


class ProcessCellRunner:
    """Run cell attempts in disposable worker processes.

    Parameters
    ----------
    runner:
        Module-level callable executing one attempt in the child process.
    bundle_for:
        ``(index, attempt)`` → picklable payload for ``runner``.
    max_workers:
        Maximum concurrently running attempt processes.
    cell_timeout:
        Per-attempt wall-clock limit in seconds (None disables the kill).
    """

    def __init__(
        self,
        runner: Callable[[Any], dict[str, Any]],
        bundle_for: Callable[[int, int], Any],
        *,
        max_workers: int,
        cell_timeout: float | None,
    ) -> None:
        self.runner = runner
        self.bundle_for = bundle_for
        self.max_workers = max(1, int(max_workers))
        self.cell_timeout = cell_timeout
        self._context = multiprocessing.get_context()
        self._running: list[_Running] = []
        self._scheduled: list[_Scheduled] = []
        self._order = 0

    # -- public driving --------------------------------------------------------
    def drive(
        self,
        indices: list[int],
        on_outcome: Callable[[AttemptOutcome], float | None],
    ) -> None:
        """Run every cell until ``on_outcome`` stops rescheduling it.

        ``on_outcome`` is invoked in the parent for every finished attempt
        (success, error, timeout or crash) and returns the backoff in
        seconds before a *retry* of that cell, or ``None`` when the cell is
        done (collected or quarantined).  Raising from ``on_outcome``
        aborts the whole grid: every live worker is terminated before the
        exception propagates.
        """
        now = time.monotonic()
        for index in indices:
            self._schedule(index, attempt=1, ready_at=now)
        try:
            while self._scheduled or self._running:
                self._launch_due()
                self._reap(on_outcome)
        finally:
            self._terminate_all()

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, index: int, attempt: int, ready_at: float) -> None:
        self._scheduled.append(_Scheduled(ready_at, index, attempt, self._order))
        self._order += 1

    def _launch_due(self) -> None:
        now = time.monotonic()
        due = sorted(
            (item for item in self._scheduled if item.ready_at <= now),
            key=lambda item: (item.ready_at, item.order),
        )
        for item in due:
            if len(self._running) >= self.max_workers:
                break
            self._scheduled.remove(item)
            self._spawn(item.index, item.attempt)

    def _spawn(self, index: int, attempt: int) -> None:
        parent_end, child_end = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_attempt_process_main,
            args=(self.runner, self.bundle_for(index, attempt), child_end),
            daemon=True,
        )
        process.start()
        child_end.close()
        deadline = (
            time.monotonic() + self.cell_timeout if self.cell_timeout is not None else None
        )
        self._running.append(_Running(process, parent_end, index, attempt, deadline))

    # -- reaping ---------------------------------------------------------------
    def _pause_seconds(self) -> float:
        """How long the scheduler may sleep before something needs action."""
        now = time.monotonic()
        horizon = now + MAX_POLL_SECONDS
        for item in self._running:
            if item.deadline is not None:
                horizon = min(horizon, item.deadline)
        if len(self._running) < self.max_workers:
            for item in self._scheduled:
                horizon = min(horizon, item.ready_at)
        return max(0.0, horizon - now)

    def _reap(self, on_outcome: Callable[[AttemptOutcome], float | None]) -> None:
        if not self._running:
            # Nothing in flight: sleep until the next scheduled retry is due.
            pause = self._pause_seconds()
            if pause > 0:
                time.sleep(pause)
            return
        readable = wait_for_connections(
            [item.connection for item in self._running], timeout=self._pause_seconds()
        )
        finished: list[tuple[_Running, AttemptOutcome]] = []
        now = time.monotonic()
        for item in list(self._running):
            if item.connection in readable:
                finished.append((item, self._collect(item)))
            elif item.deadline is not None and now >= item.deadline:
                self._stop_process(item)
                finished.append(
                    (item, AttemptOutcome(item.index, item.attempt, "timeout"))
                )
        for item, outcome in finished:
            self._running.remove(item)
            item.connection.close()
            item.process.join()
            backoff = on_outcome(outcome)
            if backoff is not None:
                self._schedule(
                    outcome.index, outcome.attempt + 1, time.monotonic() + backoff
                )

    def _collect(self, item: _Running) -> AttemptOutcome:
        try:
            status, payload = item.connection.recv()
        except (EOFError, OSError):
            # The child died (or was killed) before reporting: a crash.
            return AttemptOutcome(item.index, item.attempt, "crash")
        if status == "ok":
            return AttemptOutcome(item.index, item.attempt, "ok", document=payload)
        return AttemptOutcome(item.index, item.attempt, "error", error=payload)

    def _stop_process(self, item: _Running) -> None:
        logger.warning(
            "killing worker for cell %d attempt %d (timeout %.1fs exceeded)",
            item.index, item.attempt, float(self.cell_timeout or 0.0),
        )
        item.process.terminate()
        item.process.join(TERMINATE_GRACE_SECONDS)
        if item.process.is_alive():  # pragma: no cover - terminate() sufficing
            item.process.kill()
            item.process.join()

    def _terminate_all(self) -> None:
        for item in self._running:
            try:
                item.process.terminate()
                item.process.join(TERMINATE_GRACE_SECONDS)
                if item.process.is_alive():  # pragma: no cover - stubborn child
                    item.process.kill()
                    item.process.join()
            except Exception as exc:  # pragma: no cover - teardown is best effort
                logger.warning("could not terminate worker: %s", exc)
            finally:
                item.connection.close()
        self._running.clear()
