"""Parallel multi-seed experiment campaigns.

The paper's claims are statements about *distributions over seeds*; a single
``(experiment, seed)`` run proves nothing about them.  This module runs a
whole grid of ``experiments x seeds`` — optionally across a
:class:`~concurrent.futures.ProcessPoolExecutor` — and aggregates the
per-seed results into the cross-seed statistics the claims are actually
about (:mod:`repro.analysis.aggregate`).

Design invariants
-----------------
* **Determinism.** A campaign is fully described by its
  :class:`CampaignSpec`.  Results are collected by grid position (never by
  completion order), workers ship results as the canonical
  ``experiment_result`` JSON document (:mod:`repro.io`), and aggregation is
  pure — so the same spec yields byte-identical aggregate documents whether
  it ran serially, on eight workers, or entirely from cache.
* **Content-addressed caching.**  Every task is keyed by the SHA-256 of
  ``(package version, experiment id, effective overrides, seed, array
  backend)``.  A cache hit replays the stored document; a miss runs the
  experiment and stores it.
  Changing any input — including upgrading the library — changes the key, so
  stale results can never be replayed.
* **Per-experiment overrides.**  One global override set is applied to a
  heterogeneous grid by restricting it to each spec's ``accepted_overrides``
  (:meth:`~repro.experiments.base.ExperimentSpec.filter_overrides`); the
  cache key uses the restricted set, so ``thm2`` cached with and without an
  irrelevant ``n_generations=50`` is the same entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import repro
from repro.backend.registry import active_backend_name, set_active_backend
from repro.analysis.aggregate import (
    ExperimentAggregate,
    aggregate_campaign_runs,
    aggregate_to_document,
)
from repro.core.driver import DEFAULT_CHECKPOINT_EVERY
from repro.exceptions import ExperimentError, ReproError
from repro.experiments.base import ExperimentResult, environment_override_defaults
from repro.experiments.grid import DocumentCache, RetryPolicy, run_grid
from repro.experiments.registry import find_experiments, get_experiment
from repro.io import (
    dump_canonical_json,
    experiment_result_from_dict,
    experiment_result_to_dict,
)
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Default extra attempts per failing campaign cell (long campaigns hit
#: transient faults; one cheap retry absorbs most of them).
DEFAULT_CAMPAIGN_RETRIES = 1

#: Cache-key prefix; bump when the key derivation itself changes.
#: v2: the array-backend name joined the key (tolerance-exactness backends
#: can produce slightly different fronts, so their results must not be
#: replayed interchangeably).
CACHE_KEY_SCHEMA = "campaign-task-v2"


@dataclass(frozen=True)
class CampaignTask:
    """One cell of the campaign grid: an experiment, a seed, the effective
    (spec-filtered) overrides — stored as sorted items so the task is hashable
    and its cache key is canonical — and the array backend it runs under."""

    experiment_id: str
    seed: int
    overrides: tuple[tuple[str, Any], ...] = ()
    backend: str = "numpy"

    def cache_key(self) -> str:
        """Content-addressed key of this task (includes the package version)."""
        payload = json.dumps(
            {
                "schema": CACHE_KEY_SCHEMA,
                "version": repro.__version__,
                "experiment_id": self.experiment_id,
                "seed": self.seed,
                "overrides": list(self.overrides),
                "backend": self.backend,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignSpec:
    """Static description of a campaign: which experiments, which seeds,
    which overrides.

    Build one with :func:`plan_campaign` (which resolves globs and filters
    overrides) rather than by hand.
    """

    experiments: tuple[str, ...]
    seeds: tuple[int, ...]
    overrides: tuple[tuple[str, Any], ...] = ()
    backend: str = "numpy"

    def tasks(self) -> tuple[CampaignTask, ...]:
        """The grid in canonical order: experiments outer, seeds inner."""
        global_overrides = dict(self.overrides)
        tasks = []
        for experiment_id in self.experiments:
            spec = get_experiment(experiment_id)
            effective = spec.filter_overrides(global_overrides)
            items = tuple(sorted(effective.items()))
            for seed in self.seeds:
                tasks.append(
                    CampaignTask(experiment_id, int(seed), items, self.backend)
                )
        return tuple(tasks)


def plan_campaign(
    patterns: Sequence[str],
    seeds: Sequence[int],
    overrides: Mapping[str, Any] | None = None,
) -> CampaignSpec:
    """Resolve experiment globs and build the campaign specification.

    Budget overrides some experiment accepts but the caller left unset are
    materialized here from the environment-aware defaults
    (``REPRO_GENERATIONS``/``REPRO_POPULATION``): the returned spec fully
    describes the campaign — re-running the same spec object is unaffected
    by later environment changes — and every cache key records the budget a
    task actually ran under, so an environment change can never replay
    results computed under another budget.
    """
    experiments = find_experiments(patterns)
    if not seeds:
        raise ExperimentError("a campaign needs at least one seed")
    merged = dict(overrides or {})
    unknown = [
        key
        for key in sorted(merged)
        if not any(
            key in get_experiment(experiment_id).accepted_overrides
            for experiment_id in experiments
        )
    ]
    if unknown:
        raise ExperimentError(
            f"override(s) {', '.join(map(repr, unknown))} are not accepted by any "
            f"experiment in the campaign {list(experiments)}"
        )
    accepted_anywhere = {
        key
        for experiment_id in experiments
        for key in get_experiment(experiment_id).accepted_overrides
    }
    for key, value in environment_override_defaults().items():
        if key in accepted_anywhere:
            merged.setdefault(key, value)
    return CampaignSpec(
        experiments=experiments,
        seeds=tuple(int(seed) for seed in seeds),
        overrides=tuple(sorted(merged.items())),
        # Materialized like the budget overrides above: the spec fully
        # describes the campaign, and the cache key records the backend each
        # task actually ran under.
        backend=active_backend_name(),
    )


class CampaignCache(DocumentCache):
    """Content-addressed on-disk store of ``experiment_result`` documents.

    A :class:`~repro.experiments.grid.DocumentCache` keyed by
    :meth:`CampaignTask.cache_key`, with task-level convenience wrappers.
    """

    def __init__(self, directory: str | Path) -> None:
        super().__init__(directory, document_type="experiment_result")

    def path_for(self, task: CampaignTask) -> Path:
        """Where ``task``'s result document lives (whether or not it exists)."""
        return self.path_for_key(task.cache_key())

    def load_result(self, task: CampaignTask) -> ExperimentResult | None:
        """Return the cached result for ``task``, or None on a miss.

        Unreadable, mistyped or structurally invalid entries count as misses
        (the task simply re-runs and overwrites them) — a result is only
        returned if the entry deserializes into a full experiment result.
        """
        document = self.load_document(task.cache_key())
        if document is None:
            return None
        return _parse_experiment_document(document)

    def store(self, task: CampaignTask, document: dict[str, Any]) -> Path:
        """Atomically write ``task``'s result document and return its path."""
        return self.store_document(task.cache_key(), document)


def _parse_experiment_document(document: dict[str, Any]) -> ExperimentResult | None:
    try:
        return experiment_result_from_dict(document)
    except (ReproError, KeyError, TypeError, ValueError):
        return None


@dataclass(frozen=True)
class CampaignRunRecord:
    """One executed grid cell: the task, its result and where it came from."""

    task: CampaignTask
    result: ExperimentResult
    from_cache: bool


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a whole campaign.

    Attributes
    ----------
    spec:
        The campaign specification that was run.
    records:
        Per-task records in canonical grid order (experiments outer, seeds
        inner) — independent of completion order.  Quarantined tasks have no
        record.
    aggregates:
        Cross-seed :class:`ExperimentAggregate` per experiment, in grid
        order, over the completed records.
    failures:
        Tasks quarantined after exhausting their attempts (empty on a clean
        run; non-empty only with ``keep_going``).
    failure_manifest:
        Structured retry/quarantine record
        (:meth:`repro.experiments.grid.GridReport.failure_manifest` with
        experiment/seed labels), or ``None`` when nothing failed.
    """

    spec: CampaignSpec
    records: tuple[CampaignRunRecord, ...]
    aggregates: Mapping[str, ExperimentAggregate]
    failures: tuple[CampaignTask, ...] = ()
    failure_manifest: dict[str, Any] | None = None

    @property
    def complete(self) -> bool:
        """Whether every task in the grid produced a result."""
        return not self.failures

    @property
    def n_cache_hits(self) -> int:
        """How many tasks were replayed from the cache."""
        return sum(1 for record in self.records if record.from_cache)

    def aggregate_document(self) -> dict[str, Any]:
        """The aggregates as a JSON-compatible ``campaign_aggregate``
        document (byte-identical across worker counts and cache states).

        The ``failure_manifest`` section appears only when something failed,
        so a fault-free campaign's document is byte-identical to one
        produced without the resilience layer at all.
        """
        document = aggregate_to_document(self.aggregates)
        if self.failure_manifest is not None:
            document = dict(document)
            document["failure_manifest"] = self.failure_manifest
        return document

    def aggregate_json(self) -> str:
        """Canonical JSON text of :meth:`aggregate_document`."""
        return dump_canonical_json(self.aggregate_document())


def _execute_task(
    payload: tuple[str, int, tuple[tuple[str, Any], ...], str]
) -> dict[str, Any]:
    """Process-pool entry point: run one task, return its result document.

    Must stay a module-level function (pickled by reference) and must return
    plain JSON-compatible data — shipping the canonical document rather than
    live objects keeps fresh and cached results bit-for-bit interchangeable.
    The task's backend is activated explicitly (spawn workers do not inherit
    the parent's in-process activation).
    """
    import repro.experiments  # noqa: F401  (registry side effects in spawn workers)
    from repro.experiments.runner import run_experiment

    experiment_id, seed, override_items, backend = payload
    set_active_backend(backend)
    result = run_experiment(experiment_id, seed=seed, **dict(override_items))
    return experiment_result_to_dict(result)


def run_campaign(
    patterns_or_spec: Sequence[str] | CampaignSpec,
    *,
    seeds: Sequence[int] | None = None,
    overrides: Mapping[str, Any] | None = None,
    n_jobs: int = 1,
    cache_dir: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    on_task_done: Callable[[CampaignTask, bool], None] | None = None,
    retries: int = DEFAULT_CAMPAIGN_RETRIES,
    cell_timeout: float | None = None,
    keep_going: bool = True,
) -> CampaignResult:
    """Run a campaign grid, in parallel when ``n_jobs > 1``.

    Parameters
    ----------
    patterns_or_spec:
        Either experiment id patterns (globs allowed) — in which case
        ``seeds`` is required — or a ready :class:`CampaignSpec`.
    seeds:
        Seeds to run each experiment under.  Must be None when a spec is
        given (a spec already carries its seeds); combining them raises
        :class:`ExperimentError`.
    overrides:
        Global overrides, restricted per experiment to its accepted keys.
        Like ``seeds``, must be None when a spec is given.
    n_jobs:
        Worker processes; ``1`` runs everything in this process.
    cache_dir:
        Directory of the content-addressed result cache; ``None`` disables
        caching.  When caching is on, a ``partial/`` subdirectory holds
        per-cell optimizer checkpoints: a campaign killed mid-cell resumes
        that cell from its last checkpoint on the next run (producing the
        byte-identical result document the uninterrupted cell would have),
        and a cell's partials are deleted once its result is cached.
    checkpoint_every:
        Checkpoint cadence (generations) for the per-cell partial
        checkpoints.
    on_task_done:
        Optional progress callback invoked as ``(task, from_cache)`` when
        each task finishes (completion order).
    retries:
        Extra attempts granted to each failing cell beyond its first, with
        capped deterministic exponential backoff between attempts.
    cell_timeout:
        Per-attempt wall-clock limit in seconds; a cell exceeding it has its
        worker killed and replaced (forces process isolation even for
        ``n_jobs == 1``).  ``None`` disables the limit.
    keep_going:
        Quarantine cells that exhaust their attempts — recording them in
        ``failures``/``failure_manifest`` and aggregating over the rest —
        instead of aborting the campaign on its first poison cell.  On by
        default: a 500-cell overnight campaign should not discard 499
        results because one seed hit a bug.

    Returns
    -------
    CampaignResult
        Records in canonical grid order plus cross-seed aggregates; check
        ``complete``/``failures`` when ``keep_going`` is on.
    """
    if isinstance(patterns_or_spec, CampaignSpec):
        if seeds is not None or overrides is not None:
            raise ExperimentError(
                "seeds and overrides are part of the CampaignSpec; pass them to "
                "plan_campaign instead of run_campaign"
            )
        spec = patterns_or_spec
    else:
        if seeds is None:
            raise ExperimentError("seeds are required when patterns are given")
        spec = plan_campaign(patterns_or_spec, seeds, overrides)
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    tasks = spec.tasks()
    cache = CampaignCache(cache_dir) if cache_dir is not None else None
    report = run_grid(
        payloads=[_payload(task) for task in tasks],
        worker=_execute_task,
        parse=experiment_result_from_dict,
        keys=[task.cache_key() for task in tasks],
        cache=cache,
        checkpoint_dir=(cache.directory / "partial") if cache is not None else None,
        checkpoint_every=checkpoint_every,
        n_jobs=n_jobs,
        on_task_done=(
            None
            if on_task_done is None
            else lambda index, cached: on_task_done(tasks[index], cached)
        ),
        label="campaign",
        policy=RetryPolicy(
            max_attempts=retries + 1,
            cell_timeout=cell_timeout,
            keep_going=keep_going,
        ),
    )
    records = tuple(
        CampaignRunRecord(task=task, result=outcome.value, from_cache=outcome.from_cache)
        for task, outcome in zip(tasks, report.outcomes)
        if outcome is not None
    )
    aggregates = aggregate_campaign_runs(
        [(record.task.experiment_id, record.task.seed, record.result) for record in records]
    )
    return CampaignResult(
        spec=spec,
        records=records,
        aggregates=aggregates,
        failures=tuple(tasks[failure.index] for failure in report.failures),
        failure_manifest=report.failure_manifest(
            describe=lambda index: {
                "experiment_id": tasks[index].experiment_id,
                "seed": tasks[index].seed,
            }
        ),
    )


def _payload(
    task: CampaignTask,
) -> tuple[str, int, tuple[tuple[str, Any], ...], str]:
    return (task.experiment_id, task.seed, task.overrides, task.backend)
