"""Figure 4: normal-distribution workload under different privacy bounds.

The paper draws 10 000 records from a 10-category prior derived from a normal
distribution and compares the OptRR front against the Warner front for
``delta`` in {0.6, 0.7, 0.8, 0.9}.  The qualitative claims are (1) the OptRR
front reaches strictly lower privacy than the bound-feasible Warner front and
(2) OptRR attains lower MSE at comparable privacy.
"""

from __future__ import annotations

from repro.data.synthetic import normal_distribution
from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.common import FrontComparisonWorkload, run_front_comparison
from repro.experiments.registry import register_experiment

#: Workload constants shared by all four panels.
N_CATEGORIES = 10
N_RECORDS = 10_000

#: Paper-reported approximate lower end of each scheme's privacy range, read
#: off Figure 4: for delta = 0.6/0.7/0.8/0.9 the Warner front stops around
#: privacy 0.6/0.5/0.4/0.22 while OptRR reaches about 0.4/0.3/0.22/0.17.
PAPER_PRIVACY_FLOORS = {
    0.6: {"warner": 0.6, "optrr": 0.4},
    0.7: {"warner": 0.5, "optrr": 0.3},
    0.8: {"warner": 0.4, "optrr": 0.22},
    0.9: {"warner": 0.22, "optrr": 0.17},
}


def _make_runner(delta: float):
    def runner(*, seed: int = 0, **overrides) -> ExperimentResult:
        workload = FrontComparisonWorkload(
            experiment_id=_experiment_id(delta),
            prior=normal_distribution(N_CATEGORIES),
            n_records=N_RECORDS,
            delta=delta,
            paper_claim=(
                f"with delta={delta} OptRR covers a wider privacy range than Warner "
                f"(down to ~{PAPER_PRIVACY_FLOORS[delta]['optrr']} vs "
                f"~{PAPER_PRIVACY_FLOORS[delta]['warner']}) and achieves lower MSE at "
                "equal privacy"
            ),
        )
        return run_front_comparison(workload, seed=seed, **overrides)

    return runner


def _experiment_id(delta: float) -> str:
    suffix = {0.6: "a", 0.7: "b", 0.8: "c", 0.9: "d"}[delta]
    return f"fig4{suffix}"


def _register() -> None:
    for delta in (0.6, 0.7, 0.8, 0.9):
        register_experiment(
            ExperimentSpec(
                experiment_id=_experiment_id(delta),
                paper_artifact=f"Figure 4({_experiment_id(delta)[-1]})",
                description=(
                    "Normal-distribution prior, 10 categories, 10 000 records, "
                    f"privacy bound delta={delta}; OptRR vs Warner Pareto fronts"
                ),
                paper_claim=(
                    "OptRR covers a wider privacy range than Warner and achieves a "
                    "lower MSE at every shared privacy level"
                ),
                parameters={
                    "distribution": "normal",
                    "n_categories": N_CATEGORIES,
                    "n_records": N_RECORDS,
                    "delta": delta,
                },
                runner=_make_runner(delta),
            )
        )


_register()
