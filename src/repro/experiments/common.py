"""Shared machinery for the Pareto-front-comparison experiments.

Every figure in the paper's evaluation compares the OptRR front against the
Warner-family front (which, by Theorem 2, also represents UP and FRAPP) on a
specific prior and a specific privacy bound.  :func:`run_front_comparison`
implements that protocol once; the figure modules supply the workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.compare import FrontComparison, compare_fronts
from repro.analysis.front import ParetoFront
from repro.analysis.report import format_front_table, format_paper_vs_measured
from repro.core.config import OptRRConfig
from repro.core.optimizer import OptRROptimizer
from repro.core.result import OptimizationResult
from repro.data.distribution import CategoricalDistribution
from repro.experiments.base import (
    ExperimentResult,
    default_generations,
    default_low_fidelity_fraction,
    default_population,
)
from repro.metrics.evaluation import MatrixEvaluator
from repro.rr.family import WarnerFamily


@dataclass(frozen=True)
class FrontComparisonWorkload:
    """Workload description of a front-comparison experiment.

    Attributes
    ----------
    experiment_id:
        Identifier of the experiment (``fig4a`` etc.).
    prior:
        The original data distribution ``P(X)``.
    n_records:
        Number of records ``N``.
    delta:
        Worst-case privacy bound for the experiment.
    paper_claim:
        Qualitative claim printed next to the measured result.
    expect_wider_range:
        Whether the paper claims OptRR reaches strictly lower privacy than
        Warner for this workload (true everywhere except Figure 5(b), where
        the ranges coincide for the uniform prior).
    """

    experiment_id: str
    prior: CategoricalDistribution
    n_records: int
    delta: float
    paper_claim: str
    expect_wider_range: bool = True


def optimize_front(
    prior: CategoricalDistribution,
    n_records: int,
    delta: float | None,
    *,
    seed: int = 0,
    n_generations: int | None = None,
    population_size: int | None = None,
    low_fidelity_fraction: float | None = None,
) -> tuple[ParetoFront, OptimizationResult]:
    """Run OptRR on the workload and return its Pareto front."""
    config = OptRRConfig(
        population_size=population_size or default_population(),
        archive_size=population_size or default_population(),
        n_generations=n_generations or default_generations(),
        delta=delta,
        low_fidelity_fraction=(
            low_fidelity_fraction
            if low_fidelity_fraction is not None
            else default_low_fidelity_fraction()
        ),
        seed=seed,
    )
    optimizer = OptRROptimizer(prior, n_records, config)
    result = optimizer.run()
    return ParetoFront.from_result("optrr", result), result


def warner_front(
    prior: CategoricalDistribution,
    n_records: int,
    delta: float | None,
    *,
    n_points: int = 1001,
) -> ParetoFront:
    """Baseline front: the 1001-step Warner sweep with bound filtering."""
    family = WarnerFamily(prior.n_categories)
    front = ParetoFront.from_family(family, prior, n_records, delta=delta, n_points=n_points)
    return ParetoFront("warner", front.points)


def run_front_comparison(
    workload: FrontComparisonWorkload,
    *,
    seed: int = 0,
    n_generations: int | None = None,
    population_size: int | None = None,
    low_fidelity_fraction: float | None = None,
) -> ExperimentResult:
    """Run one figure-style comparison of OptRR against the Warner baseline."""
    optrr, optimization = optimize_front(
        workload.prior,
        workload.n_records,
        workload.delta,
        seed=seed,
        n_generations=n_generations,
        population_size=population_size,
        low_fidelity_fraction=low_fidelity_fraction,
    )
    warner = warner_front(workload.prior, workload.n_records, workload.delta)
    comparison = compare_fronts(optrr, warner)
    reproduced = _claim_holds(comparison, workload.expect_wider_range)
    measured = _measured_text(comparison)
    summary = (
        format_paper_vs_measured(workload.experiment_id, workload.paper_claim, measured, reproduced),
        format_front_table(warner),
        format_front_table(optrr),
    )
    metrics = {
        "optrr_min_privacy": comparison.candidate_privacy_range[0],
        "optrr_max_privacy": comparison.candidate_privacy_range[1],
        "warner_min_privacy": comparison.baseline_privacy_range[0],
        "warner_max_privacy": comparison.baseline_privacy_range[1],
        "extra_privacy_range": comparison.extra_privacy_range,
        "mean_utility_ratio": comparison.mean_utility_ratio,
        "optrr_hypervolume": comparison.hypervolume_candidate,
        "warner_hypervolume": comparison.hypervolume_baseline,
        "n_generations": float(optimization.n_generations),
        "n_evaluations": float(optimization.n_evaluations),
    }
    return ExperimentResult(
        experiment_id=workload.experiment_id,
        fronts={"optrr": optrr, "warner": warner},
        comparison=comparison,
        reproduced=reproduced,
        summary=summary,
        metrics=metrics,
    )


def _claim_holds(comparison: FrontComparison, expect_wider_range: bool) -> bool:
    """The paper's qualitative claim: OptRR at least matches Warner's utility
    in the shared range (wins plus ties, never loses badly) and, where
    claimed, covers a wider privacy range."""
    probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
    if probes == 0:
        not_worse = True
    else:
        not_worse = comparison.baseline_wins <= max(1, int(0.1 * probes))
    range_ok = comparison.extra_privacy_range >= -1e-6
    if expect_wider_range:
        range_ok = comparison.covers_wider_privacy_range or abs(comparison.extra_privacy_range) < 5e-3
    return bool(not_worse and range_ok)


def _measured_text(comparison: FrontComparison) -> str:
    return (
        f"OptRR privacy range [{comparison.candidate_privacy_range[0]:.3f}, "
        f"{comparison.candidate_privacy_range[1]:.3f}] vs Warner "
        f"[{comparison.baseline_privacy_range[0]:.3f}, "
        f"{comparison.baseline_privacy_range[1]:.3f}]; "
        f"utility ratio (Warner/OptRR) {comparison.mean_utility_ratio:.2f}; "
        f"wins/losses/ties {comparison.candidate_wins}/{comparison.baseline_wins}/"
        f"{comparison.ties}"
    )


def evaluator_for(workload: FrontComparisonWorkload) -> MatrixEvaluator:
    """The privacy/utility evaluator for a workload (used by ablations)."""
    return MatrixEvaluator(workload.prior, workload.n_records, workload.delta)


def empirical_front_mse(
    front: ParetoFront,
    prior: CategoricalDistribution,
    n_records: int,
    *,
    estimator_method: str = "iterative",
    n_trials: int = 3,
    max_points: int = 60,
    seed: int = 0,
) -> ParetoFront:
    """Re-measure a front's utility empirically (Figure 5(d) methodology).

    For every matrix on the front (subsampled to at most ``max_points`` so
    dense baseline sweeps stay affordable), the original data is sampled from
    the prior, disguised with the matrix, the distribution is re-estimated
    with the named estimator, and the measured MSE replaces the closed-form
    utility.  Points without an attached matrix are skipped.
    """
    from repro.rr.estimation import IterativeEstimator, InversionEstimator
    from repro.rr.randomize import RandomizedResponse

    rng = np.random.default_rng(seed)
    if estimator_method == "iterative":
        estimator = IterativeEstimator(max_iterations=2000, tolerance=1e-7)
    else:
        estimator = InversionEstimator()
    pairs = []
    truth = prior.probabilities
    points = [point for point in front if point.matrix is not None]
    if len(points) > max_points:
        step = len(points) / max_points
        points = [points[int(index * step)] for index in range(max_points)]
    for point in points:
        mechanism = RandomizedResponse(point.matrix)
        errors = []
        for _ in range(n_trials):
            original = prior.sample(n_records, seed=rng)
            disguised = mechanism.randomize_codes(original, seed=rng)
            estimate = estimator.estimate_from_codes(disguised, point.matrix)
            errors.append(float(np.mean((estimate.probabilities - truth) ** 2)))
        pairs.append((point.privacy, float(np.mean(errors))))
    return ParetoFront.from_points(f"{front.name}-empirical", pairs, keep_dominated=True)
