"""Experiment specification and result objects.

Every paper figure/fact is described by an :class:`ExperimentSpec` — what
workload it runs, with which parameters, and which qualitative claim of the
paper it checks — and produces an :class:`ExperimentResult` carrying the
measured fronts, the comparison summary and the reproduction verdict.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.analysis.compare import FrontComparison
from repro.analysis.front import ParetoFront
from repro.exceptions import ExperimentError

#: Override keys accepted by the front-comparison experiments (the common
#: case); specs with a different workload declare their own tuple.
DEFAULT_ACCEPTED_OVERRIDES = ("n_generations", "population_size", "low_fidelity_fraction")


def environment_override_defaults() -> dict[str, object]:
    """Current values of every override key whose runner-level default comes
    from the environment.

    This is the single registry the campaign planner uses to materialize
    unset budget overrides into its cache keys — add any new
    environment-defaulted override key here so cached campaign results can
    never be replayed across a changed environment.
    """
    return {
        "n_generations": default_generations(),
        "population_size": default_population(),
        "low_fidelity_fraction": default_low_fidelity_fraction(),
    }

#: Environment variable that overrides the number of optimizer generations in
#: every experiment (the paper runs 20 000; CI and benchmarks use far fewer).
GENERATIONS_ENV_VAR = "REPRO_GENERATIONS"

#: Environment variable that overrides the optimizer population/archive size.
POPULATION_ENV_VAR = "REPRO_POPULATION"

#: Environment variable that overrides the optimizer's low-fidelity fraction
#: (1.0, the default, keeps the exact single-fidelity evaluation path).
LOW_FIDELITY_ENV_VAR = "REPRO_LOW_FIDELITY"


def default_generations(fallback: int = 400) -> int:
    """Number of generations to run, honouring the environment override."""
    raw = os.environ.get(GENERATIONS_ENV_VAR)
    if raw is None:
        return fallback
    value = int(raw)
    if value <= 0:
        raise ValueError(f"{GENERATIONS_ENV_VAR} must be positive, got {value}")
    return value


def default_population(fallback: int = 40) -> int:
    """Population/archive size to use, honouring the environment override."""
    raw = os.environ.get(POPULATION_ENV_VAR)
    if raw is None:
        return fallback
    value = int(raw)
    if value <= 1:
        raise ValueError(f"{POPULATION_ENV_VAR} must be at least 2, got {value}")
    return value


def default_low_fidelity_fraction(fallback: float = 1.0) -> float:
    """Low-fidelity fraction to use, honouring the environment override."""
    raw = os.environ.get(LOW_FIDELITY_ENV_VAR)
    if raw is None:
        return fallback
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{LOW_FIDELITY_ENV_VAR} must lie in (0, 1], got {value}")
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """Static description of one experiment.

    Attributes
    ----------
    experiment_id:
        Short identifier (``fig4a``, ``fig5c``, ``thm2``, ...).
    paper_artifact:
        Which table/figure of the paper it reproduces.
    description:
        One-line description of the workload.
    paper_claim:
        The qualitative claim of the paper this experiment checks.
    parameters:
        Workload parameters (distribution, delta, N, ...).
    runner:
        Callable executing the experiment; receives a seed and keyword
        overrides and returns an :class:`ExperimentResult`.
    accepted_overrides:
        Override keys the runner understands.  :meth:`run` validates against
        this tuple instead of forwarding blindly, so an unsupported override
        raises a clear :class:`~repro.exceptions.ExperimentError` rather than
        a raw ``TypeError`` from deep inside the runner.
    """

    experiment_id: str
    paper_artifact: str
    description: str
    paper_claim: str
    parameters: Mapping[str, object]
    runner: Callable[..., "ExperimentResult"] = field(repr=False)
    accepted_overrides: tuple[str, ...] = DEFAULT_ACCEPTED_OVERRIDES

    def validate_overrides(self, overrides: Mapping[str, object]) -> None:
        """Raise :class:`ExperimentError` when an override key is unknown."""
        unknown = sorted(set(overrides) - set(self.accepted_overrides))
        if unknown:
            accepted = ", ".join(repr(key) for key in self.accepted_overrides) or "(none)"
            raise ExperimentError(
                f"experiment {self.experiment_id!r} does not accept override(s) "
                f"{', '.join(repr(key) for key in unknown)}; accepted keys: {accepted}"
            )

    def filter_overrides(self, overrides: Mapping[str, object]) -> dict[str, object]:
        """The subset of ``overrides`` this experiment accepts.

        Used by the campaign runner, where one global override set is applied
        to a heterogeneous grid of experiments: each experiment receives (and
        is cached under) exactly the overrides it understands.
        """
        return {
            key: value for key, value in overrides.items() if key in self.accepted_overrides
        }

    def run(self, *, seed: int = 0, **overrides) -> "ExperimentResult":
        """Execute the experiment after validating the overrides."""
        self.validate_overrides(overrides)
        return self.runner(seed=seed, **overrides)


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment_id:
        Identifier of the experiment that produced this result.
    fronts:
        The measured Pareto fronts keyed by scheme name (e.g. ``"optrr"``,
        ``"warner"``).
    comparison:
        Front comparison of the OptRR front against the baseline front (None
        for experiments that are not front comparisons, e.g. Fact 1).
    reproduced:
        Whether the paper's qualitative claim holds in this run.
    summary:
        Human-readable summary lines (printed by the benchmark harness).
    metrics:
        Free-form numeric results (search-space sizes, privacy ranges, ...).
    """

    experiment_id: str
    fronts: Mapping[str, ParetoFront] = field(default_factory=dict)
    comparison: FrontComparison | None = None
    reproduced: bool = True
    summary: tuple[str, ...] = ()
    metrics: Mapping[str, float] = field(default_factory=dict)

    def summary_text(self) -> str:
        """The summary lines joined into one printable block."""
        return "\n".join(self.summary)
