"""Figure 5: gamma / uniform / Adult workloads and the iterative-estimator check.

* 5(a) — gamma(alpha=1.0, beta=2.0) prior, delta=0.75;
* 5(b) — discrete uniform prior, delta=0.75 (the one case where the privacy
  ranges of OptRR and Warner coincide);
* 5(c) — the first attribute of the Adult dataset (age, discretised),
  delta=0.75;
* 5(d) — the gamma workload again, but with utility re-measured empirically
  by disguising the data and running the iterative estimator (Eq. 3) instead
  of the closed-form MSE.
"""

from __future__ import annotations

from repro.analysis.compare import compare_fronts
from repro.analysis.report import format_front_table, format_paper_vs_measured
from repro.data.adult import adult_attribute_distribution
from repro.data.synthetic import gamma_distribution, uniform_distribution
from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.common import (
    FrontComparisonWorkload,
    empirical_front_mse,
    optimize_front,
    run_front_comparison,
    warner_front,
)
from repro.experiments.registry import register_experiment

N_CATEGORIES = 10
N_RECORDS = 10_000
DELTA = 0.75


def _gamma_prior():
    return gamma_distribution(N_CATEGORIES, alpha=1.0, beta=2.0)


def run_fig5a(*, seed: int = 0, **overrides) -> ExperimentResult:
    """Gamma-distribution workload (Figure 5(a))."""
    workload = FrontComparisonWorkload(
        experiment_id="fig5a",
        prior=_gamma_prior(),
        n_records=N_RECORDS,
        delta=DELTA,
        paper_claim=(
            "for gamma(1.0, 2.0) data OptRR has about a two times larger privacy "
            "range than Warner and clearly lower MSE for privacy above ~0.62"
        ),
    )
    return run_front_comparison(workload, seed=seed, **overrides)


def run_fig5b(*, seed: int = 0, **overrides) -> ExperimentResult:
    """Uniform-distribution workload (Figure 5(b)); privacy ranges coincide."""
    workload = FrontComparisonWorkload(
        experiment_id="fig5b",
        prior=uniform_distribution(N_CATEGORIES),
        n_records=N_RECORDS,
        delta=DELTA,
        paper_claim=(
            "for uniform data OptRR finds better matrices than Warner although both "
            "schemes cover the same privacy range"
        ),
        expect_wider_range=False,
    )
    return run_front_comparison(workload, seed=seed, **overrides)


def run_fig5c(*, seed: int = 0, **overrides) -> ExperimentResult:
    """Adult first-attribute workload (Figure 5(c))."""
    prior = adult_attribute_distribution("age")
    workload = FrontComparisonWorkload(
        experiment_id="fig5c",
        prior=prior,
        n_records=32_561,
        delta=DELTA,
        paper_claim=(
            "for the first Adult attribute OptRR consistently outperforms the Warner "
            "scheme (lower MSE, wider privacy range)"
        ),
    )
    return run_front_comparison(workload, seed=seed, **overrides)


def run_fig5d(*, seed: int = 0, **overrides) -> ExperimentResult:
    """Iterative-estimator check (Figure 5(d)).

    The optimal set from the gamma workload is re-evaluated by actually
    disguising sampled data and estimating the distribution with the
    iterative approach; OptRR should still beat Warner.
    """
    prior = _gamma_prior()
    n_generations = overrides.pop("n_generations", None)
    population_size = overrides.pop("population_size", None)
    optrr_front, _ = optimize_front(
        prior, N_RECORDS, DELTA, seed=seed,
        n_generations=n_generations, population_size=population_size,
    )
    warner = warner_front(prior, N_RECORDS, DELTA)
    optrr_empirical = empirical_front_mse(optrr_front, prior, N_RECORDS, seed=seed)
    warner_empirical = empirical_front_mse(warner, prior, N_RECORDS, seed=seed + 1)
    # Keep the fronts comparable: drop dominated points of the empirical
    # re-measurements before comparing.
    optrr_clean = optrr_empirical if not optrr_empirical.is_empty else optrr_front
    warner_clean = warner_empirical if not warner_empirical.is_empty else warner
    comparison = compare_fronts(optrr_clean, warner_clean)
    probes = comparison.candidate_wins + comparison.baseline_wins + comparison.ties
    reproduced = bool(
        comparison.extra_privacy_range >= -5e-3
        and (probes == 0 or comparison.candidate_wins + comparison.ties >= comparison.baseline_wins)
    )
    measured = (
        f"empirical (iterative-estimator) MSE: OptRR privacy range "
        f"[{comparison.candidate_privacy_range[0]:.3f}, {comparison.candidate_privacy_range[1]:.3f}], "
        f"Warner [{comparison.baseline_privacy_range[0]:.3f}, {comparison.baseline_privacy_range[1]:.3f}], "
        f"wins/losses/ties {comparison.candidate_wins}/{comparison.baseline_wins}/{comparison.ties}"
    )
    summary = (
        format_paper_vs_measured(
            "fig5d",
            "with the iterative estimator OptRR still has a wider privacy range and "
            "lower MSE than Warner",
            measured,
            reproduced,
        ),
        format_front_table(warner_clean),
        format_front_table(optrr_clean),
    )
    metrics = {
        "optrr_min_privacy": comparison.candidate_privacy_range[0],
        "warner_min_privacy": comparison.baseline_privacy_range[0],
        "mean_utility_ratio": comparison.mean_utility_ratio,
    }
    return ExperimentResult(
        experiment_id="fig5d",
        fronts={"optrr": optrr_clean, "warner": warner_clean},
        comparison=comparison,
        reproduced=reproduced,
        summary=summary,
        metrics=metrics,
    )


def _register() -> None:
    register_experiment(
        ExperimentSpec(
            experiment_id="fig5a",
            paper_artifact="Figure 5(a)",
            description="Gamma(1.0, 2.0) prior, 10 categories, 10 000 records, delta=0.75",
            paper_claim="OptRR has ~2x the privacy range of Warner and lower MSE above privacy 0.62",
            parameters={"distribution": "gamma", "alpha": 1.0, "beta": 2.0, "delta": DELTA},
            runner=run_fig5a,
        )
    )
    register_experiment(
        ExperimentSpec(
            experiment_id="fig5b",
            paper_artifact="Figure 5(b)",
            description="Discrete uniform prior, 10 categories, 10 000 records, delta=0.75",
            paper_claim="OptRR finds better matrices; privacy ranges coincide for uniform data",
            parameters={"distribution": "uniform", "delta": DELTA},
            runner=run_fig5b,
        )
    )
    register_experiment(
        ExperimentSpec(
            experiment_id="fig5c",
            paper_artifact="Figure 5(c)",
            description="Adult-like first attribute (age), 32 561 records, delta=0.75",
            paper_claim="OptRR consistently outperforms Warner on the Adult attributes",
            parameters={"dataset": "adult-like", "attribute": "age", "delta": DELTA},
            runner=run_fig5c,
        )
    )
    register_experiment(
        ExperimentSpec(
            experiment_id="fig5d",
            paper_artifact="Figure 5(d)",
            description=(
                "Gamma(1.0, 2.0) prior; utility re-measured with the iterative estimator "
                "on actually disguised data"
            ),
            paper_claim="OptRR still outperforms Warner when the iterative estimator is used",
            parameters={"distribution": "gamma", "estimator": "iterative", "delta": DELTA},
            runner=run_fig5d,
        )
    )


_register()
