"""Top-level experiment runner used by the CLI and the benchmark harness."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def run_experiment(experiment_id: str, *, seed: int = 0, **overrides) -> ExperimentResult:
    """Run the experiment registered under ``experiment_id``.

    Keyword overrides are validated against the spec's ``accepted_overrides``
    (an unknown key raises :class:`~repro.exceptions.ExperimentError` listing
    the accepted keys) and then forwarded to the experiment runner; the front
    comparison experiments accept ``n_generations`` and ``population_size``
    so callers (benchmarks, CLI, campaigns) can trade accuracy for time.
    """
    spec = get_experiment(experiment_id)
    logger.info("running experiment %s (%s)", experiment_id, spec.paper_artifact)
    result = spec.run(seed=seed, **overrides)  # spec.run validates the overrides
    logger.info(
        "experiment %s finished: %s",
        experiment_id,
        "reproduced" if result.reproduced else "diverged",
    )
    return result
