"""Privacy quantification (Section IV-A, Eq. 8 and Eq. 9).

Privacy is ``1 - A`` where ``A`` is the adversary's expected accuracy under
the optimal (MAP) estimation strategy:

``A = sum_y P(y | x_hat_y) P(x_hat_y) = sum_y max_x [ M[y, x] P(x) ]``

The worst-case constraint (Eq. 9) additionally bounds every posterior:
``max_y max_x P(x | y) <= delta``.  Theorem 5 shows ``delta`` can never be
smaller than the largest prior probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InfeasibleBoundError, ValidationError
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_in_unit_interval, check_probability_vector

#: Numerical slack used when checking the delta bound, so matrices produced by
#: the repair operator (which targets the bound exactly) are not rejected for
#: floating-point noise.
BOUND_ATOL = 1e-9


def _joint_matrix(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Return ``joint[y, x] = P(Y = c_y, X = c_x) = M[y, x] P(x)``."""
    prior = check_probability_vector(prior, "prior")
    probabilities = matrix.probabilities if isinstance(matrix, RRMatrix) else np.asarray(matrix)
    if probabilities.shape != (prior.size, prior.size):
        raise ValidationError(
            f"RR matrix shape {probabilities.shape} does not match prior of "
            f"length {prior.size}"
        )
    return probabilities * prior[None, :]


def joint_tensor(stack: np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Batched joint ``joint[b, y, x] = M_b[y, x] P(x)`` for a ``(B, n, n)``
    stack of RR matrices (the broadcast analogue of :func:`_joint_matrix`)."""
    prior = check_probability_vector(prior, "prior")
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3 or stack.shape[1:] != (prior.size, prior.size):
        raise ValidationError(
            f"RR matrix stack shape {stack.shape} does not match prior of "
            f"length {prior.size} (expected (B, {prior.size}, {prior.size}))"
        )
    return stack * prior[None, None, :]


def posterior_from_joint(joint: np.ndarray) -> np.ndarray:
    """Normalise a joint array ``P(Y, X)`` into posteriors ``P(X | Y)``.

    Works on a single ``(n, n)`` joint matrix or a ``(B, n, n)`` joint tensor
    (the candidate-original axis is always last).  Rows whose report has zero
    probability are returned as all zeros — this helper is the single home of
    that convention for both the scalar and batched paths.
    """
    report_probabilities = joint.sum(axis=-1, keepdims=True)
    safe = np.where(report_probabilities > 0, report_probabilities, 1.0)
    return np.where(report_probabilities > 0, joint / safe, 0.0)


def posterior_tensor(stack: np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Batched posterior ``P(X = c_x | Y = c_y)`` for every matrix in a
    ``(B, n, n)`` stack; rows with zero report probability come back as zeros
    (same convention as :func:`posterior_matrix`)."""
    return posterior_from_joint(joint_tensor(stack, prior))


def adversary_accuracy_batch(stack: np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Per-matrix adversary accuracy ``A`` (Eq. 8) for a ``(B, n, n)`` stack."""
    joint = joint_tensor(stack, prior)
    return joint.max(axis=2).sum(axis=1)


def privacy_score_batch(stack: np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Per-matrix privacy ``1 - A`` (Eq. 8) for a ``(B, n, n)`` stack."""
    return 1.0 - adversary_accuracy_batch(stack, prior)


def max_posterior_batch(stack: np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Per-matrix worst-case posterior (Eq. 9 left-hand side) for a stack."""
    return posterior_tensor(stack, prior).max(axis=(1, 2))


def posterior_matrix(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> np.ndarray:
    """Posterior ``P(X = c_x | Y = c_y)`` for every (report, original) pair.

    Rows index the observed report ``y``; columns index the candidate original
    value ``x``.  Rows whose report has zero probability under the prior are
    returned as all zeros (the report can never be observed).
    """
    return posterior_from_joint(_joint_matrix(matrix, prior))


def map_estimates(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> np.ndarray:
    """MAP estimate ``x_hat_y`` for every possible report ``y`` (Theorem 3)."""
    posterior = posterior_matrix(matrix, prior)
    return np.argmax(posterior, axis=1)


def adversary_accuracy(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> float:
    """The adversary's expected accuracy ``A`` under MAP estimation (Eq. 8
    before the ``1 -`` complement)."""
    joint = _joint_matrix(matrix, prior)
    return float(joint.max(axis=1).sum())


def privacy_score(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> float:
    """Privacy of an RR matrix for a given prior: ``1 - A`` (Eq. 8).

    Larger values mean better privacy.  The value lies in
    ``[0, 1 - max_x P(x)]`` because the adversary can always guess the prior
    mode.
    """
    return 1.0 - adversary_accuracy(matrix, prior)


def max_posterior(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> float:
    """The largest posterior ``max_y max_x P(x | y)`` (the quantity bounded by
    ``delta`` in Eq. 9)."""
    return float(posterior_matrix(matrix, prior).max())


def satisfies_bound(
    matrix: RRMatrix | np.ndarray,
    prior: np.ndarray,
    delta: float,
    *,
    atol: float = BOUND_ATOL,
) -> bool:
    """Whether the matrix satisfies the worst-case bound ``max P(X|Y) <= delta``."""
    check_in_unit_interval(delta, "delta", inclusive_low=False)
    return max_posterior(matrix, prior) <= delta + atol


def check_bound_feasible(prior: np.ndarray, delta: float) -> None:
    """Raise :class:`InfeasibleBoundError` when no RR matrix can satisfy the
    bound ``delta`` for this prior (Theorem 5: ``delta >= max_x P(x)``)."""
    prior = check_probability_vector(prior, "prior")
    check_in_unit_interval(delta, "delta", inclusive_low=False)
    if delta < prior.max() - BOUND_ATOL:
        raise InfeasibleBoundError(
            f"delta={delta} is below the largest prior probability "
            f"{prior.max():.6f}; by Theorem 5 no RR matrix can satisfy it"
        )


@dataclass(frozen=True)
class PrivacyReport:
    """Full privacy analysis of one RR matrix against one prior.

    Attributes
    ----------
    privacy:
        The average-case privacy score ``1 - A`` (Eq. 8).
    adversary_accuracy:
        The adversary's expected MAP accuracy ``A``.
    max_posterior:
        The worst-case posterior (Eq. 9 left-hand side).
    map_estimates:
        MAP estimate index for every possible report.
    posterior:
        The full posterior matrix ``P(X | Y)``.
    """

    privacy: float
    adversary_accuracy: float
    max_posterior: float
    map_estimates: np.ndarray
    posterior: np.ndarray

    def satisfies(self, delta: float, *, atol: float = BOUND_ATOL) -> bool:
        """Whether the analysed matrix satisfies the bound ``delta``."""
        check_in_unit_interval(delta, "delta", inclusive_low=False)
        return self.max_posterior <= delta + atol


def privacy_report(matrix: RRMatrix | np.ndarray, prior: np.ndarray) -> PrivacyReport:
    """Compute the full :class:`PrivacyReport` for ``matrix`` and ``prior``."""
    joint = _joint_matrix(matrix, prior)
    posterior = posterior_from_joint(joint)
    accuracy = float(joint.max(axis=1).sum())
    return PrivacyReport(
        privacy=1.0 - accuracy,
        adversary_accuracy=accuracy,
        max_posterior=float(posterior.max()),
        map_estimates=np.argmax(posterior, axis=1),
        posterior=posterior,
    )
