"""Combined privacy/utility evaluation of RR matrices.

The evolutionary optimizer evaluates thousands of candidate matrices per
generation; :class:`MatrixEvaluator` packages the prior, the record count and
the privacy bound so each evaluation is a single call returning the two
objectives plus feasibility information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distribution import CategoricalDistribution
from repro.exceptions import SingularMatrixError, ValidationError
from repro.metrics.privacy import max_posterior, privacy_score
from repro.metrics.utility import utility_score
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_in_unit_interval, check_positive_int


@dataclass(frozen=True)
class MatrixEvaluation:
    """Privacy/utility evaluation of a single RR matrix.

    Attributes
    ----------
    privacy:
        ``1 - A`` (Eq. 8); larger is better.
    utility:
        Average closed-form MSE (Eq. 10); smaller is better.
    max_posterior:
        Worst-case posterior probability (Eq. 9 left-hand side).
    feasible:
        Whether the matrix satisfies the configured ``delta`` bound and could
        be evaluated (i.e. was invertible).
    invertible:
        Whether the matrix was invertible; non-invertible matrices cannot be
        used with the inversion estimator and receive infinite utility.
    """

    privacy: float
    utility: float
    max_posterior: float
    feasible: bool
    invertible: bool

    @property
    def objectives(self) -> np.ndarray:
        """Objective vector in *minimisation* convention.

        The optimizer minimises both objectives, so privacy (larger is
        better) is negated: ``objectives = (-privacy, utility)``.
        """
        return np.array([-self.privacy, self.utility], dtype=np.float64)


@dataclass(frozen=True)
class MatrixEvaluator:
    """Evaluate RR matrices against a fixed prior, sample size and bound.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)`` (a distribution object or a
        probability vector).
    n_records:
        Number of records ``N`` used for the closed-form MSE.
    delta:
        Worst-case privacy bound (Eq. 9).  ``None`` disables the bound.
    """

    prior: CategoricalDistribution
    n_records: int
    delta: float | None = None

    def __post_init__(self) -> None:
        prior = self.prior
        if not isinstance(prior, CategoricalDistribution):
            prior = CategoricalDistribution(np.asarray(prior, dtype=np.float64))
        object.__setattr__(self, "prior", prior)
        check_positive_int(self.n_records, "n_records")
        if self.delta is not None:
            check_in_unit_interval(self.delta, "delta", inclusive_low=False)
            if self.delta < prior.max_probability - 1e-9:
                raise ValidationError(
                    f"delta={self.delta} is infeasible for this prior: by Theorem 5 "
                    f"it must be at least max P(X) = {prior.max_probability:.6f}"
                )

    @property
    def n_categories(self) -> int:
        """Domain size of the evaluated matrices."""
        return self.prior.n_categories

    def evaluate(self, matrix: RRMatrix) -> MatrixEvaluation:
        """Evaluate one matrix, returning privacy, utility and feasibility."""
        if matrix.n_categories != self.n_categories:
            raise ValidationError(
                f"matrix domain {matrix.n_categories} does not match the prior "
                f"domain {self.n_categories}"
            )
        prior_vector = self.prior.probabilities
        privacy = privacy_score(matrix, prior_vector)
        worst_posterior = max_posterior(matrix, prior_vector)
        try:
            utility = utility_score(matrix, prior_vector, self.n_records)
            invertible = True
        except SingularMatrixError:
            utility = float("inf")
            invertible = False
        feasible = invertible
        if self.delta is not None and worst_posterior > self.delta + 1e-9:
            feasible = False
        return MatrixEvaluation(
            privacy=privacy,
            utility=utility,
            max_posterior=worst_posterior,
            feasible=feasible,
            invertible=invertible,
        )

    def evaluate_many(self, matrices: list[RRMatrix]) -> list[MatrixEvaluation]:
        """Evaluate a batch of matrices."""
        return [self.evaluate(matrix) for matrix in matrices]
