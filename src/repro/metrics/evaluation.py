"""Combined privacy/utility evaluation of RR matrices.

The evolutionary optimizer evaluates thousands of candidate matrices per
generation; :class:`MatrixEvaluator` packages the prior, the record count and
the privacy bound so each evaluation is a single call returning the two
objectives plus feasibility information.

Two evaluation paths are provided:

* :meth:`MatrixEvaluator.evaluate_batch` — the vectorized engine.  A whole
  population enters as one ``(B, n, n)`` stack and every quantity (posterior
  tensor, adversary accuracy, condition numbers, inverses, Theorem-6 MSE) is
  computed by the active array backend (:mod:`repro.backend`); the default
  ``numpy`` backend is the original batched-numpy computation, bit for bit.
  This is the optimizer hot path.
* :meth:`MatrixEvaluator.evaluate` — the scalar API, kept as a thin wrapper
  that stacks a single matrix and unpacks the batch result, so both paths are
  one implementation.  :meth:`MatrixEvaluator.evaluate_scalar` preserves the
  original per-matrix reference implementation for equivalence tests and
  benchmarks.

The batch path additionally supports a *fidelity* axis (multi-fidelity
optimization): ``evaluate_batch`` accepts a per-individual fidelity column in
``(0, 1]`` realised as record subsampling.  Theorem 6's MSE is exactly
proportional to ``1/N``, so evaluating a matrix against the subsampled record
count ``n_eff = max(1, rint(fidelity * N))`` amounts to scaling the full
utility by ``N / n_eff`` — an exact, monotonically decreasing upper bound on
the full-fidelity utility that converges to it as ``fidelity -> 1`` (and is
bit-identical at ``fidelity = 1``).  Privacy is prior-only and stays exact;
the worst-case posterior is computed through the cheap row-max/row-sum bound,
which equals the full posterior-tensor maximum bit for bit (division by a
positive row sum is monotone, so the maximum commutes with it) without
materialising the ``(B, n, n)`` posterior tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.registry import active_backend
from repro.data.distribution import CategoricalDistribution
from repro.exceptions import SingularMatrixError, ValidationError
from repro.metrics.privacy import BOUND_ATOL, max_posterior, privacy_score
from repro.metrics.utility import utility_score
from repro.rr.matrix import RRMatrix, as_matrix_stack
from repro.utils.linalg import DEFAULT_CONDITION_LIMIT
from repro.utils.validation import check_in_unit_interval, check_positive_int


def resolve_fidelity_column(
    fidelity: float | np.ndarray | None, batch_size: int
) -> np.ndarray | None:
    """Normalise a fidelity argument into a validated ``(B,)`` column.

    ``None`` stays ``None`` (full-fidelity evaluation, the untouched exact
    path); a scalar broadcasts over the batch; an array must already have
    shape ``(batch_size,)``.  Every value must lie in ``(0, 1]``.
    """
    if fidelity is None:
        return None
    column = np.asarray(fidelity, dtype=np.float64)
    if column.ndim == 0:
        column = np.full(batch_size, float(column))
    if column.shape != (batch_size,):
        raise ValidationError(
            f"fidelity column shape {column.shape} does not match the batch "
            f"size ({batch_size},)"
        )
    if not np.all(np.isfinite(column)) or np.any(column <= 0.0) or np.any(column > 1.0):
        raise ValidationError("fidelity values must lie in (0, 1]")
    return column


@dataclass(frozen=True)
class MatrixEvaluation:
    """Privacy/utility evaluation of a single RR matrix.

    Attributes
    ----------
    privacy:
        ``1 - A`` (Eq. 8); larger is better.
    utility:
        Average closed-form MSE (Eq. 10); smaller is better.
    max_posterior:
        Worst-case posterior probability (Eq. 9 left-hand side).
    feasible:
        Whether the matrix satisfies the configured ``delta`` bound and could
        be evaluated (i.e. was invertible).
    invertible:
        Whether the matrix was invertible; non-invertible matrices cannot be
        used with the inversion estimator and receive infinite utility.
    """

    privacy: float
    utility: float
    max_posterior: float
    feasible: bool
    invertible: bool

    @property
    def objectives(self) -> np.ndarray:
        """Objective vector in *minimisation* convention.

        The optimizer minimises both objectives, so privacy (larger is
        better) is negated: ``objectives = (-privacy, utility)``.
        """
        return np.array([-self.privacy, self.utility], dtype=np.float64)


@dataclass(frozen=True)
class BatchEvaluation:
    """Privacy/utility evaluation of a whole stack of RR matrices.

    Every attribute is an array over the batch dimension ``B``; index the
    object (or call :meth:`unpack`) to recover per-matrix
    :class:`MatrixEvaluation` views.

    Attributes
    ----------
    privacy:
        ``(B,)`` privacy scores ``1 - A`` (Eq. 8); larger is better.
    utility:
        ``(B,)`` average closed-form MSE values (Eq. 10); ``inf`` for
        singular matrices.
    max_posterior:
        ``(B,)`` worst-case posteriors (Eq. 9 left-hand side).
    feasible:
        ``(B,)`` boolean mask of delta-feasible, invertible matrices.
    invertible:
        ``(B,)`` boolean mask of numerically invertible matrices.
    fidelity:
        ``(B,)`` fidelity column the batch was evaluated at, or ``None`` for
        a plain full-fidelity evaluation.  Utilities of rows with fidelity
        below 1 are the exact subsampled-record values (upper bounds on the
        full-fidelity utility).
    """

    privacy: np.ndarray
    utility: np.ndarray
    max_posterior: np.ndarray
    feasible: np.ndarray
    invertible: np.ndarray
    fidelity: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.privacy.size)

    def __getitem__(self, index: int) -> MatrixEvaluation:
        return MatrixEvaluation(
            privacy=float(self.privacy[index]),
            utility=float(self.utility[index]),
            max_posterior=float(self.max_posterior[index]),
            feasible=bool(self.feasible[index]),
            invertible=bool(self.invertible[index]),
        )

    def unpack(self) -> list[MatrixEvaluation]:
        """Per-matrix :class:`MatrixEvaluation` objects, in batch order."""
        return [self[index] for index in range(len(self))]

    @property
    def objectives(self) -> np.ndarray:
        """``(B, 2)`` objective array ``(-privacy, utility)`` (minimisation
        convention), with ``inf`` utilities left in place."""
        return np.stack([-self.privacy, self.utility], axis=1)


@dataclass(frozen=True)
class MatrixEvaluator:
    """Evaluate RR matrices against a fixed prior, sample size and bound.

    Parameters
    ----------
    prior:
        The original data distribution ``P(X)`` (a distribution object or a
        probability vector).
    n_records:
        Number of records ``N`` used for the closed-form MSE.
    delta:
        Worst-case privacy bound (Eq. 9).  ``None`` disables the bound.
    """

    prior: CategoricalDistribution
    n_records: int
    delta: float | None = None

    def __post_init__(self) -> None:
        prior = self.prior
        if not isinstance(prior, CategoricalDistribution):
            prior = CategoricalDistribution(np.asarray(prior, dtype=np.float64))
        object.__setattr__(self, "prior", prior)
        check_positive_int(self.n_records, "n_records")
        if self.delta is not None:
            check_in_unit_interval(self.delta, "delta", inclusive_low=False)
            if self.delta < prior.max_probability - 1e-9:
                raise ValidationError(
                    f"delta={self.delta} is infeasible for this prior: by Theorem 5 "
                    f"it must be at least max P(X) = {prior.max_probability:.6f}"
                )

    @property
    def n_categories(self) -> int:
        """Domain size of the evaluated matrices."""
        return self.prior.n_categories

    def effective_record_counts(self, fidelity_column: np.ndarray) -> np.ndarray:
        """Subsampled record counts ``n_eff = max(1, rint(fidelity * N))``."""
        return np.maximum(1.0, np.rint(fidelity_column * self.n_records))

    def evaluate_batch(
        self,
        matrices: np.ndarray | list[RRMatrix],
        *,
        fidelity: float | np.ndarray | None = None,
    ) -> BatchEvaluation:
        """Evaluate a whole stack of matrices with batched linear algebra.

        Parameters
        ----------
        matrices:
            A ``(B, n, n)`` array of column-stochastic matrices, or a list of
            :class:`RRMatrix` objects (stacked internally).
        fidelity:
            Optional per-individual evaluation fidelity in ``(0, 1]`` (a
            scalar broadcasts over the batch).  Fidelity ``f`` evaluates the
            Theorem-6 utility against ``n_eff = max(1, rint(f * N))`` records
            instead of ``N`` — exactly the subsampled MSE, since the MSE is
            proportional to ``1/N`` — and computes the worst-case posterior
            through the cheap row-max/row-sum bound.  ``None`` (and a
            fidelity of exactly 1) reproduce the full-fidelity evaluation
            bit for bit.

        Returns
        -------
        BatchEvaluation
            Array-valued privacy, utility, worst posterior and feasibility.
        """
        stack = as_matrix_stack(matrices)
        n = self.n_categories
        if stack.shape[1:] != (n, n):
            raise ValidationError(
                f"matrix stack domain {stack.shape[1:]} does not match the "
                f"prior domain ({n}, {n})"
            )
        fidelity_column = resolve_fidelity_column(fidelity, stack.shape[0])
        prior_vector = self.prior.probabilities
        # The (B, n, n) kernels live behind the array-backend seam; the
        # default backend reproduces the original batched-numpy computation
        # bit for bit (see repro.backend.base for the exactness contract).
        privacy, utility, worst_posterior, invertible = active_backend().evaluate_stack(
            stack,
            prior_vector,
            self.n_records,
            condition_limit=DEFAULT_CONDITION_LIMIT,
            cheap_posterior_bound=fidelity_column is not None,
        )
        if fidelity_column is not None:
            # MSE is exactly proportional to 1/N (Theorem 6), so the
            # subsampled utility is the full utility scaled by N / n_eff.
            # At fidelity 1 the factor is exactly 1.0 and the product is
            # bit-identical; infinite utilities stay infinite.
            utility = utility * (float(self.n_records) / self.effective_record_counts(fidelity_column))
        feasible = invertible.copy()
        if self.delta is not None:
            feasible &= worst_posterior <= self.delta + BOUND_ATOL
        return BatchEvaluation(
            privacy=privacy,
            utility=utility,
            max_posterior=worst_posterior,
            feasible=feasible,
            invertible=invertible,
            fidelity=fidelity_column,
        )

    def evaluate(self, matrix: RRMatrix) -> MatrixEvaluation:
        """Evaluate one matrix, returning privacy, utility and feasibility.

        Thin wrapper over :meth:`evaluate_batch` with a batch of one, so the
        scalar and batched paths cannot drift apart.
        """
        if matrix.n_categories != self.n_categories:
            raise ValidationError(
                f"matrix domain {matrix.n_categories} does not match the prior "
                f"domain {self.n_categories}"
            )
        return self.evaluate_batch(matrix.probabilities[None, :, :])[0]

    def evaluate_scalar(self, matrix: RRMatrix) -> MatrixEvaluation:
        """Reference per-matrix implementation (the pre-batch hot path).

        Kept verbatim so the equivalence property tests and
        ``benchmarks/bench_batch_eval.py`` can compare the vectorized engine
        against the original scalar computation.
        """
        if matrix.n_categories != self.n_categories:
            raise ValidationError(
                f"matrix domain {matrix.n_categories} does not match the prior "
                f"domain {self.n_categories}"
            )
        prior_vector = self.prior.probabilities
        privacy = privacy_score(matrix, prior_vector)
        worst_posterior = max_posterior(matrix, prior_vector)
        try:
            utility = utility_score(matrix, prior_vector, self.n_records)
            invertible = True
        except SingularMatrixError:
            utility = float("inf")
            invertible = False
        feasible = invertible
        if self.delta is not None and worst_posterior > self.delta + 1e-9:
            feasible = False
        return MatrixEvaluation(
            privacy=privacy,
            utility=utility,
            max_posterior=worst_posterior,
            feasible=feasible,
            invertible=invertible,
        )

    def evaluate_many(self, matrices: list[RRMatrix]) -> list[MatrixEvaluation]:
        """Evaluate a batch of matrices (vectorized, scalar results)."""
        if not matrices:
            return []
        return self.evaluate_batch(matrices).unpack()
