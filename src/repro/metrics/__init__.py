"""Privacy and utility quantification (Section IV of the paper)."""

from repro.metrics.accuracy import (
    AccuracyFunction,
    ZeroOneAccuracy,
    bayes_estimate,
    expected_accuracy,
)
from repro.metrics.privacy import (
    PrivacyReport,
    map_estimates,
    max_posterior,
    posterior_matrix,
    privacy_score,
    satisfies_bound,
)
from repro.metrics.utility import (
    UtilityReport,
    empirical_mse,
    theoretical_mse,
    utility_score,
)
from repro.metrics.evaluation import MatrixEvaluation, MatrixEvaluator

__all__ = [
    "AccuracyFunction",
    "MatrixEvaluation",
    "MatrixEvaluator",
    "PrivacyReport",
    "UtilityReport",
    "ZeroOneAccuracy",
    "bayes_estimate",
    "empirical_mse",
    "expected_accuracy",
    "map_estimates",
    "max_posterior",
    "posterior_matrix",
    "privacy_score",
    "satisfies_bound",
    "theoretical_mse",
    "utility_score",
]
