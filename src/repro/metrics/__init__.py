"""Privacy and utility quantification (Section IV of the paper)."""

from repro.metrics.accuracy import (
    AccuracyFunction,
    ZeroOneAccuracy,
    bayes_estimate,
    expected_accuracy,
)
from repro.metrics.privacy import (
    PrivacyReport,
    map_estimates,
    max_posterior,
    max_posterior_batch,
    posterior_matrix,
    posterior_tensor,
    privacy_score,
    privacy_score_batch,
    satisfies_bound,
)
from repro.metrics.utility import (
    UtilityReport,
    empirical_mse,
    theoretical_mse,
    theoretical_mse_batch,
    utility_score,
    utility_score_batch,
)
from repro.metrics.evaluation import BatchEvaluation, MatrixEvaluation, MatrixEvaluator

__all__ = [
    "AccuracyFunction",
    "BatchEvaluation",
    "MatrixEvaluation",
    "MatrixEvaluator",
    "PrivacyReport",
    "UtilityReport",
    "ZeroOneAccuracy",
    "bayes_estimate",
    "empirical_mse",
    "expected_accuracy",
    "map_estimates",
    "max_posterior",
    "max_posterior_batch",
    "posterior_matrix",
    "posterior_tensor",
    "privacy_score",
    "privacy_score_batch",
    "satisfies_bound",
    "theoretical_mse",
    "theoretical_mse_batch",
    "utility_score",
    "utility_score_batch",
]
