"""Utility quantification (Section IV-B, Theorem 6).

Utility is measured by the Mean Squared Error of the inversion estimator's
distribution estimate.  Because the estimator is unbiased, the MSE of the
``k``-th component equals its variance:

``MSE_k = Var( sum_i B[k, i] N_i / N )``

where ``B = M^-1`` and ``(N_1, ..., N_n)`` is a multinomial sample of size
``N`` with probabilities ``P* = M P``.  Expanding the multinomial covariance
(the paper's Var/Cov formulation) and simplifying gives the closed form

``MSE_k = (1/N) * ( sum_i B[k, i]^2 P*_i  -  P_k^2 )``

because ``sum_i B[k, i] P*_i = (M^-1 P*)_k = P_k``.  The reported utility is
the average MSE over all categories (Eq. 10); *lower is better*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.rr.estimation import DistributionEstimate
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_positive_int, check_probability_vector


def theoretical_mse(
    matrix: RRMatrix,
    prior: np.ndarray,
    n_records: int,
) -> np.ndarray:
    """Per-category closed-form MSE of the inversion estimator (Theorem 6).

    Parameters
    ----------
    matrix:
        The RR matrix ``M`` (must be invertible).
    prior:
        The original distribution ``P``.
    n_records:
        Number of records ``N`` in the disguised data set.

    Returns
    -------
    numpy.ndarray
        Vector of per-category MSE values ``MSE(X = c_k)``.
    """
    prior = check_probability_vector(prior, "prior")
    check_positive_int(n_records, "n_records")
    if matrix.n_categories != prior.size:
        raise ValidationError(
            f"matrix domain {matrix.n_categories} does not match prior length {prior.size}"
        )
    inverse = matrix.inverse()
    disguised = matrix.disguise_distribution(prior)
    # Var(sum_i B[k,i] p*_i_hat) with multinomial covariance of p*_hat:
    #   (1/N) [ sum_i B[k,i]^2 p*_i - (sum_i B[k,i] p*_i)^2 ]
    linear = inverse @ disguised  # equals the prior, up to numerical error
    quadratic = (inverse ** 2) @ disguised
    return (quadratic - linear ** 2) / float(n_records)


def utility_score(matrix: RRMatrix, prior: np.ndarray, n_records: int) -> float:
    """Average closed-form MSE over all categories (Eq. 10); lower is better."""
    return float(np.mean(theoretical_mse(matrix, prior, n_records)))


def theoretical_mse_batch(
    stack: np.ndarray,
    inverses: np.ndarray,
    prior: np.ndarray,
    n_records: int,
) -> np.ndarray:
    """Batched Theorem-6 closed form: per-category MSE for every matrix.

    Parameters
    ----------
    stack:
        ``(B, n, n)`` stack of RR matrices.
    inverses:
        ``(B, n, n)`` stack of their inverses (from
        :func:`repro.utils.linalg.batched_safe_inverses`); rows for singular
        matrices may hold garbage — callers mask them out of the result.
    prior:
        The original distribution ``P``.
    n_records:
        Number of records ``N``.

    Returns
    -------
    numpy.ndarray
        ``(B, n)`` array of per-category MSE values.
    """
    prior = check_probability_vector(prior, "prior")
    check_positive_int(n_records, "n_records")
    stack = np.asarray(stack, dtype=np.float64)
    inverses = np.asarray(inverses, dtype=np.float64)
    if stack.ndim != 3 or stack.shape[1:] != (prior.size, prior.size):
        raise ValidationError(
            f"matrix stack shape {stack.shape} does not match prior length {prior.size}"
        )
    if inverses.shape != stack.shape:
        raise ValidationError(
            f"inverse stack shape {inverses.shape} does not match matrix stack {stack.shape}"
        )
    disguised = np.matmul(stack, prior[None, :, None])  # (B, n, 1): P* = M P
    linear = np.matmul(inverses, disguised)[..., 0]
    quadratic = np.matmul(inverses**2, disguised)[..., 0]
    return (quadratic - linear**2) / float(n_records)


def utility_score_batch(
    stack: np.ndarray,
    inverses: np.ndarray,
    prior: np.ndarray,
    n_records: int,
) -> np.ndarray:
    """Per-matrix average closed-form MSE (Eq. 10) for a ``(B, n, n)`` stack."""
    return theoretical_mse_batch(stack, inverses, prior, n_records).mean(axis=1)


def variance_covariance(disguised: np.ndarray, n_records: int) -> np.ndarray:
    """Multinomial covariance matrix of the empirical disguised frequencies.

    ``Var(N_i / N) = P*_i (1 - P*_i) / N`` and
    ``Cov(N_i / N, N_j / N) = -P*_i P*_j / N``; this is the matrix the paper's
    Theorem 6 expands term by term.
    """
    p_star = check_probability_vector(disguised, "disguised")
    check_positive_int(n_records, "n_records")
    covariance = -np.outer(p_star, p_star)
    covariance[np.diag_indices_from(covariance)] = p_star * (1.0 - p_star)
    return covariance / float(n_records)


def theoretical_mse_from_covariance(
    matrix: RRMatrix, prior: np.ndarray, n_records: int
) -> np.ndarray:
    """Per-category MSE computed via the explicit quadratic form
    ``B Sigma B^T`` (used in tests to cross-check the fast closed form)."""
    prior = check_probability_vector(prior, "prior")
    inverse = matrix.inverse()
    disguised = matrix.disguise_distribution(prior)
    covariance = variance_covariance(disguised, n_records)
    return np.einsum("ki,ij,kj->k", inverse, covariance, inverse)


def empirical_mse(
    estimates: list[DistributionEstimate] | list[np.ndarray],
    true_prior: np.ndarray,
) -> float:
    """Empirical mean squared error of repeated distribution estimates.

    Used by Figure 5(d), where the utility of each matrix is re-measured by
    actually disguising the data and running the iterative estimator, instead
    of using the closed form.
    """
    truth = check_probability_vector(true_prior, "true_prior")
    if not estimates:
        raise ValidationError("at least one estimate is required")
    errors = []
    for estimate in estimates:
        vector = estimate.probabilities if isinstance(estimate, DistributionEstimate) else np.asarray(estimate)
        if vector.shape != truth.shape:
            raise ValidationError(
                f"estimate shape {vector.shape} does not match prior shape {truth.shape}"
            )
        errors.append(np.mean((vector - truth) ** 2))
    return float(np.mean(errors))


@dataclass(frozen=True)
class UtilityReport:
    """Full utility analysis of one RR matrix against one prior.

    Attributes
    ----------
    utility:
        Average per-category MSE (Eq. 10); lower is better.
    per_category_mse:
        The closed-form MSE of each category's estimate.
    n_records:
        Sample size the MSE was computed for.
    """

    utility: float
    per_category_mse: np.ndarray
    n_records: int


def utility_report(matrix: RRMatrix, prior: np.ndarray, n_records: int) -> UtilityReport:
    """Compute the full :class:`UtilityReport` for ``matrix`` and ``prior``."""
    per_category = theoretical_mse(matrix, prior, n_records)
    return UtilityReport(
        utility=float(np.mean(per_category)),
        per_category_mse=per_category,
        n_records=int(n_records),
    )
