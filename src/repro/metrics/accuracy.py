"""Adversary accuracy functions and Bayes estimation (Section IV-A).

The paper models the adversary's estimation quality with an accuracy function
``G(x_hat, x)`` and shows that, for any ``G``, the optimal consistent (and, by
Theorem 4, inconsistent) estimation strategy is the Bayes estimate that
maximises the expected accuracy under the posterior ``P(X | Y)``.  For the
paper's 0/1 accuracy function the Bayes estimate reduces to the MAP estimate
(Theorem 3); other accuracy functions are supported so the library can express
application-specific privacy notions (e.g. partial credit for "close"
categories on ordinal domains).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int, check_probability_vector


class AccuracyFunction(ABC):
    """An accuracy score ``G(x_hat, x)`` for estimating ``x`` by ``x_hat``.

    Implementations return a full ``n x n`` score matrix with
    ``scores[estimate, truth] = G(c_estimate, c_truth)`` so Bayes estimation
    is a single matrix product.
    """

    @abstractmethod
    def score_matrix(self, n_categories: int) -> np.ndarray:
        """Return the ``n x n`` score matrix for a domain of ``n`` values."""

    def score(self, estimate: int, truth: int, n_categories: int) -> float:
        """Score a single (estimate, truth) pair."""
        matrix = self.score_matrix(n_categories)
        return float(matrix[estimate, truth])


@dataclass(frozen=True)
class ZeroOneAccuracy(AccuracyFunction):
    """The paper's accuracy function (Eq. 6): 1 when the guess is exactly
    right, 0 otherwise.  Its Bayes estimate is the MAP estimate."""

    def score_matrix(self, n_categories: int) -> np.ndarray:
        check_positive_int(n_categories, "n_categories")
        return np.eye(n_categories)


@dataclass(frozen=True)
class OrdinalAccuracy(AccuracyFunction):
    """Partial-credit accuracy for ordinal domains.

    The score decays linearly with the absolute difference of category
    indices: ``G(i, j) = max(0, 1 - |i - j| / width)``.  With ``width = 1``
    this reduces to the 0/1 function.
    """

    width: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValidationError("width must be positive")

    def score_matrix(self, n_categories: int) -> np.ndarray:
        check_positive_int(n_categories, "n_categories")
        indices = np.arange(n_categories)
        distance = np.abs(indices[:, None] - indices[None, :])
        return np.clip(1.0 - distance / self.width, 0.0, 1.0)


def bayes_estimate(
    posterior: np.ndarray,
    accuracy: AccuracyFunction | None = None,
) -> tuple[int, float]:
    """Optimal Bayes estimate for one observed report.

    Parameters
    ----------
    posterior:
        Posterior probabilities ``P(X = c_i | Y = y)`` over the ``n``
        candidate original values.
    accuracy:
        Accuracy function ``G``; defaults to the 0/1 function, for which this
        is the MAP estimate (Theorem 3).

    Returns
    -------
    tuple
        ``(best_index, expected_accuracy)`` — the estimate maximising the
        expected accuracy (Eq. 5) and the value it attains.
    """
    probs = check_probability_vector(posterior, "posterior")
    accuracy = accuracy or ZeroOneAccuracy()
    scores = accuracy.score_matrix(probs.size)
    expected = scores @ probs
    best = int(np.argmax(expected))
    return best, float(expected[best])


def expected_accuracy(
    prior: np.ndarray,
    rr_matrix: np.ndarray,
    accuracy: AccuracyFunction | None = None,
) -> float:
    """Adversary's overall expected accuracy ``A`` under optimal estimation.

    For each possible report ``y`` the adversary plays the Bayes estimate;
    the per-report expected accuracies are then averaged over the disguised
    distribution ``P(Y)``.  With the 0/1 accuracy function this equals
    ``sum_y max_x M[y, x] P(x)``, the quantity in Eq. 8.
    """
    prior = check_probability_vector(prior, "prior")
    matrix = np.asarray(rr_matrix, dtype=np.float64)
    if matrix.shape != (prior.size, prior.size):
        raise ValidationError(
            f"rr_matrix must have shape {(prior.size, prior.size)}, got {matrix.shape}"
        )
    accuracy = accuracy or ZeroOneAccuracy()
    scores = accuracy.score_matrix(prior.size)
    joint = matrix * prior[None, :]  # joint[y, x] = P(Y = y, X = x)
    # For report y, expected accuracy of guessing x_hat is
    # sum_x G(x_hat, x) P(x | y); weighting by P(y) turns posteriors into the
    # joint, so the per-report optimum is max over x_hat of (scores @ joint.T)
    per_report = scores @ joint.T  # shape (x_hat, y)
    return float(per_report.max(axis=0).sum())
