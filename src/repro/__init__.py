"""OptRR: Optimizing Randomized Response Schemes for Privacy-Preserving Data Mining.

A production-quality reproduction of Huang & Du (ICDE 2008).  The library
provides:

* the randomized-response substrate (RR matrices, classic schemes, the
  disguise mechanism, distribution estimators) — :mod:`repro.rr`;
* privacy and utility quantification based on estimation theory —
  :mod:`repro.metrics`;
* a generic evolutionary multi-objective optimization engine (SPEA2,
  NSGA-II, weighted-sum baseline) — :mod:`repro.emoo`;
* the OptRR optimizer that searches for Pareto-optimal RR matrices —
  :mod:`repro.core`;
* data generators matching the paper's workloads — :mod:`repro.data`;
* Pareto-front analysis and comparison — :mod:`repro.analysis`;
* privacy-preserving mining applications — :mod:`repro.mining`;
* an experiment harness reproducing every figure — :mod:`repro.experiments`.

Quickstart
----------
>>> from repro import OptRRConfig, OptRROptimizer, normal_distribution
>>> prior = normal_distribution(10)
>>> config = OptRRConfig(n_generations=50, delta=0.8, seed=0)
>>> result = OptRROptimizer(prior, n_records=10_000, config=config).run()
>>> point = result.best_matrix_for_privacy(0.5)
>>> point.matrix.n_categories
10
"""

from repro.core import (
    OptRRConfig,
    OptRROptimizer,
    OptimalSet,
    OptimizationResult,
    ParetoPoint,
    RRMatrixProblem,
    brute_force_front,
    rr_matrix_combinations,
)
from repro.data import (
    CategoricalDataset,
    CategoricalDistribution,
    adult_attribute_distribution,
    gamma_distribution,
    load_adult_like,
    normal_distribution,
    sample_dataset,
    uniform_distribution,
    zipf_distribution,
)
from repro.metrics import (
    MatrixEvaluator,
    privacy_score,
    utility_score,
)
from repro.rr import (
    InversionEstimator,
    IterativeEstimator,
    RRMatrix,
    RandomizedResponse,
    frapp_matrix,
    uniform_perturbation_matrix,
    warner_matrix,
)
from repro.analysis import ParetoFront, compare_fronts

__version__ = "1.0.0"

__all__ = [
    "CategoricalDataset",
    "CategoricalDistribution",
    "InversionEstimator",
    "IterativeEstimator",
    "MatrixEvaluator",
    "OptRRConfig",
    "OptRROptimizer",
    "OptimalSet",
    "OptimizationResult",
    "ParetoFront",
    "ParetoPoint",
    "RRMatrix",
    "RRMatrixProblem",
    "RandomizedResponse",
    "adult_attribute_distribution",
    "brute_force_front",
    "compare_fronts",
    "frapp_matrix",
    "gamma_distribution",
    "load_adult_like",
    "normal_distribution",
    "privacy_score",
    "rr_matrix_combinations",
    "sample_dataset",
    "uniform_distribution",
    "uniform_perturbation_matrix",
    "utility_score",
    "warner_matrix",
    "zipf_distribution",
    "__version__",
]
