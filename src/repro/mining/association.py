"""Privacy-preserving association mining on disguised data.

The related-work systems (Rizvi & Haritsa; Evfimievski et al.) mine
association rules from randomized data by reconstructing itemset supports
from the disguised supports.  This module provides that capability on top of
the contingency-table estimator: supports of attribute-value itemsets are
read off the reconstructed joint distribution, frequent itemsets are found
with a level-wise (Apriori-style) search, and rules are derived with the
usual support/confidence thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError
from repro.mining.contingency import ContingencyEstimator
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_in_unit_interval

#: An item is one (attribute, category code) pair.
Item = tuple[str, int]


@dataclass(frozen=True)
class ItemsetSupport:
    """Support of one itemset (a set of attribute = value conditions)."""

    items: tuple[Item, ...]
    support: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(sorted(self.items)))

    @property
    def size(self) -> int:
        """Number of items in the itemset."""
        return len(self.items)


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent -> consequent``."""

    antecedent: tuple[Item, ...]
    consequent: tuple[Item, ...]
    support: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        left = " & ".join(f"{attr}={code}" for attr, code in self.antecedent)
        right = " & ".join(f"{attr}={code}" for attr, code in self.consequent)
        return f"{left} -> {right} (support={self.support:.3f}, confidence={self.confidence:.3f})"


@dataclass
class AssociationMiner:
    """Mine frequent itemsets and rules from RR-disguised data.

    Parameters
    ----------
    matrices:
        RR matrix used to disguise each attribute (attributes without a
        matrix are treated as undisguised).
    min_support:
        Minimum estimated support of a frequent itemset.
    min_confidence:
        Minimum confidence of a reported rule.
    max_itemset_size:
        Largest itemset size explored (joint reconstruction over many
        attributes grows exponentially, so keep this small).
    """

    matrices: Mapping[str, RRMatrix]
    min_support: float = 0.1
    min_confidence: float = 0.6
    max_itemset_size: int = 3

    def __post_init__(self) -> None:
        check_in_unit_interval(self.min_support, "min_support")
        check_in_unit_interval(self.min_confidence, "min_confidence")
        if self.max_itemset_size < 1:
            raise DataError("max_itemset_size must be at least 1")

    # -- supports -----------------------------------------------------------
    def itemset_support(
        self, disguised: CategoricalDataset, items: Sequence[Item]
    ) -> ItemsetSupport:
        """Estimate the support of one itemset from the disguised data."""
        items = tuple(items)
        if not items:
            raise DataError("itemset must not be empty")
        attributes = [attribute for attribute, _ in items]
        if len(set(attributes)) != len(attributes):
            raise DataError("an itemset may contain each attribute at most once")
        estimator = ContingencyEstimator(self.matrices)
        table = estimator.estimate(disguised, attributes)
        # Sum the joint probability over all cells consistent with the items.
        assignment = {attribute: code for attribute, code in items}
        support = table.probability(assignment)
        return ItemsetSupport(items, max(0.0, float(support)))

    def frequent_itemsets(
        self, disguised: CategoricalDataset, attributes: Sequence[str] | None = None
    ) -> list[ItemsetSupport]:
        """Level-wise search for frequent itemsets over ``attributes``."""
        names = tuple(attributes) if attributes is not None else disguised.attribute_names
        estimator = ContingencyEstimator(self.matrices)
        frequent: list[ItemsetSupport] = []
        # Level 1: single items, read from per-attribute marginals.
        single_frequent: list[Item] = []
        for name in names:
            table = estimator.estimate(disguised, [name])
            marginal = table.marginal(name)
            for code, probability in enumerate(marginal):
                if probability >= self.min_support:
                    item = (name, code)
                    single_frequent.append(item)
                    frequent.append(ItemsetSupport((item,), float(probability)))
        # Levels 2..k: combine frequent single items over distinct attributes.
        for size in range(2, self.max_itemset_size + 1):
            for combo in combinations(single_frequent, size):
                combo_attributes = [attribute for attribute, _ in combo]
                if len(set(combo_attributes)) != size:
                    continue
                candidate = self.itemset_support(disguised, combo)
                if candidate.support >= self.min_support:
                    frequent.append(candidate)
        return frequent

    # -- rules ---------------------------------------------------------------
    def mine_rules(
        self, disguised: CategoricalDataset, attributes: Sequence[str] | None = None
    ) -> list[AssociationRule]:
        """Derive association rules from the frequent itemsets."""
        itemsets = self.frequent_itemsets(disguised, attributes)
        support_index = {itemset.items: itemset.support for itemset in itemsets}
        rules: list[AssociationRule] = []
        for itemset in itemsets:
            if itemset.size < 2:
                continue
            for antecedent_size in range(1, itemset.size):
                for antecedent in combinations(itemset.items, antecedent_size):
                    antecedent = tuple(sorted(antecedent))
                    consequent = tuple(sorted(set(itemset.items) - set(antecedent)))
                    antecedent_support = support_index.get(antecedent)
                    if antecedent_support is None or antecedent_support <= 0:
                        continue
                    confidence = itemset.support / antecedent_support
                    if confidence >= self.min_confidence:
                        rules.append(
                            AssociationRule(
                                antecedent=antecedent,
                                consequent=consequent,
                                support=itemset.support,
                                confidence=min(confidence, 1.0),
                            )
                        )
        rules.sort(key=lambda rule: (rule.confidence, rule.support), reverse=True)
        return rules
