"""Joint-distribution (contingency-table) reconstruction from disguised data.

When several attributes are disguised independently, the joint distribution of
the original attributes can be estimated from the joint distribution of the
disguised attributes with the Kronecker-product RR matrix — exactly the
one-dimensional inversion estimator applied to the product domain.  This is
the substrate both PPDM applications (association mining, decision trees)
build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError
from repro.rr.matrix import RRMatrix
from repro.rr.multidim import MultiDimensionalRR


@dataclass(frozen=True)
class ContingencyTable:
    """Estimated joint distribution over a set of categorical attributes.

    Attributes
    ----------
    attribute_names:
        The attributes covered, in axis order.
    domain_sizes:
        Number of categories of each attribute.
    probabilities:
        Joint probability array of shape ``domain_sizes``.
    """

    attribute_names: tuple[str, ...]
    domain_sizes: tuple[int, ...]
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        probabilities = np.asarray(self.probabilities, dtype=np.float64)
        if probabilities.shape != tuple(self.domain_sizes):
            raise DataError(
                f"probabilities shape {probabilities.shape} does not match "
                f"domain sizes {self.domain_sizes}"
            )
        object.__setattr__(self, "probabilities", probabilities)

    def probability(self, assignment: Mapping[str, int]) -> float:
        """Probability of a full assignment ``{attribute: code}``."""
        index = tuple(assignment[name] for name in self.attribute_names)
        return float(self.probabilities[index])

    def marginal(self, name: str) -> np.ndarray:
        """Marginal distribution of one attribute."""
        if name not in self.attribute_names:
            raise DataError(f"attribute {name!r} is not part of this table")
        axis = self.attribute_names.index(name)
        axes = tuple(i for i in range(len(self.attribute_names)) if i != axis)
        return self.probabilities.sum(axis=axes)

    def conditional(self, target: str, given: Mapping[str, int]) -> np.ndarray:
        """Conditional distribution of ``target`` given fixed codes for some
        other attributes."""
        if target in given:
            raise DataError("target attribute must not appear in the condition")
        slicer: list[object] = []
        for name in self.attribute_names:
            if name == target:
                slicer.append(slice(None))
            elif name in given:
                slicer.append(int(given[name]))
            else:
                slicer.append(slice(None))
        selected = self.probabilities[tuple(slicer)]
        # Sum out any attributes that are neither target nor conditioned on.
        free_axes = []
        axis_counter = 0
        for name in self.attribute_names:
            if name == target:
                axis_counter += 1
                continue
            if name not in given:
                free_axes.append(axis_counter)
                axis_counter += 1
        if free_axes:
            selected = selected.sum(axis=tuple(free_axes))
        total = selected.sum()
        if total <= 0:
            return np.full(selected.shape, 1.0 / selected.size)
        return selected / total


@dataclass(frozen=True)
class ContingencyEstimator:
    """Estimate the joint distribution of disguised attributes.

    Parameters
    ----------
    matrices:
        Mapping from attribute name to the RR matrix it was disguised with.
        Attributes not present are assumed undisguised (identity matrix).
    method:
        Estimation method: ``"inversion"`` or ``"iterative"``.
    """

    matrices: Mapping[str, RRMatrix]
    method: str = "inversion"

    def estimate(
        self, disguised: CategoricalDataset, attribute_names: Sequence[str]
    ) -> ContingencyTable:
        """Estimate the joint original distribution of ``attribute_names`` from
        a disguised dataset."""
        names = tuple(attribute_names)
        if not names:
            raise DataError("at least one attribute is required")
        matrices = []
        sizes = []
        for name in names:
            attribute = disguised.attribute(name)
            sizes.append(attribute.n_categories)
            matrix = self.matrices.get(name)
            if matrix is None:
                matrix = RRMatrix.identity(attribute.n_categories)
            if matrix.n_categories != attribute.n_categories:
                raise DataError(
                    f"RR matrix for {name!r} has domain {matrix.n_categories} but the "
                    f"attribute has {attribute.n_categories} categories"
                )
            matrices.append(matrix)
        mechanism = MultiDimensionalRR(names, tuple(matrices))
        estimate = mechanism.estimate_joint_distribution(disguised, method=self.method)
        joint = estimate.probabilities.reshape(tuple(sizes))
        return ContingencyTable(names, tuple(sizes), joint)

    def estimate_true(
        self, original: CategoricalDataset, attribute_names: Sequence[str]
    ) -> ContingencyTable:
        """Empirical joint distribution of the *original* dataset (ground
        truth for evaluating reconstruction error)."""
        names = tuple(attribute_names)
        sizes = [original.attribute(name).n_categories for name in names]
        joint_codes = np.zeros(original.n_records, dtype=np.int64)
        for name, size in zip(names, sizes):
            joint_codes = joint_codes * size + original.column(name)
        counts = np.bincount(joint_codes, minlength=int(np.prod(sizes))).astype(np.float64)
        joint = (counts / counts.sum()).reshape(tuple(sizes))
        return ContingencyTable(names, tuple(sizes), joint)
