"""Privacy-preserving decision-tree building on disguised data.

Du & Zhan's related-work system builds decision trees from randomized data by
reconstructing the class/attribute joint distributions needed for the split
criterion instead of counting raw records.  This module implements that idea
on top of the contingency estimator: at every node the information gain of
each candidate attribute is computed from a reconstructed joint distribution
of (attribute, class) restricted to the node's path condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.data.dataset import CategoricalDataset
from repro.exceptions import DataError
from repro.mining.contingency import ContingencyEstimator
from repro.rr.matrix import RRMatrix
from repro.utils.validation import check_positive_int


def _entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy (nats) of a probability vector, ignoring zeros."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    positive = probabilities[probabilities > 0]
    if positive.size == 0:
        return 0.0
    return float(-(positive * np.log(positive)).sum())


@dataclass
class DecisionTreeNode:
    """One node of the reconstructed decision tree."""

    depth: int
    class_distribution: np.ndarray
    split_attribute: str | None = None
    children: dict[int, "DecisionTreeNode"] = field(default_factory=dict)
    n_estimated: float = 0.0

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no split."""
        return self.split_attribute is None

    @property
    def predicted_class(self) -> int:
        """Majority class according to the reconstructed distribution."""
        return int(np.argmax(self.class_distribution))

    def predict_one(self, record: Mapping[str, int]) -> int:
        """Predict the class code of one record (a ``{attribute: code}``
        mapping)."""
        node: DecisionTreeNode = self
        while not node.is_leaf:
            value = record.get(node.split_attribute)
            child = node.children.get(int(value)) if value is not None else None
            if child is None:
                break
            node = child
        return node.predicted_class

    def count_nodes(self) -> int:
        """Total number of nodes in the subtree rooted here."""
        return 1 + sum(child.count_nodes() for child in self.children.values())


@dataclass
class DecisionTreeBuilder:
    """Build a decision tree from RR-disguised data.

    Parameters
    ----------
    matrices:
        RR matrix used for each disguised attribute (attributes without a
        matrix are treated as undisguised; the class attribute is typically
        undisguised at the miner's site).
    class_attribute:
        The attribute to predict.
    max_depth:
        Maximum tree depth.
    min_information_gain:
        Minimum information gain required to split a node.
    min_node_probability:
        Minimum estimated probability mass of a node; branches thinner than
        this are turned into leaves to avoid chasing reconstruction noise.
    """

    matrices: Mapping[str, RRMatrix]
    class_attribute: str
    max_depth: int = 3
    min_information_gain: float = 1e-3
    min_node_probability: float = 0.01

    def __post_init__(self) -> None:
        check_positive_int(self.max_depth, "max_depth")
        if self.min_information_gain < 0:
            raise DataError("min_information_gain must be non-negative")
        if not 0 <= self.min_node_probability < 1:
            raise DataError("min_node_probability must be in [0, 1)")

    def build(
        self,
        disguised: CategoricalDataset,
        candidate_attributes: list[str] | None = None,
    ) -> DecisionTreeNode:
        """Build the tree from a disguised dataset."""
        if self.class_attribute not in disguised.attribute_names:
            raise DataError(f"class attribute {self.class_attribute!r} not in dataset")
        candidates = (
            list(candidate_attributes)
            if candidate_attributes is not None
            else [name for name in disguised.attribute_names if name != self.class_attribute]
        )
        if self.class_attribute in candidates:
            raise DataError("the class attribute cannot be a split candidate")
        estimator = ContingencyEstimator(self.matrices)
        return self._build_node(disguised, estimator, candidates, path={}, depth=0, mass=1.0)

    # -- internals -------------------------------------------------------------
    def _build_node(
        self,
        disguised: CategoricalDataset,
        estimator: ContingencyEstimator,
        candidates: list[str],
        path: dict[str, int],
        depth: int,
        mass: float,
    ) -> DecisionTreeNode:
        class_distribution = self._class_distribution(disguised, estimator, path)
        node = DecisionTreeNode(
            depth=depth,
            class_distribution=class_distribution,
            n_estimated=mass * disguised.n_records,
        )
        if depth >= self.max_depth or not candidates or mass < self.min_node_probability:
            return node
        best_attribute, best_gain = self._best_split(disguised, estimator, candidates, path)
        if best_attribute is None or best_gain < self.min_information_gain:
            return node
        node.split_attribute = best_attribute
        attribute = disguised.attribute(best_attribute)
        remaining = [name for name in candidates if name != best_attribute]
        branch_table = estimator.estimate(
            disguised, list(path.keys()) + [best_attribute]
        ) if path else estimator.estimate(disguised, [best_attribute])
        for code in range(attribute.n_categories):
            branch_path = dict(path)
            branch_path[best_attribute] = code
            branch_mass = self._path_probability(branch_table, branch_path)
            if branch_mass <= 0:
                continue
            node.children[code] = self._build_node(
                disguised, estimator, remaining, branch_path, depth + 1, branch_mass
            )
        if not node.children:
            node.split_attribute = None
        return node

    def _class_distribution(
        self,
        disguised: CategoricalDataset,
        estimator: ContingencyEstimator,
        path: dict[str, int],
    ) -> np.ndarray:
        attributes = list(path.keys()) + [self.class_attribute]
        table = estimator.estimate(disguised, attributes)
        if path:
            return table.conditional(self.class_attribute, path)
        return table.marginal(self.class_attribute)

    def _path_probability(self, table, path: dict[str, int]) -> float:
        relevant = {name: code for name, code in path.items() if name in table.attribute_names}
        if not relevant:
            return 1.0
        # Marginalise the joint over the attributes not in the path.
        probabilities = table.probabilities
        names = table.attribute_names
        slicer = tuple(
            relevant[name] if name in relevant else slice(None) for name in names
        )
        selected = probabilities[slicer]
        return float(np.clip(np.sum(selected), 0.0, 1.0))

    def _best_split(
        self,
        disguised: CategoricalDataset,
        estimator: ContingencyEstimator,
        candidates: list[str],
        path: dict[str, int],
    ) -> tuple[str | None, float]:
        parent_distribution = self._class_distribution(disguised, estimator, path)
        parent_entropy = _entropy(parent_distribution)
        best_attribute: str | None = None
        best_gain = -np.inf
        for name in candidates:
            attributes = list(path.keys()) + [name, self.class_attribute]
            table = estimator.estimate(disguised, attributes)
            gain = self._information_gain(table, name, path, parent_entropy)
            if gain > best_gain:
                best_attribute, best_gain = name, gain
        return best_attribute, float(best_gain)

    def _information_gain(
        self, table, attribute: str, path: dict[str, int], parent_entropy: float
    ) -> float:
        attribute_axis = table.attribute_names.index(attribute)
        class_axis = table.attribute_names.index(self.class_attribute)
        probabilities = table.probabilities
        # Condition on the path attributes first.
        slicer = []
        for index, name in enumerate(table.attribute_names):
            if name in path:
                slicer.append(int(path[name]))
            else:
                slicer.append(slice(None))
        conditioned = probabilities[tuple(slicer)]
        # After slicing, the remaining axes are (attribute, class) in original
        # order; normalise to a proper joint distribution.
        if conditioned.ndim != 2:
            raise DataError("unexpected contingency shape during information gain")
        if attribute_axis > class_axis:
            conditioned = conditioned.T
        total = conditioned.sum()
        if total <= 0:
            return 0.0
        joint = conditioned / total
        attribute_marginal = joint.sum(axis=1)
        conditional_entropy = 0.0
        for value_probability, row in zip(attribute_marginal, joint):
            if value_probability <= 0:
                continue
            conditional_entropy += value_probability * _entropy(row / value_probability)
        return parent_entropy - conditional_entropy
