"""Privacy-preserving data-mining applications built on randomized response.

These modules exercise the optimized RR matrices end to end in the scenarios
the paper's introduction and related work motivate: reconstructing joint
distributions of several disguised attributes, estimating itemset supports
for association-rule mining, and building decision trees from disguised data.
"""

from repro.mining.contingency import ContingencyEstimator, ContingencyTable
from repro.mining.association import AssociationMiner, AssociationRule, ItemsetSupport
from repro.mining.decision_tree import DecisionTreeBuilder, DecisionTreeNode

__all__ = [
    "AssociationMiner",
    "AssociationRule",
    "ContingencyEstimator",
    "ContingencyTable",
    "DecisionTreeBuilder",
    "DecisionTreeNode",
    "ItemsetSupport",
]
