"""Environmental and mating selection (Sections V-C and V-D of the paper).

Environmental selection builds the next archive from the union of the current
archive and population: all non-dominated individuals are copied; an underfull
archive is topped up with the best dominated individuals; an overfull archive
is truncated by iteratively removing the individual with the smallest
nearest-neighbour distance (ties broken on the next-nearest neighbour, and so
on), which preserves diversity along the front.

Mating selection is a binary tournament on fitness.

The truncation inner loop uses ``np.sort`` + ``np.lexsort`` per removal (the
lexicographic argmin over sorted neighbour-distance rows runs in C); the
tournament draws and compares all pairs in one vectorized step.
"""

from __future__ import annotations

import numpy as np

from repro.emoo.density import pairwise_distances
from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.individual import Individual, objectives_array
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_positive_int


def environmental_selection(
    union: list[Individual],
    archive_size: int,
    *,
    density_k: int = 1,
    assign_fitness: bool = True,
) -> list[Individual]:
    """Select the next archive of exactly ``archive_size`` individuals.

    Parameters
    ----------
    union:
        The multiset union of the current population and archive.
    archive_size:
        Target archive size ``N_V``.
    density_k:
        The ``k`` used by the density estimator during fitness assignment.
    assign_fitness:
        When True (default) SPEA2 fitness is (re)assigned to ``union`` first.
    """
    check_positive_int(archive_size, "archive_size")
    if not union:
        raise OptimizationError("environmental selection needs a non-empty union")
    if assign_fitness:
        fitness = assign_spea2_fitness(union, density_k)
    else:
        fitness = np.array([individual.fitness for individual in union])
    non_dominated_mask = fitness < 1.0
    n_non_dominated = int(non_dominated_mask.sum())
    if n_non_dominated == archive_size:
        return [union[index] for index in np.flatnonzero(non_dominated_mask)]
    if n_non_dominated < archive_size:
        dominated_index = np.flatnonzero(~non_dominated_mask)
        # Stable sort on fitness keeps the original order between ties, like
        # the Python ``sorted`` it replaces.
        best_dominated = dominated_index[
            np.argsort(fitness[dominated_index], kind="stable")
        ]
        needed = archive_size - n_non_dominated
        chosen = [union[index] for index in np.flatnonzero(non_dominated_mask)]
        chosen.extend(union[index] for index in best_dominated[:needed])
        return chosen
    non_dominated = [union[index] for index in np.flatnonzero(non_dominated_mask)]
    return truncate_archive(non_dominated, archive_size)


def truncate_archive(archive: list[Individual], target_size: int) -> list[Individual]:
    """Iteratively remove the most crowded individuals until ``target_size``.

    At each step the individual with the lexicographically smallest vector of
    sorted nearest-neighbour distances is removed, exactly as in SPEA2.  The
    lexicographic argmin is one ``np.lexsort`` over the sorted distance rows
    (stable, so ties keep the lowest index — the same winner as a sequential
    strict comparison).
    """
    check_positive_int(target_size, "target_size")
    survivors = list(archive)
    if len(survivors) <= target_size:
        return survivors
    distances = pairwise_distances(objectives_array(survivors))
    np.fill_diagonal(distances, np.inf)
    alive = np.arange(len(survivors))
    while alive.size > target_size:
        sub = distances[np.ix_(alive, alive)]
        sorted_rows = np.sort(sub, axis=1)
        # lexsort treats the LAST key as primary, so feed the columns
        # (nearest first) in reverse.
        order = np.lexsort(sorted_rows.T[::-1])
        alive = np.delete(alive, order[0])
    return [survivors[index] for index in alive]


def binary_tournament(
    pool: list[Individual],
    n_selections: int,
    seed: SeedLike = None,
) -> list[Individual]:
    """Binary tournament selection on fitness (lower fitness wins).

    Returns ``n_selections`` individuals (with replacement across
    tournaments).  Requires that fitness has been assigned.  All tournament
    pairs are drawn and decided in one vectorized step.
    """
    check_positive_int(n_selections, "n_selections")
    if not pool:
        raise OptimizationError("mating selection needs a non-empty pool")
    rng = as_rng(seed)
    pairs = rng.integers(0, len(pool), size=(n_selections, 2))
    fitness = np.array([individual.fitness for individual in pool])
    winners = np.where(
        fitness[pairs[:, 0]] <= fitness[pairs[:, 1]], pairs[:, 0], pairs[:, 1]
    )
    return [pool[index] for index in winners]
