"""Environmental and mating selection (Sections V-C and V-D of the paper).

Environmental selection builds the next archive from the union of the current
archive and population: all non-dominated individuals are copied; an underfull
archive is topped up with the best dominated individuals; an overfull archive
is truncated by iteratively removing the individual with the smallest
nearest-neighbour distance (ties broken on the next-nearest neighbour, and so
on), which preserves diversity along the front.

Mating selection is a binary tournament on fitness.

The functions here are *index-native*: they take raw fitness / objective /
distance arrays and return index arrays, which is how the structure-of-arrays
generation loop (:mod:`repro.emoo.population`) uses them — the pairwise
distance matrix is computed once per generation and shared between density
estimation and truncation.  The ``Individual``-list functions are thin
wrappers kept for the result boundary and the reference implementations.

Truncation is incremental: the distance matrix is masked in place per removal
(the victim's row and column are set to ``+inf``) and the next victim is found
with one ``min``-reduction — the full ``np.ix_`` copy + row sort + lexsort of
the reference implementation only runs over the (rare) rows that tie on their
nearest-neighbour distance.  The removal order is bit-for-bit identical to the
reference (property-tested in ``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.emoo.density import pairwise_distances
from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.individual import Individual, objectives_array
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_positive_int


# -- index-native engine ------------------------------------------------------
def environmental_selection_indices(
    fitness: np.ndarray,
    archive_size: int,
    *,
    distances: np.ndarray | None = None,
    objectives: np.ndarray | None = None,
) -> np.ndarray:
    """Indices of the next archive, selected from fitness (and distances).

    Parameters
    ----------
    fitness:
        SPEA2 fitness of the union (``F < 1`` marks non-dominated rows).
    archive_size:
        Target archive size ``N_V``.
    distances:
        Pairwise objective-distance matrix of the union; required (directly or
        via ``objectives``) only when the non-dominated set overflows the
        archive and must be truncated.
    objectives:
        Union objective matrix, used to compute ``distances`` when a
        truncation is needed and no matrix was supplied.

    Returns the selected row indices into the union, in the same order the
    list-based selection produced: non-dominated rows first (original order),
    then — only when underfull — the best dominated rows by fitness.
    """
    check_positive_int(archive_size, "archive_size")
    fitness = np.asarray(fitness, dtype=np.float64)
    if fitness.size == 0:
        raise OptimizationError("environmental selection needs a non-empty union")
    non_dominated_index = np.flatnonzero(fitness < 1.0)
    if non_dominated_index.size == archive_size:
        return non_dominated_index
    if non_dominated_index.size < archive_size:
        dominated_index = np.flatnonzero(fitness >= 1.0)
        # Stable sort on fitness keeps the original order between ties, like
        # the Python ``sorted`` it replaces.
        best_dominated = dominated_index[
            np.argsort(fitness[dominated_index], kind="stable")
        ]
        needed = archive_size - non_dominated_index.size
        return np.concatenate([non_dominated_index, best_dominated[:needed]])
    if distances is None:
        if objectives is None:
            raise OptimizationError(
                "truncation needs the pairwise distances (or the objectives "
                "to compute them from)"
            )
        distances = pairwise_distances(np.asarray(objectives, dtype=np.float64))
    sub = distances[np.ix_(non_dominated_index, non_dominated_index)]
    return non_dominated_index[truncate_indices(sub, archive_size)]


def truncate_indices(distances: np.ndarray, target_size: int) -> np.ndarray:
    """Indices surviving SPEA2 archive truncation, computed incrementally.

    ``distances`` is the pairwise objective-distance matrix of the candidate
    set (its diagonal is ignored).  At each step the candidate with the
    lexicographically smallest vector of sorted nearest-neighbour distances is
    removed, exactly as in SPEA2.  Instead of re-slicing and fully re-sorting
    the alive submatrix per removal, the matrix is masked in place (+inf on
    the victim's row and column) and each pass reduces to one row-``min``;
    the full lexicographic comparison only runs over rows tied on that
    nearest distance.  Survivors are returned in ascending index order —
    bit-for-bit the reference semantics.
    """
    check_positive_int(target_size, "target_size")
    distances = np.asarray(distances, dtype=np.float64)
    size = distances.shape[0]
    if size <= target_size:
        return np.arange(size)
    masked = distances.copy()
    np.fill_diagonal(masked, np.inf)
    alive = np.ones(size, dtype=bool)
    # Zero-phase: exact duplicates always go first (a row with a zero entry is
    # lexicographically smaller than any zero-free row), handled at cluster
    # granularity instead of re-deriving ties per removal.
    n_alive = _remove_duplicate_clusters(masked, alive, size, target_size)
    if n_alive <= target_size:
        return np.flatnonzero(alive)
    # Main phase (no zero distances left).  Nearest-neighbour distance (and
    # where it is achieved) per row, maintained incrementally: a removal only
    # invalidates the rows whose nearest neighbour was the victim.
    nearest = masked.min(axis=1)
    nearest[~alive] = np.inf
    nearest_at = masked.argmin(axis=1)
    while n_alive > target_size:
        victim = int(np.argmin(nearest))
        tied = np.flatnonzero(nearest == nearest[victim])
        if tied.size > 1:
            # Rare path: break the tie on the full sorted neighbour-distance
            # vectors.  lexsort treats the LAST key as primary, so feed the
            # columns (nearest first) in reverse; stability keeps the lowest
            # index between fully-tied rows, matching the reference.
            alive_columns = np.flatnonzero(alive)
            rows = np.sort(masked[np.ix_(tied, alive_columns)], axis=1)
            victim = int(tied[np.lexsort(rows.T[::-1])[0]])
        masked[victim, :] = np.inf
        masked[:, victim] = np.inf
        alive[victim] = False
        nearest[victim] = np.inf
        n_alive -= 1
        if n_alive > target_size:
            stale = np.flatnonzero(alive & (nearest_at == victim))
            if stale.size:
                rows = masked[stale]
                nearest[stale] = rows.min(axis=1)
                nearest_at[stale] = rows.argmin(axis=1)
    return np.flatnonzero(alive)


def _remove_duplicate_clusters(
    masked: np.ndarray, alive: np.ndarray, n_alive: int, target_size: int
) -> int:
    """Exact-duplicate removal phase of SPEA2 truncation, run at cluster level.

    Exact duplicates form zero-distance cliques, and the reference removal
    order over them is structured: any member of a size-``c`` cluster carries
    ``c - 1`` leading zeros in its sorted row, so members of the *largest*
    cluster sort below everything else, clusters tied on size compare on
    their (identical within a cluster) full rows, and sort stability removes
    the lowest remaining index within the chosen cluster.  This phase
    replays exactly that order while only comparing one representative row
    per tied cluster — and when the removal budget covers all duplicates,
    the outcome (each cluster keeps its highest member) is applied in one
    vectorized step.  Ω re-injection makes duplicate clusters the common
    case on real populations, which is what made per-removal re-sorting the
    generation loop's top hotspot.

    ``masked`` and ``alive`` are updated in place; returns the new number of
    alive rows.
    """
    if n_alive <= target_size:
        return n_alive
    zero_pairs = masked == 0.0
    members = np.flatnonzero(zero_pairs.any(axis=1))
    if members.size == 0:
        return n_alive
    # The first zero entry of a member's row is the cluster's lowest index
    # (or its second-lowest, for the lowest member itself), which canonically
    # labels the cluster.
    labels = np.minimum(members, zero_pairs[members].argmax(axis=1))
    budget = n_alive - target_size
    excess = members.size - np.unique(labels).size
    if excess <= budget:
        # Order-free bulk case: the phase runs to completion, so each cluster
        # keeps exactly its highest-index member no matter the removal order.
        # ``members`` is ascending, so the last occurrence of each label is
        # the survivor.
        _, last_of_label = np.unique(labels[::-1], return_index=True)
        keep = np.zeros(members.size, dtype=bool)
        keep[members.size - 1 - last_of_label] = True
        victims = members[~keep]
        masked[victims, :] = np.inf
        masked[:, victims] = np.inf
        alive[victims] = False
        return n_alive - victims.size
    # Partial case: the budget runs out mid-phase, so the inter-cluster order
    # matters.  Replay it with per-cluster bookkeeping.
    clusters: dict[int, list[int]] = {}
    for member, label in zip(members.tolist(), labels.tolist()):
        clusters.setdefault(label, []).append(member)
    for _ in range(budget):
        largest = max(len(cluster) for cluster in clusters.values())
        candidates = sorted(
            (cluster for cluster in clusters.values() if len(cluster) == largest),
            key=lambda cluster: cluster[0],
        )
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            # Equal-size clusters tie on their zero prefix; compare the full
            # sorted rows of one representative each (rows are identical
            # within a cluster, and stability resolves full ties to the
            # lowest current member — hence the ascending candidate order).
            representatives = np.array([cluster[0] for cluster in candidates])
            alive_columns = np.flatnonzero(alive)
            rows = np.sort(masked[np.ix_(representatives, alive_columns)], axis=1)
            chosen = candidates[int(np.lexsort(rows.T[::-1])[0])]
        victim = chosen.pop(0)
        masked[victim, :] = np.inf
        masked[:, victim] = np.inf
        alive[victim] = False
        n_alive -= 1
        if len(chosen) == 1:
            clusters = {
                label: cluster for label, cluster in clusters.items() if len(cluster) > 1
            }
            if not clusters:
                break
    return n_alive


def binary_tournament_indices(
    fitness: np.ndarray,
    n_selections: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Winner indices of ``n_selections`` binary tournaments on fitness.

    Lower fitness wins; all tournament pairs are drawn and decided in one
    vectorized step (ties go to the first contestant, like the list version).
    """
    check_positive_int(n_selections, "n_selections")
    fitness = np.asarray(fitness, dtype=np.float64)
    if fitness.size == 0:
        raise OptimizationError("mating selection needs a non-empty pool")
    pairs = rng.integers(0, fitness.size, size=(n_selections, 2))
    return np.where(
        fitness[pairs[:, 0]] <= fitness[pairs[:, 1]], pairs[:, 0], pairs[:, 1]
    )


# -- Individual-list boundary -------------------------------------------------
def environmental_selection(
    union: list[Individual],
    archive_size: int,
    *,
    density_k: int = 1,
    assign_fitness: bool = True,
) -> list[Individual]:
    """Select the next archive of exactly ``archive_size`` individuals.

    ``Individual``-list wrapper over :func:`environmental_selection_indices`,
    kept for the result boundary and the reference loop.

    Parameters
    ----------
    union:
        The multiset union of the current population and archive.
    archive_size:
        Target archive size ``N_V``.
    density_k:
        The ``k`` used by the density estimator during fitness assignment.
    assign_fitness:
        When True (default) SPEA2 fitness is (re)assigned to ``union`` first.
    """
    check_positive_int(archive_size, "archive_size")
    if not union:
        raise OptimizationError("environmental selection needs a non-empty union")
    if assign_fitness:
        fitness = assign_spea2_fitness(union, density_k)
    else:
        fitness = np.array([individual.fitness for individual in union])
    indices = environmental_selection_indices(
        fitness, archive_size, objectives=objectives_array(union)
    )
    return [union[index] for index in indices]


def truncate_archive(archive: list[Individual], target_size: int) -> list[Individual]:
    """Iteratively remove the most crowded individuals until ``target_size``.

    ``Individual``-list wrapper over :func:`truncate_indices`.
    """
    check_positive_int(target_size, "target_size")
    survivors = list(archive)
    if len(survivors) <= target_size:
        return survivors
    distances = pairwise_distances(objectives_array(survivors))
    keep = truncate_indices(distances, target_size)
    return [survivors[index] for index in keep]


def binary_tournament(
    pool: list[Individual],
    n_selections: int,
    seed: SeedLike = None,
) -> list[Individual]:
    """Binary tournament selection on fitness (lower fitness wins).

    Returns ``n_selections`` individuals (with replacement across
    tournaments).  Requires that fitness has been assigned.
    ``Individual``-list wrapper over :func:`binary_tournament_indices`.
    """
    check_positive_int(n_selections, "n_selections")
    if not pool:
        raise OptimizationError("mating selection needs a non-empty pool")
    rng = as_rng(seed)
    fitness = np.array([individual.fitness for individual in pool])
    winners = binary_tournament_indices(fitness, n_selections, rng)
    return [pool[index] for index in winners]
