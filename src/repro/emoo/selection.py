"""Environmental and mating selection (Sections V-C and V-D of the paper).

Environmental selection builds the next archive from the union of the current
archive and population: all non-dominated individuals are copied; an underfull
archive is topped up with the best dominated individuals; an overfull archive
is truncated by iteratively removing the individual with the smallest
nearest-neighbour distance (ties broken on the next-nearest neighbour, and so
on), which preserves diversity along the front.

Mating selection is a binary tournament on fitness.
"""

from __future__ import annotations

import numpy as np

from repro.emoo.density import pairwise_distances
from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.individual import Individual, objectives_array
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_positive_int


def environmental_selection(
    union: list[Individual],
    archive_size: int,
    *,
    density_k: int = 1,
    assign_fitness: bool = True,
) -> list[Individual]:
    """Select the next archive of exactly ``archive_size`` individuals.

    Parameters
    ----------
    union:
        The multiset union of the current population and archive.
    archive_size:
        Target archive size ``N_V``.
    density_k:
        The ``k`` used by the density estimator during fitness assignment.
    assign_fitness:
        When True (default) SPEA2 fitness is (re)assigned to ``union`` first.
    """
    check_positive_int(archive_size, "archive_size")
    if not union:
        raise OptimizationError("environmental selection needs a non-empty union")
    if assign_fitness:
        assign_spea2_fitness(union, density_k)
    non_dominated = [individual for individual in union if individual.fitness < 1.0]
    if len(non_dominated) == archive_size:
        return list(non_dominated)
    if len(non_dominated) < archive_size:
        dominated = sorted(
            (individual for individual in union if individual.fitness >= 1.0),
            key=lambda individual: individual.fitness,
        )
        needed = archive_size - len(non_dominated)
        return list(non_dominated) + dominated[:needed]
    return truncate_archive(non_dominated, archive_size)


def truncate_archive(archive: list[Individual], target_size: int) -> list[Individual]:
    """Iteratively remove the most crowded individuals until ``target_size``.

    At each step the individual with the lexicographically smallest vector of
    sorted nearest-neighbour distances is removed, exactly as in SPEA2.
    """
    check_positive_int(target_size, "target_size")
    survivors = list(archive)
    if len(survivors) <= target_size:
        return survivors
    distances = pairwise_distances(objectives_array(survivors))
    np.fill_diagonal(distances, np.inf)
    alive = list(range(len(survivors)))
    while len(alive) > target_size:
        sub = distances[np.ix_(alive, alive)]
        sorted_rows = np.sort(sub, axis=1)
        # Lexicographic argmin over rows of sorted neighbour distances.
        worst_position = 0
        for position in range(1, len(alive)):
            if _lexicographically_smaller(sorted_rows[position], sorted_rows[worst_position]):
                worst_position = position
        del alive[worst_position]
    return [survivors[index] for index in alive]


def _lexicographically_smaller(first: np.ndarray, second: np.ndarray) -> bool:
    """Whether distance vector ``first`` is lexicographically smaller."""
    for a, b in zip(first, second):
        if a < b:
            return True
        if a > b:
            return False
    return False


def binary_tournament(
    pool: list[Individual],
    n_selections: int,
    seed: SeedLike = None,
) -> list[Individual]:
    """Binary tournament selection on fitness (lower fitness wins).

    Returns ``n_selections`` individuals (with replacement across
    tournaments).  Requires that fitness has been assigned.
    """
    check_positive_int(n_selections, "n_selections")
    if not pool:
        raise OptimizationError("mating selection needs a non-empty pool")
    rng = as_rng(seed)
    selected: list[Individual] = []
    for _ in range(n_selections):
        first, second = rng.integers(0, len(pool), size=2)
        winner = pool[first] if pool[first].fitness <= pool[second].fitness else pool[second]
        selected.append(winner)
    return selected
