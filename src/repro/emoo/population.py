"""Structure-of-arrays population state for the EMOO generation loop.

The generation loop of every algorithm in this package is dominated by
population-level math: dominance matrices, pairwise distances, fitness
reductions, index-based selection.  Shuttling per-candidate ``Individual``
objects through Python lists puts object construction and attribute access on
that hot path.  :class:`Population` removes it: one object holds the whole
population as parallel arrays — a stacked genome array, an ``(P, m)``
objective matrix, a feasibility mask, columnar metadata and a fitness
vector — and every algorithm step works on index arrays over those columns.

Genomes are stacked once, at the boundary where candidates enter the engine
(:meth:`repro.core.problem.RRMatrixProblem.evaluate_population` produces the
``(P, n, n)`` stack directly from the batch evaluator), and only sliced by
index thereafter; no per-generation re-packing, validation or unpacking
happens inside the loop.  ``Individual`` remains as a thin *view* for the
result boundary: :meth:`Population.individual` / :meth:`to_individuals`
materialise per-candidate objects only when a caller asks for them.

Generic problems whose genomes are opaque Python objects are supported too:
:meth:`Population.from_individuals` keeps the evaluated ``Individual`` views
in the ``source`` column (and the genomes in an object array), so SPEA2 and
NSGA-II run the same array-native selection math regardless of genome type.

Fitness freshness is tracked with a generation stamp
(:attr:`Population.fitness_generation`): environmental selection stamps the
archive it returns, and mating selection asserts the stamp instead of
recomputing fitness — the redundant per-generation SPEA2 fitness
re-assignment the list-based loop performed cannot silently reappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.emoo.individual import Individual
from repro.exceptions import OptimizationError

#: Builds a genome object from one row of the stacked genome array (used by
#: the ``Individual`` views of array-backed populations).
GenomeBuilder = Callable[[np.ndarray], Any]


def _metadata_scalar(value: Any) -> Any:
    """Convert a numpy scalar metadata entry to the plain Python value the
    list-based engine stored (floats stay floats, bools stay bools)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    return value


@dataclass
class Population:
    """One population as a structure of arrays.

    Parameters
    ----------
    genomes:
        Stacked genome array.  Either a numeric ``(P, ...)`` stack (the RR
        path: ``(P, n, n)`` matrices) or a ``(P,)`` object array of opaque
        genomes (the generic path).
    objectives:
        ``(P, m)`` objective matrix (minimisation convention).
    feasible:
        ``(P,)`` boolean feasibility mask.
    metadata:
        Columnar metadata: each key maps to a ``(P,)`` array (e.g. the RR
        problem's ``privacy`` / ``utility`` / ``max_posterior`` columns).
    source:
        Optional per-row ``Individual`` views.  Set by
        :meth:`from_individuals` so generic problems keep their evaluated
        objects; ``None`` on the array-native RR path.
    fitness:
        ``(P,)`` SPEA2 fitness; ``NaN`` until :meth:`set_fitness` stamps it.
    fitness_generation:
        Generation stamp of the last :meth:`set_fitness` call (``-1`` when
        fitness has never been assigned).  Mating selection checks this stamp
        instead of re-running fitness assignment.
    """

    genomes: np.ndarray
    objectives: np.ndarray
    feasible: np.ndarray
    metadata: dict[str, np.ndarray] = field(default_factory=dict)
    source: list[Individual] | None = None
    fitness: np.ndarray = field(default=None)  # type: ignore[assignment]
    fitness_generation: int = -1

    def __post_init__(self) -> None:
        self.objectives = np.asarray(self.objectives, dtype=np.float64)
        if self.objectives.ndim != 2:
            raise OptimizationError(
                f"objectives must be 2-D, got shape {self.objectives.shape}"
            )
        size = self.objectives.shape[0]
        self.feasible = np.asarray(self.feasible, dtype=bool)
        if self.feasible.shape != (size,):
            raise OptimizationError(
                f"feasible mask must have shape ({size},), got {self.feasible.shape}"
            )
        if len(self.genomes) != size:
            raise OptimizationError(
                f"genome stack has {len(self.genomes)} rows for {size} objectives"
            )
        for key, column in self.metadata.items():
            if len(column) != size:
                raise OptimizationError(
                    f"metadata column {key!r} has {len(column)} rows for {size} objectives"
                )
        if self.source is not None and len(self.source) != size:
            raise OptimizationError(
                f"source list has {len(self.source)} rows for {size} objectives"
            )
        if self.fitness is None:
            self.fitness = np.full(size, np.nan)
        else:
            self.fitness = np.asarray(self.fitness, dtype=np.float64)
            if self.fitness.shape != (size,):
                raise OptimizationError(
                    f"fitness must have shape ({size},), got {self.fitness.shape}"
                )

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_individuals(cls, individuals: list[Individual]) -> "Population":
        """Wrap evaluated ``Individual`` objects into a population.

        The objects are kept as the ``source`` column so views returned later
        are the same objects the problem produced (genomes stay opaque).
        """
        if not individuals:
            raise OptimizationError("cannot build a population from no individuals")
        genomes = np.empty(len(individuals), dtype=object)
        for index, individual in enumerate(individuals):
            genomes[index] = individual.genome
        return cls(
            genomes=genomes,
            objectives=np.vstack([individual.objectives for individual in individuals]),
            feasible=np.array([individual.feasible for individual in individuals], dtype=bool),
            source=list(individuals),
        )

    @classmethod
    def concat(cls, first: "Population", second: "Population") -> "Population":
        """Concatenate two populations (the per-generation union ``Q_t + V_t``).

        Fitness is *not* carried over: the union is about to go through a
        fresh fitness assignment, and a stale stamp must not survive the
        concatenation.
        """
        if set(first.metadata) != set(second.metadata):
            raise OptimizationError(
                "cannot concatenate populations with different metadata columns "
                f"({sorted(first.metadata)} != {sorted(second.metadata)})"
            )
        source: list[Individual] | None = None
        if first.source is not None and second.source is not None:
            source = first.source + second.source
        return cls(
            genomes=np.concatenate([first.genomes, second.genomes]),
            objectives=np.concatenate([first.objectives, second.objectives]),
            feasible=np.concatenate([first.feasible, second.feasible]),
            metadata={
                key: np.concatenate([first.metadata[key], second.metadata[key]])
                for key in first.metadata
            },
            source=source,
        )

    # -- shape ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of candidates."""
        return int(self.objectives.shape[0])

    def __len__(self) -> int:
        return self.size

    # -- indexing -------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Population":
        """New population holding the rows at ``indices`` (fancy-index copy).

        Fitness values and the generation stamp are carried along, so an
        archive selected out of a freshly-stamped union keeps its stamp.
        """
        indices = np.asarray(indices, dtype=np.intp)
        source = None
        if self.source is not None:
            source = [self.source[index] for index in indices]
        return Population(
            genomes=self.genomes[indices],
            objectives=self.objectives[indices],
            feasible=self.feasible[indices],
            metadata={key: column[indices] for key, column in self.metadata.items()},
            source=source,
            fitness=self.fitness[indices],
            fitness_generation=self.fitness_generation,
        )

    def genome_at(self, index: int) -> Any:
        """The genome of row ``index`` (an array row or an opaque object)."""
        return self.genomes[index]

    def replace_row(
        self,
        index: int,
        *,
        genome: Any,
        objectives: np.ndarray,
        feasible: bool,
        metadata: dict[str, Any],
        individual: Individual | None = None,
    ) -> None:
        """Overwrite one candidate in place (the Ω back-injection step).

        The row's fitness value is deliberately *kept*: the injected candidate
        inherits the selection fitness of the member it replaces, so the
        archive's generation stamp stays truthful for mating selection.  (The
        list-based loop reset the fitness to NaN and papered over it with a
        redundant re-assignment; see ``docs/architecture.md``.)
        """
        self.genomes[index] = genome
        self.objectives[index] = np.asarray(objectives, dtype=np.float64)
        self.feasible[index] = bool(feasible)
        for key, column in self.metadata.items():
            column[index] = metadata[key]
        if self.source is not None:
            if individual is None:
                raise OptimizationError(
                    "replace_row on a source-backed population needs the Individual view"
                )
            self.source[index] = individual

    # -- fitness --------------------------------------------------------------
    def set_fitness(self, fitness: np.ndarray, generation: int) -> None:
        """Store the fitness column and stamp the generation it belongs to."""
        fitness = np.asarray(fitness, dtype=np.float64)
        if fitness.shape != (self.size,):
            raise OptimizationError(
                f"fitness must have shape ({self.size},), got {fitness.shape}"
            )
        self.fitness = fitness
        self.fitness_generation = generation

    def require_fresh_fitness(self, generation: int) -> np.ndarray:
        """Return the fitness column, asserting it was stamped at ``generation``.

        This is the staleness guard behind the removal of the redundant
        per-generation fitness re-assignment: if a caller ever reaches mating
        selection without the environmental-selection fitness of the same
        generation, it fails loudly instead of silently recomputing.
        """
        if self.fitness_generation != generation:
            raise OptimizationError(
                f"stale fitness: stamped at generation {self.fitness_generation}, "
                f"mating selection runs at generation {generation}"
            )
        return self.fitness

    # -- views ----------------------------------------------------------------
    def individual(self, index: int, genome_builder: GenomeBuilder | None = None) -> Individual:
        """Materialise one row as an :class:`Individual` view."""
        if self.source is not None:
            individual = self.source[index]
            if not np.isnan(self.fitness[index]):
                individual.fitness = float(self.fitness[index])
            return individual
        genome = self.genomes[index]
        if genome_builder is not None:
            genome = genome_builder(genome)
        individual = Individual(
            genome=genome,
            objectives=self.objectives[index].copy(),
            feasible=bool(self.feasible[index]),
            metadata={
                key: _metadata_scalar(column[index])
                for key, column in self.metadata.items()
            },
        )
        if not np.isnan(self.fitness[index]):
            individual.fitness = float(self.fitness[index])
        return individual

    def to_individuals(self, genome_builder: GenomeBuilder | None = None) -> list[Individual]:
        """Materialise the whole population as ``Individual`` views."""
        return [self.individual(index, genome_builder) for index in range(self.size)]
