"""Weighted-sum single-objective GA baseline.

Section V of the paper argues that collapsing privacy and utility into one
scalar fitness is problematic: a single weighting cannot produce a spread of
trade-offs, and weighted sums cannot reach concave regions of the Pareto
front.  This module implements that naive approach — a plain generational GA
optimising ``w * f1 + (1 - w) * f2`` for a sweep of weights — so the ablation
benchmark can show how much narrower its front is than SPEA2's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.emoo.dominance import non_dominated
from repro.emoo.individual import Individual
from repro.emoo.problem import Problem
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.validation import check_in_unit_interval, check_positive_int


@dataclass(frozen=True)
class WeightedSumSettings:
    """Hyper-parameters of the weighted-sum GA baseline."""

    population_size: int = 50
    n_generations: int = 50
    n_weights: int = 11
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    elite_fraction: float = 0.1

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_positive_int(self.n_generations, "n_generations")
        check_positive_int(self.n_weights, "n_weights")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")
        check_in_unit_interval(self.elite_fraction, "elite_fraction")


@dataclass
class WeightedSumResult:
    """Outcome of the weighted-sum sweep: the best individual found per
    weight, plus the non-dominated subset of those."""

    best_per_weight: list[Individual]
    front: list[Individual]
    n_evaluations: int


def _scalar_fitness(individual: Individual, weight: float, scales: np.ndarray) -> float:
    """Weighted sum of normalised objectives (infeasible solutions are pushed
    behind every feasible one)."""
    normalised = individual.objectives / scales
    value = weight * normalised[0] + (1.0 - weight) * normalised[1]
    if not individual.feasible:
        value += 1e6
    return float(value)


@dataclass
class WeightedSumGA:
    """Single-objective GA run once per weight in a uniform weight sweep."""

    problem: Problem
    settings: WeightedSumSettings = field(default_factory=WeightedSumSettings)
    seed: SeedLike = None

    def run(self) -> WeightedSumResult:
        """Run the weight sweep and return the per-weight winners."""
        if self.problem.n_objectives != 2:
            raise OptimizationError("the weighted-sum baseline only supports two objectives")
        rng = as_rng(self.seed)
        settings = self.settings
        weights = np.linspace(0.0, 1.0, settings.n_weights)
        best_per_weight: list[Individual] = []
        n_evaluations = 0
        # A common objective scale, estimated from a random sample, keeps the
        # two objectives comparable inside the scalarisation.
        sample = self.problem.initial_population(settings.population_size, rng)
        n_evaluations += len(sample)
        objective_matrix = np.vstack([np.abs(ind.objectives) for ind in sample])
        scales = np.maximum(objective_matrix.max(axis=0), 1e-12)
        for weight in weights:
            population = [individual.copy() for individual in sample]
            for _ in range(settings.n_generations):
                population.sort(key=lambda ind, _w=weight: _scalar_fitness(ind, _w, scales))
                n_elite = max(1, int(settings.elite_fraction * settings.population_size))
                next_genomes = [ind.genome for ind in population[:n_elite]]
                while len(next_genomes) < settings.population_size:
                    parent_a = self._tournament(population, weight, scales, rng)
                    parent_b = self._tournament(population, weight, scales, rng)
                    if rng.random() < settings.crossover_rate:
                        child, _ = self.problem.crossover(parent_a.genome, parent_b.genome, rng)
                    else:
                        child = parent_a.genome
                    if rng.random() < settings.mutation_rate:
                        child = self.problem.mutate(child, rng)
                    next_genomes.append(self.problem.repair(child, rng))
                population = self.problem.evaluate_genomes(next_genomes)
                n_evaluations += len(population)
            population.sort(key=lambda ind, _w=weight: _scalar_fitness(ind, _w, scales))
            best_per_weight.append(population[0])
        front = non_dominated(best_per_weight)
        return WeightedSumResult(
            best_per_weight=best_per_weight, front=front, n_evaluations=n_evaluations
        )

    def _tournament(
        self,
        population: list[Individual],
        weight: float,
        scales: np.ndarray,
        rng: np.random.Generator,
    ) -> Individual:
        first, second = rng.integers(0, len(population), size=2)
        a, b = population[first], population[second]
        return a if _scalar_fitness(a, weight, scales) <= _scalar_fitness(b, weight, scales) else b
