"""The individual abstraction used by all EMOO algorithms.

An :class:`Individual` wraps an opaque genome together with its objective
vector (minimisation convention), an optional feasibility flag, and the
bookkeeping fields (fitness, density, rank) written by the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import OptimizationError


@dataclass
class Individual:
    """One candidate solution.

    Parameters
    ----------
    genome:
        The problem-specific representation (e.g. an ``RRMatrix``).
    objectives:
        Objective vector; every algorithm in this package *minimises* every
        component.
    feasible:
        Whether the candidate satisfies the problem's constraints.  Feasible
        individuals always dominate infeasible ones (constrained dominance).
    metadata:
        Free-form problem data (e.g. the raw privacy/utility values before
        sign flips).
    """

    genome: Any
    objectives: np.ndarray
    feasible: bool = True
    metadata: dict = field(default_factory=dict)

    # Algorithm bookkeeping, written during fitness assignment / sorting.
    fitness: float = field(default=float("nan"), compare=False)
    strength: int = field(default=0, compare=False)
    density: float = field(default=0.0, compare=False)
    rank: int = field(default=-1, compare=False)
    crowding: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        objectives = np.asarray(self.objectives, dtype=np.float64)
        if objectives.ndim != 1 or objectives.size == 0:
            raise OptimizationError(
                f"objectives must be a non-empty vector, got shape {objectives.shape}"
            )
        if np.any(np.isnan(objectives)):
            raise OptimizationError("objectives must not contain NaN")
        self.objectives = objectives

    @property
    def n_objectives(self) -> int:
        """Number of objectives."""
        return int(self.objectives.size)

    def copy(self) -> "Individual":
        """Return a shallow copy with fresh bookkeeping fields."""
        return Individual(
            genome=self.genome,
            objectives=self.objectives.copy(),
            feasible=self.feasible,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        objs = ", ".join(f"{value:.4g}" for value in self.objectives)
        tag = "" if self.feasible else ", infeasible"
        return f"Individual(objectives=[{objs}]{tag})"


def objectives_array(population: list[Individual]) -> np.ndarray:
    """Stack the objective vectors of ``population`` into a 2-D array."""
    if not population:
        return np.empty((0, 0))
    return np.vstack([individual.objectives for individual in population])
