"""The problem interface consumed by the EMOO algorithms.

A problem knows how to create random genomes, evaluate them into objective
vectors (minimisation convention), and produce offspring via crossover and
mutation.  Algorithms never look inside genomes, so the same engine optimises
RR matrices (``repro.core``) and any other representation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.emoo.individual import Individual
from repro.exceptions import OptimizationError


class Problem(ABC):
    """A multi-objective optimization problem."""

    #: Number of objectives (all minimised).
    n_objectives: int = 2

    @abstractmethod
    def random_genome(self, rng: np.random.Generator) -> Any:
        """Create one random genome."""

    @abstractmethod
    def evaluate(self, genome: Any) -> Individual:
        """Evaluate ``genome`` into an :class:`Individual` (objectives are
        minimised; set ``feasible=False`` for constraint violations)."""

    @abstractmethod
    def crossover(self, first: Any, second: Any, rng: np.random.Generator) -> tuple[Any, Any]:
        """Produce two child genomes from two parent genomes."""

    @abstractmethod
    def mutate(self, genome: Any, rng: np.random.Generator) -> Any:
        """Return a mutated copy of ``genome``."""

    def repair(self, genome: Any, rng: np.random.Generator) -> Any:
        """Repair a genome after variation (default: no repair)."""
        return genome

    # -- convenience --------------------------------------------------------
    def initial_population(self, size: int, rng: np.random.Generator) -> list[Individual]:
        """Create and evaluate ``size`` random individuals."""
        return [self.evaluate(self.random_genome(rng)) for _ in range(size)]

    def evaluate_genomes(
        self,
        genomes: Sequence[Any],
        *,
        fidelity: float | np.ndarray | None = None,
    ) -> list[Individual]:
        """Evaluate a batch of genomes.

        The default loops over :meth:`evaluate`; problems with a vectorized
        evaluation engine (e.g. :class:`repro.core.problem.RRMatrixProblem`)
        override this with a true batch implementation, which is how the
        generic SPEA2/NSGA-II engines pick up the batch path without knowing
        anything about genome internals.

        ``fidelity`` requests reduced-fidelity evaluation (a scalar or
        per-genome column in ``(0, 1]``).  The base class has no cheap
        approximation to offer, so any non-``None`` value is an error;
        problems that support a fidelity axis override this method.
        """
        if fidelity is not None:
            raise OptimizationError(
                f"{type(self).__name__} does not support reduced-fidelity evaluation"
            )
        return [self.evaluate(genome) for genome in genomes]

    def repair_genomes(self, genomes: Sequence[Any], rng: np.random.Generator) -> list[Any]:
        """Repair a batch of genomes after variation.

        Like :meth:`evaluate_genomes`, the default loops over :meth:`repair`
        and batch-capable problems override it.
        """
        return [self.repair(genome, rng) for genome in genomes]

    # -- checkpoint codec ----------------------------------------------------
    def fingerprint_document(self) -> dict[str, Any]:
        """JSON-compatible identity of this problem, hashed into checkpoint
        workload fingerprints so a checkpoint can never silently resume into
        a different problem.

        The default only identifies the class — problems with workload
        parameters (priors, record counts, bounds) should override this and
        include them, as :class:`repro.core.problem.RRMatrixProblem` does.
        """
        return {"problem": type(self).__name__}

    def genome_to_data(self, genome: Any) -> Any:
        """Serialize one genome into JSON-compatible data for a checkpoint.

        The default handles the representations the bundled problems use —
        numpy arrays (stored bit-exactly as base64 bytes), plain scalars,
        and (nested) lists/tuples of those.  Problems with richer genome
        objects override this together with :meth:`genome_from_data`.
        """
        from repro.utils.arrays import encode_array

        if isinstance(genome, np.ndarray):
            return {"kind": "array", "array": encode_array(genome)}
        if genome is None or isinstance(genome, (bool, int, float, str)):
            return {"kind": "scalar", "value": genome}
        if isinstance(genome, (np.bool_, np.integer, np.floating)):
            return {"kind": "scalar", "value": genome.item()}
        if isinstance(genome, (list, tuple)):
            kind = "list" if isinstance(genome, list) else "tuple"
            return {"kind": kind, "items": [self.genome_to_data(item) for item in genome]}
        raise OptimizationError(
            f"genomes of type {type(genome).__name__} are not checkpoint-serializable; "
            "override Problem.genome_to_data/genome_from_data"
        )

    def genome_from_data(self, data: Any) -> Any:
        """Rebuild a genome from :meth:`genome_to_data` output."""
        from repro.utils.arrays import decode_array

        if not isinstance(data, dict) or "kind" not in data:
            raise OptimizationError(f"malformed genome document: {data!r}")
        kind = data["kind"]
        if kind == "array":
            return decode_array(data["array"])
        if kind == "scalar":
            return data["value"]
        if kind == "list":
            return [self.genome_from_data(item) for item in data["items"]]
        if kind == "tuple":
            return tuple(self.genome_from_data(item) for item in data["items"])
        raise OptimizationError(f"unknown genome document kind {kind!r}")
