"""The problem interface consumed by the EMOO algorithms.

A problem knows how to create random genomes, evaluate them into objective
vectors (minimisation convention), and produce offspring via crossover and
mutation.  Algorithms never look inside genomes, so the same engine optimises
RR matrices (``repro.core``) and any other representation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.emoo.individual import Individual


class Problem(ABC):
    """A multi-objective optimization problem."""

    #: Number of objectives (all minimised).
    n_objectives: int = 2

    @abstractmethod
    def random_genome(self, rng: np.random.Generator) -> Any:
        """Create one random genome."""

    @abstractmethod
    def evaluate(self, genome: Any) -> Individual:
        """Evaluate ``genome`` into an :class:`Individual` (objectives are
        minimised; set ``feasible=False`` for constraint violations)."""

    @abstractmethod
    def crossover(self, first: Any, second: Any, rng: np.random.Generator) -> tuple[Any, Any]:
        """Produce two child genomes from two parent genomes."""

    @abstractmethod
    def mutate(self, genome: Any, rng: np.random.Generator) -> Any:
        """Return a mutated copy of ``genome``."""

    def repair(self, genome: Any, rng: np.random.Generator) -> Any:
        """Repair a genome after variation (default: no repair)."""
        return genome

    # -- convenience --------------------------------------------------------
    def initial_population(self, size: int, rng: np.random.Generator) -> list[Individual]:
        """Create and evaluate ``size`` random individuals."""
        return [self.evaluate(self.random_genome(rng)) for _ in range(size)]

    def evaluate_genomes(self, genomes: Sequence[Any]) -> list[Individual]:
        """Evaluate a batch of genomes.

        The default loops over :meth:`evaluate`; problems with a vectorized
        evaluation engine (e.g. :class:`repro.core.problem.RRMatrixProblem`)
        override this with a true batch implementation, which is how the
        generic SPEA2/NSGA-II engines pick up the batch path without knowing
        anything about genome internals.
        """
        return [self.evaluate(genome) for genome in genomes]

    def repair_genomes(self, genomes: Sequence[Any], rng: np.random.Generator) -> list[Any]:
        """Repair a batch of genomes after variation.

        Like :meth:`evaluate_genomes`, the default loops over :meth:`repair`
        and batch-capable problems override it.
        """
        return [self.repair(genome, rng) for genome in genomes]
