"""A generic SPEA2 implementation (Zitzler, Laumanns & Thiele).

This is the engine the paper customises.  The algorithm keeps two bounded
sets — a *population* of freshly generated offspring and an *archive* of the
best solutions seen so far — and iterates fitness assignment, environmental
selection, mating selection, crossover and mutation.  The OptRR-specific
additions (the Ω optimal set, the bound-repair step and the RR-matrix
operators) live in :mod:`repro.core`, which drives this engine through the
:class:`~repro.emoo.problem.Problem` interface and the per-generation hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.emoo.density import pairwise_distances
from repro.emoo.dominance import non_dominated
from repro.emoo.driver import (
    OptimizationDriver,
    StepOutcome,
    SteppableOptimization,
    build_driver,
    population_from_document,
    population_to_document,
    workload_fingerprint,
)
from repro.emoo.fidelity import FidelitySchedule, FidelityScheduler
from repro.emoo.fitness import spea2_fitness_from_arrays
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.problem import Problem
from repro.emoo.selection import (
    binary_tournament_indices,
    environmental_selection_indices,
)
from repro.emoo.termination import MaxGenerations, TerminationCriterion
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.logging import get_logger
from repro.utils.validation import check_in_unit_interval, check_positive_int

logger = get_logger(__name__)

#: Callback invoked after each generation with (generation index, archive).
GenerationCallback = Callable[[int, list[Individual]], None]


@dataclass(frozen=True)
class SPEA2Settings:
    """Hyper-parameters of the SPEA2 run.

    Parameters
    ----------
    population_size:
        Size ``N_Q`` of the offspring population generated every iteration.
    archive_size:
        Size ``N_V`` of the elite archive kept between iterations.
    crossover_rate:
        Probability that a parent pair undergoes crossover (otherwise the
        parents are copied).
    mutation_rate:
        Probability that each child is mutated.
    density_k:
        Neighbour index used by the density estimator (the paper uses 1).
    """

    population_size: int = 50
    archive_size: int = 50
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    density_k: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_positive_int(self.archive_size, "archive_size")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")
        check_positive_int(self.density_k, "density_k")


@dataclass
class SPEA2Result:
    """Outcome of a SPEA2 run.

    Attributes
    ----------
    archive:
        Final archive (bounded elite set).
    front:
        Non-dominated subset of the final archive.
    n_generations:
        Number of generations executed.
    n_evaluations:
        Total number of objective evaluations performed.
    """

    archive: list[Individual]
    front: list[Individual]
    n_generations: int
    n_evaluations: int


@dataclass
class SPEA2:
    """The SPEA2 evolutionary multi-objective optimizer.

    Parameters
    ----------
    problem:
        The problem to optimise.
    settings:
        Algorithm hyper-parameters.
    termination:
        Stopping rule; defaults to 100 generations.
    seed:
        Random seed or generator.
    fidelity:
        Optional multi-fidelity schedule (see :mod:`repro.emoo.fidelity`):
        offspring are evaluated at reduced fidelity and only the top fraction
        is promoted to a full re-evaluation.  Requires a problem whose
        ``evaluate_genomes`` supports the ``fidelity`` keyword; ``None``
        keeps the exact single-fidelity path.
    """

    problem: Problem
    settings: SPEA2Settings = field(default_factory=SPEA2Settings)
    termination: TerminationCriterion = field(default_factory=lambda: MaxGenerations(100))
    seed: SeedLike = None
    fidelity: FidelitySchedule | None = None

    def run(self, on_generation: GenerationCallback | None = None) -> SPEA2Result:
        """Run the optimization and return the result.

        Thin wrapper over the stepwise driver (:meth:`driver`): the
        generation loop is array-native — population and archive are
        structure-of-arrays :class:`~repro.emoo.population.Population`
        objects (genomes stay opaque), the per-generation pairwise distance
        matrix is shared between density estimation and truncation, and
        mating selection reuses the stamped environmental-selection fitness
        instead of re-assigning SPEA2 fitness to the archive.
        """
        driver = self.driver()
        algorithm = driver.optimization
        for snapshot in driver.steps():
            if on_generation is not None:
                on_generation(snapshot.generation, algorithm.elite_individuals())
        result = driver.result()
        logger.debug(
            "SPEA2 finished after %d generations (%d evaluations, front size %d)",
            result.n_generations,
            result.n_evaluations,
            len(result.front),
        )
        return result

    def driver(
        self,
        *,
        seed: SeedLike = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int | None = None,
        deadline: float | None = None,
    ) -> OptimizationDriver:
        """Build the stepwise driver for this SPEA2 instance.

        Like :meth:`repro.core.optimizer.OptRROptimizer.driver`, an ambient
        :func:`~repro.emoo.driver.checkpoint_scope` is consulted when no
        explicit checkpoint path is given (auto-claiming a checkpoint file
        and resuming from a matching previous one).
        """
        return build_driver(
            _SPEA2Steppable(self),
            termination=self.termination,
            rng=as_rng(seed if seed is not None else self.seed),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            deadline=deadline,
        )

    # -- internals -----------------------------------------------------------
    def _environmental_selection(self, union: Population, generation: int) -> Population:
        """Array-native fitness assignment + environmental selection, with
        the selected archive stamped for fitness reuse."""
        distances = pairwise_distances(union.objectives)
        _, _, fitness = spea2_fitness_from_arrays(
            union.objectives, union.feasible, self.settings.density_k, distances=distances
        )
        selected = environmental_selection_indices(
            fitness, self.settings.archive_size, distances=distances
        )
        archive = union.take(selected)
        archive.set_fitness(fitness[selected], generation)
        return archive

    def _make_offspring(
        self, archive: Population, rng: np.random.Generator, generation: int
    ) -> list:
        """Mating selection + crossover + mutation + repair -> genomes.

        Mating selection reuses the generation-stamped fitness; genome
        variation stays per-pair because genomes are opaque here (the
        RR-matrix driver in :mod:`repro.core.optimizer` uses the fully
        batched stack operators instead).
        """
        settings = self.settings
        fitness = archive.require_fresh_fitness(generation)
        winners = binary_tournament_indices(fitness, settings.population_size, rng)
        parents = [archive.genome_at(index) for index in winners]
        genomes = []
        for index in range(0, len(parents), 2):
            first = parents[index]
            second = parents[(index + 1) % len(parents)]
            if rng.random() < settings.crossover_rate:
                child_a, child_b = self.problem.crossover(first, second, rng)
            else:
                child_a, child_b = first, second
            genomes.extend([child_a, child_b])
        genomes = genomes[: settings.population_size]
        mutated = []
        for genome in genomes:
            if rng.random() < settings.mutation_rate:
                genome = self.problem.mutate(genome, rng)
            mutated.append(genome)
        # Repair runs over the whole offspring list at once so batch-capable
        # problems (RR matrices) vectorize it.
        return self.problem.repair_genomes(mutated, rng)


class _SPEA2Steppable(SteppableOptimization):
    """The SPEA2 generation loop decomposed for the stepwise driver."""

    algorithm_name = "spea2"

    def __init__(self, algorithm: SPEA2) -> None:
        self._algorithm = algorithm
        self.population: Population | None = None
        self.archive: Population | None = None
        self.n_evaluations = 0
        self.fidelity: FidelityScheduler | None = (
            FidelityScheduler(algorithm.fidelity) if algorithm.fidelity is not None else None
        )

    def setup(self, rng: np.random.Generator) -> None:
        algorithm = self._algorithm
        initial = algorithm.problem.initial_population(
            algorithm.settings.population_size, rng
        )
        if not initial:
            raise OptimizationError("the problem produced an empty initial population")
        self.population = Population.from_individuals(initial)
        self.archive = None
        self.n_evaluations = self.population.size

    def step(self, rng: np.random.Generator, generation: int) -> StepOutcome:
        algorithm = self._algorithm
        union = (
            self.population
            if self.archive is None
            else Population.concat(self.population, self.archive)
        )
        self.archive = algorithm._environmental_selection(union, generation)
        offspring_genomes = algorithm._make_offspring(self.archive, rng, generation)
        if self.fidelity is None:
            individuals = algorithm.problem.evaluate_genomes(offspring_genomes)
            self.n_evaluations += len(individuals)
        else:
            spent = self.fidelity.n_low_evaluations + self.fidelity.n_full_evaluations
            individuals = self.fidelity.evaluate_individuals(
                algorithm.problem, offspring_genomes
            )
            self.n_evaluations += (
                self.fidelity.n_low_evaluations + self.fidelity.n_full_evaluations - spent
            )
        self.population = Population.from_individuals(individuals)
        front = self.archive.objectives[self.archive.feasible]
        if front.shape[0] == 0:
            front = self.archive.objectives
        n_low = self.fidelity.n_low_evaluations if self.fidelity is not None else 0
        return StepOutcome(
            archive_updates=1,
            front_objectives=front,
            n_evaluations=self.n_evaluations,
            n_full_evaluations=self.n_evaluations - n_low,
            n_low_evaluations=n_low,
        )

    def notify_progress(self, elapsed_seconds: float, deadline_seconds: float | None) -> None:
        if self.fidelity is not None:
            self.fidelity.adapt(elapsed_seconds, deadline_seconds)

    def finish(self, generation: int) -> SPEA2Result:
        # Final selection over the last population and archive.
        final = self._algorithm._environmental_selection(
            Population.concat(self.population, self.archive), generation
        )
        final_archive = final.to_individuals()
        front = non_dominated(final_archive)
        return SPEA2Result(
            archive=final_archive,
            front=front,
            n_generations=generation + 1,
            n_evaluations=self.n_evaluations,
        )

    def elite_individuals(self) -> list[Individual]:
        return self.archive.to_individuals()

    def setup_fingerprint(self) -> str:
        from dataclasses import asdict

        payload = {
            "algorithm": self.algorithm_name,
            "problem": self._algorithm.problem.fingerprint_document(),
            "settings": asdict(self._algorithm.settings),
        }
        # Keyed only when scheduling is on, so fingerprints of plain runs
        # stay identical to pre-fidelity checkpoints.
        if self._algorithm.fidelity is not None:
            payload["fidelity"] = asdict(self._algorithm.fidelity)
        return workload_fingerprint(payload)

    def state_document(self) -> dict:
        problem = self._algorithm.problem
        document = {
            "population": population_to_document(self.population, problem),
            "archive": (
                population_to_document(self.archive, problem)
                if self.archive is not None
                else None
            ),
            "n_evaluations": self.n_evaluations,
        }
        if self.fidelity is not None:
            document["fidelity"] = self.fidelity.state_document()
        return document

    def restore_state(self, document: dict) -> None:
        problem = self._algorithm.problem
        self.population = population_from_document(document["population"], problem)
        archive_document = document.get("archive")
        self.archive = (
            population_from_document(archive_document, problem)
            if archive_document is not None
            else None
        )
        self.n_evaluations = int(document["n_evaluations"])
        fidelity_state = document.get("fidelity")
        if self.fidelity is not None and fidelity_state is not None:
            self.fidelity.restore_state(fidelity_state)
