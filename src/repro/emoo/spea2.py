"""A generic SPEA2 implementation (Zitzler, Laumanns & Thiele).

This is the engine the paper customises.  The algorithm keeps two bounded
sets — a *population* of freshly generated offspring and an *archive* of the
best solutions seen so far — and iterates fitness assignment, environmental
selection, mating selection, crossover and mutation.  The OptRR-specific
additions (the Ω optimal set, the bound-repair step and the RR-matrix
operators) live in :mod:`repro.core`, which drives this engine through the
:class:`~repro.emoo.problem.Problem` interface and the per-generation hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.emoo.density import pairwise_distances
from repro.emoo.dominance import non_dominated
from repro.emoo.fitness import spea2_fitness_from_arrays
from repro.emoo.individual import Individual
from repro.emoo.population import Population
from repro.emoo.problem import Problem
from repro.emoo.selection import (
    binary_tournament_indices,
    environmental_selection_indices,
)
from repro.emoo.termination import GenerationState, MaxGenerations, TerminationCriterion
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.logging import get_logger
from repro.utils.validation import check_in_unit_interval, check_positive_int

logger = get_logger(__name__)

#: Callback invoked after each generation with (generation index, archive).
GenerationCallback = Callable[[int, list[Individual]], None]


@dataclass(frozen=True)
class SPEA2Settings:
    """Hyper-parameters of the SPEA2 run.

    Parameters
    ----------
    population_size:
        Size ``N_Q`` of the offspring population generated every iteration.
    archive_size:
        Size ``N_V`` of the elite archive kept between iterations.
    crossover_rate:
        Probability that a parent pair undergoes crossover (otherwise the
        parents are copied).
    mutation_rate:
        Probability that each child is mutated.
    density_k:
        Neighbour index used by the density estimator (the paper uses 1).
    """

    population_size: int = 50
    archive_size: int = 50
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    density_k: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_positive_int(self.archive_size, "archive_size")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")
        check_positive_int(self.density_k, "density_k")


@dataclass
class SPEA2Result:
    """Outcome of a SPEA2 run.

    Attributes
    ----------
    archive:
        Final archive (bounded elite set).
    front:
        Non-dominated subset of the final archive.
    n_generations:
        Number of generations executed.
    n_evaluations:
        Total number of objective evaluations performed.
    """

    archive: list[Individual]
    front: list[Individual]
    n_generations: int
    n_evaluations: int


@dataclass
class SPEA2:
    """The SPEA2 evolutionary multi-objective optimizer.

    Parameters
    ----------
    problem:
        The problem to optimise.
    settings:
        Algorithm hyper-parameters.
    termination:
        Stopping rule; defaults to 100 generations.
    seed:
        Random seed or generator.
    """

    problem: Problem
    settings: SPEA2Settings = field(default_factory=SPEA2Settings)
    termination: TerminationCriterion = field(default_factory=lambda: MaxGenerations(100))
    seed: SeedLike = None

    def run(self, on_generation: GenerationCallback | None = None) -> SPEA2Result:
        """Run the optimization and return the result.

        The generation loop is array-native: population and archive are
        structure-of-arrays :class:`~repro.emoo.population.Population`
        objects (genomes stay opaque), the per-generation pairwise distance
        matrix is shared between density estimation and truncation, and
        mating selection reuses the stamped environmental-selection fitness
        instead of re-assigning SPEA2 fitness to the archive.
        """
        rng = as_rng(self.seed)
        self.termination.reset()
        settings = self.settings
        initial = self.problem.initial_population(settings.population_size, rng)
        if not initial:
            raise OptimizationError("the problem produced an empty initial population")
        population = Population.from_individuals(initial)
        archive: Population | None = None
        n_evaluations = population.size
        generation = 0
        while True:
            union = population if archive is None else Population.concat(population, archive)
            archive = self._environmental_selection(union, generation)
            offspring_genomes = self._make_offspring(archive, rng, generation)
            population = Population.from_individuals(
                self.problem.evaluate_genomes(offspring_genomes)
            )
            n_evaluations += population.size
            if on_generation is not None:
                on_generation(generation, archive.to_individuals())
            state = GenerationState(generation=generation, archive_updates=1)
            if self.termination.should_stop(state):
                break
            generation += 1
        # Final selection over the last population and archive.
        final = self._environmental_selection(
            Population.concat(population, archive), generation
        )
        final_archive = final.to_individuals()
        front = non_dominated(final_archive)
        logger.debug(
            "SPEA2 finished after %d generations (%d evaluations, front size %d)",
            generation + 1,
            n_evaluations,
            len(front),
        )
        return SPEA2Result(
            archive=final_archive,
            front=front,
            n_generations=generation + 1,
            n_evaluations=n_evaluations,
        )

    # -- internals -----------------------------------------------------------
    def _environmental_selection(self, union: Population, generation: int) -> Population:
        """Array-native fitness assignment + environmental selection, with
        the selected archive stamped for fitness reuse."""
        distances = pairwise_distances(union.objectives)
        _, _, fitness = spea2_fitness_from_arrays(
            union.objectives, union.feasible, self.settings.density_k, distances=distances
        )
        selected = environmental_selection_indices(
            fitness, self.settings.archive_size, distances=distances
        )
        archive = union.take(selected)
        archive.set_fitness(fitness[selected], generation)
        return archive

    def _make_offspring(
        self, archive: Population, rng: np.random.Generator, generation: int
    ) -> list:
        """Mating selection + crossover + mutation + repair -> genomes.

        Mating selection reuses the generation-stamped fitness; genome
        variation stays per-pair because genomes are opaque here (the
        RR-matrix driver in :mod:`repro.core.optimizer` uses the fully
        batched stack operators instead).
        """
        settings = self.settings
        fitness = archive.require_fresh_fitness(generation)
        winners = binary_tournament_indices(fitness, settings.population_size, rng)
        parents = [archive.genome_at(index) for index in winners]
        genomes = []
        for index in range(0, len(parents), 2):
            first = parents[index]
            second = parents[(index + 1) % len(parents)]
            if rng.random() < settings.crossover_rate:
                child_a, child_b = self.problem.crossover(first, second, rng)
            else:
                child_a, child_b = first, second
            genomes.extend([child_a, child_b])
        genomes = genomes[: settings.population_size]
        mutated = []
        for genome in genomes:
            if rng.random() < settings.mutation_rate:
                genome = self.problem.mutate(genome, rng)
            mutated.append(genome)
        # Repair runs over the whole offspring list at once so batch-capable
        # problems (RR matrices) vectorize it.
        return self.problem.repair_genomes(mutated, rng)
