"""A generic SPEA2 implementation (Zitzler, Laumanns & Thiele).

This is the engine the paper customises.  The algorithm keeps two bounded
sets — a *population* of freshly generated offspring and an *archive* of the
best solutions seen so far — and iterates fitness assignment, environmental
selection, mating selection, crossover and mutation.  The OptRR-specific
additions (the Ω optimal set, the bound-repair step and the RR-matrix
operators) live in :mod:`repro.core`, which drives this engine through the
:class:`~repro.emoo.problem.Problem` interface and the per-generation hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.emoo.dominance import non_dominated
from repro.emoo.fitness import assign_spea2_fitness
from repro.emoo.individual import Individual
from repro.emoo.problem import Problem
from repro.emoo.selection import binary_tournament, environmental_selection
from repro.emoo.termination import GenerationState, MaxGenerations, TerminationCriterion
from repro.exceptions import OptimizationError
from repro.types import SeedLike, as_rng
from repro.utils.logging import get_logger
from repro.utils.validation import check_in_unit_interval, check_positive_int

logger = get_logger(__name__)

#: Callback invoked after each generation with (generation index, archive).
GenerationCallback = Callable[[int, list[Individual]], None]


@dataclass(frozen=True)
class SPEA2Settings:
    """Hyper-parameters of the SPEA2 run.

    Parameters
    ----------
    population_size:
        Size ``N_Q`` of the offspring population generated every iteration.
    archive_size:
        Size ``N_V`` of the elite archive kept between iterations.
    crossover_rate:
        Probability that a parent pair undergoes crossover (otherwise the
        parents are copied).
    mutation_rate:
        Probability that each child is mutated.
    density_k:
        Neighbour index used by the density estimator (the paper uses 1).
    """

    population_size: int = 50
    archive_size: int = 50
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    density_k: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_positive_int(self.archive_size, "archive_size")
        check_in_unit_interval(self.crossover_rate, "crossover_rate")
        check_in_unit_interval(self.mutation_rate, "mutation_rate")
        check_positive_int(self.density_k, "density_k")


@dataclass
class SPEA2Result:
    """Outcome of a SPEA2 run.

    Attributes
    ----------
    archive:
        Final archive (bounded elite set).
    front:
        Non-dominated subset of the final archive.
    n_generations:
        Number of generations executed.
    n_evaluations:
        Total number of objective evaluations performed.
    """

    archive: list[Individual]
    front: list[Individual]
    n_generations: int
    n_evaluations: int


@dataclass
class SPEA2:
    """The SPEA2 evolutionary multi-objective optimizer.

    Parameters
    ----------
    problem:
        The problem to optimise.
    settings:
        Algorithm hyper-parameters.
    termination:
        Stopping rule; defaults to 100 generations.
    seed:
        Random seed or generator.
    """

    problem: Problem
    settings: SPEA2Settings = field(default_factory=SPEA2Settings)
    termination: TerminationCriterion = field(default_factory=lambda: MaxGenerations(100))
    seed: SeedLike = None

    def run(self, on_generation: GenerationCallback | None = None) -> SPEA2Result:
        """Run the optimization and return the result."""
        rng = as_rng(self.seed)
        self.termination.reset()
        settings = self.settings
        population = self.problem.initial_population(settings.population_size, rng)
        if not population:
            raise OptimizationError("the problem produced an empty initial population")
        archive: list[Individual] = []
        n_evaluations = len(population)
        generation = 0
        while True:
            union = population + archive
            archive = environmental_selection(
                union, settings.archive_size, density_k=settings.density_k
            )
            offspring_genomes = self._make_offspring(archive, rng)
            population = self.problem.evaluate_genomes(offspring_genomes)
            n_evaluations += len(population)
            if on_generation is not None:
                on_generation(generation, archive)
            state = GenerationState(generation=generation, archive_updates=1)
            if self.termination.should_stop(state):
                break
            generation += 1
        # Final selection over the last population and archive.
        final_archive = environmental_selection(
            population + archive, settings.archive_size, density_k=settings.density_k
        )
        front = non_dominated(final_archive)
        logger.debug(
            "SPEA2 finished after %d generations (%d evaluations, front size %d)",
            generation + 1,
            n_evaluations,
            len(front),
        )
        return SPEA2Result(
            archive=final_archive,
            front=front,
            n_generations=generation + 1,
            n_evaluations=n_evaluations,
        )

    # -- internals -----------------------------------------------------------
    def _make_offspring(
        self, archive: list[Individual], rng: np.random.Generator
    ) -> list:
        """Mating selection + crossover + mutation + repair -> genomes."""
        settings = self.settings
        assign_spea2_fitness(archive, settings.density_k)
        parents = binary_tournament(archive, settings.population_size, seed=rng)
        genomes = []
        for index in range(0, len(parents), 2):
            first = parents[index].genome
            second = parents[(index + 1) % len(parents)].genome
            if rng.random() < settings.crossover_rate:
                child_a, child_b = self.problem.crossover(first, second, rng)
            else:
                child_a, child_b = first, second
            genomes.extend([child_a, child_b])
        genomes = genomes[: settings.population_size]
        mutated = []
        for genome in genomes:
            if rng.random() < settings.mutation_rate:
                genome = self.problem.mutate(genome, rng)
            mutated.append(genome)
        # Repair runs over the whole offspring list at once so batch-capable
        # problems (RR matrices) vectorize it.
        return self.problem.repair_genomes(mutated, rng)
