"""Evolutionary multi-objective optimization (EMOO) substrate.

A generic implementation of SPEA2 (the algorithm the paper builds on),
together with the NSGA-II and weighted-sum baselines used by the ablation
benchmarks, Pareto dominance utilities and front-quality indicators.

The package is problem-agnostic: a problem supplies genome creation,
variation operators and an objective function through the
:class:`~repro.emoo.problem.Problem` interface, and the algorithms work on
opaque genomes.  ``repro.core`` instantiates it with RR matrices as genomes.
"""

from repro.emoo.individual import Individual
from repro.emoo.dominance import (
    dominance_matrix_from_arrays,
    dominates,
    non_dominated,
    pareto_ranks,
    pareto_ranks_from_arrays,
    pareto_ranks_reference,
)
from repro.emoo.fitness import assign_spea2_fitness, spea2_fitness_from_arrays
from repro.emoo.density import kth_nearest_distances, pairwise_distances, spea2_density
from repro.emoo.population import Population
from repro.emoo.selection import (
    binary_tournament,
    binary_tournament_indices,
    environmental_selection,
    environmental_selection_indices,
    truncate_archive,
    truncate_indices,
)
from repro.emoo.problem import Problem
from repro.emoo.termination import (
    Deadline,
    GenerationState,
    HypervolumeStagnation,
    MaxGenerations,
    StagnationTermination,
    TerminationCriterion,
)
# The driver must load before the algorithms built on it (spea2/nsga2); the
# public import surface for it is repro.core.driver.
from repro.emoo.driver import (
    GenerationSnapshot,
    OptimizationDriver,
    SteppableOptimization,
    checkpoint_scope,
)
from repro.emoo.fidelity import FidelitySchedule, FidelityScheduler
from repro.emoo.spea2 import SPEA2, SPEA2Settings
from repro.emoo.nsga2 import NSGA2, NSGA2Settings, crowding_distances_from_objectives
from repro.emoo.weighted_sum import WeightedSumGA, WeightedSumSettings
from repro.emoo.indicators import (
    coverage,
    epsilon_indicator,
    hypervolume_2d,
    spread_2d,
)

__all__ = [
    "Deadline",
    "FidelitySchedule",
    "FidelityScheduler",
    "GenerationSnapshot",
    "GenerationState",
    "HypervolumeStagnation",
    "Individual",
    "MaxGenerations",
    "OptimizationDriver",
    "SteppableOptimization",
    "checkpoint_scope",
    "NSGA2",
    "NSGA2Settings",
    "Population",
    "Problem",
    "SPEA2",
    "SPEA2Settings",
    "StagnationTermination",
    "TerminationCriterion",
    "WeightedSumGA",
    "WeightedSumSettings",
    "assign_spea2_fitness",
    "binary_tournament",
    "binary_tournament_indices",
    "coverage",
    "crowding_distances_from_objectives",
    "dominance_matrix_from_arrays",
    "dominates",
    "environmental_selection",
    "environmental_selection_indices",
    "epsilon_indicator",
    "hypervolume_2d",
    "kth_nearest_distances",
    "non_dominated",
    "pairwise_distances",
    "pareto_ranks",
    "pareto_ranks_from_arrays",
    "pareto_ranks_reference",
    "spea2_density",
    "spea2_fitness_from_arrays",
    "spread_2d",
    "truncate_archive",
    "truncate_indices",
]
