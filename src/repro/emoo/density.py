"""Density estimation used by SPEA2 fitness assignment and truncation.

SPEA2 breaks fitness ties between equally-dominated individuals with a
density estimate: the distance to the ``k``-th nearest neighbour in objective
space, mapped through ``d = 1 / (sigma_k + 2)`` so it is always below one and
cannot override a dominance difference (the paper's Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.backend.registry import active_backend
from repro.exceptions import OptimizationError


def pairwise_distances(objectives: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between objective vectors.

    Validation lives here; the distance computation itself is a kernel of the
    active array backend (:mod:`repro.backend`).  The default ``numpy``
    backend uses :func:`scipy.spatial.distance.pdist` (condensed upper
    triangle, half the work and memory of the naive broadcast) when SciPy is
    available and a broadcasted computation otherwise.
    """
    points = np.asarray(objectives, dtype=np.float64)
    if points.ndim != 2:
        raise OptimizationError(f"objectives must be 2-D, got shape {points.shape}")
    return active_backend().pairwise_distances(points)


def kth_nearest_distances(
    objectives: np.ndarray, k: int = 1, *, distances: np.ndarray | None = None
) -> np.ndarray:
    """Distance of every point to its ``k``-th nearest *other* point.

    ``k`` is clamped to the number of other points, so tiny populations do not
    raise.  With a single point the distance is defined as infinity.  A
    precomputed pairwise ``distances`` matrix can be passed so the generation
    loop computes it once and shares it between density estimation and archive
    truncation (the matrix is not modified).
    """
    if k < 1:
        raise OptimizationError(f"k must be at least 1, got {k}")
    if distances is None:
        distances = pairwise_distances(objectives)
    else:
        distances = np.array(distances, dtype=np.float64)
    size = distances.shape[0]
    if size == 0:
        return np.empty(0)
    if size == 1:
        return np.array([np.inf])
    np.fill_diagonal(distances, np.inf)
    sorted_distances = np.sort(distances, axis=1)
    effective_k = min(k, size - 1)
    return sorted_distances[:, effective_k - 1]


def spea2_density(
    objectives: np.ndarray, k: int = 1, *, distances: np.ndarray | None = None
) -> np.ndarray:
    """SPEA2 density ``d(i) = 1 / (sigma_i^k + 2)`` for every individual.

    The ``+ 2`` guarantees the density is strictly below one, so it only
    discriminates between individuals with identical raw fitness (whose raw
    fitness values differ by at least one otherwise).  ``distances`` optionally
    supplies the precomputed pairwise distance matrix.
    """
    sigma = kth_nearest_distances(objectives, k, distances=distances)
    finite_sigma = np.where(np.isfinite(sigma), sigma, np.finfo(np.float64).max / 4)
    return 1.0 / (finite_sigma + 2.0)
