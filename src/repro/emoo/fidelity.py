"""Multi-fidelity evaluation scheduling for the EMOO engines.

Most objective-evaluation cost is spent on individuals nowhere near the
front.  The scheduler here evaluates every offspring generation at a cheap
reduced fidelity first (record subsampling plus a cheap posterior bound —
see :meth:`repro.metrics.evaluation.MatrixEvaluator.evaluate_batch`), then
promotes only the most promising fraction — ranked by Pareto front and
crowding distance, exactly the ordering NSGA-II survives by — to a full
fidelity re-evaluation before selection and archive offers see them.

Because the low-fidelity utility is an *upper bound* on the true utility
(subsampling scales the closed-form MSE by ``N / n_eff >= 1``), promotion
errs on the side of discarding, never on the side of letting an optimistic
estimate into the archive: only full-fidelity evaluations are ever offered
to the optimal set.

When a wall-clock :class:`~repro.emoo.termination.Deadline` is active the
scheduler adapts its budget: as the deadline approaches, the low fidelity is
ratcheted *down* (never up, so the schedule is monotone within a run and its
state round-trips through checkpoints) to squeeze more generations out of
the remaining time.  Like the deadline itself, where adaptation fires is
wall-clock dependent; the bit-for-bit resume guarantee applies to the
scheduler *state*, which is checkpointed via :meth:`FidelityScheduler.
state_document`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.emoo.dominance import pareto_ranks_from_arrays
from repro.emoo.individual import Individual, objectives_array
from repro.exceptions import OptimizationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.problem import RRMatrixProblem
    from repro.emoo.population import Population
    from repro.emoo.problem import Problem

#: (progress-through-deadline threshold, multiplier on the configured low
#: fidelity) pairs, checked from latest to earliest: past 90% of the budget
#: the low fidelity drops to 1/8 of its configured value, past 75% to 1/4,
#: past 50% to 1/2.  Floored by ``FidelitySchedule.min_fidelity``.
DEADLINE_FIDELITY_STEPS: tuple[tuple[float, float], ...] = (
    (0.9, 0.125),
    (0.75, 0.25),
    (0.5, 0.5),
)


@dataclass(frozen=True)
class FidelitySchedule:
    """Configuration of the low-fidelity/promotion schedule.

    Attributes
    ----------
    low_fidelity:
        Fraction of the full record count used for the cheap first pass,
        in ``(0, 1)`` — a schedule at 1.0 would be pure overhead, so
        callers disable fidelity scheduling instead of configuring it.
    promotion_fraction:
        Fraction of each offspring batch promoted to full fidelity, in
        ``(0, 1]``; at least one individual is always promoted.
    min_fidelity:
        Floor the deadline adaptation can never push the low fidelity
        below, in ``(0, 1]``.
    """

    low_fidelity: float
    promotion_fraction: float = 0.25
    min_fidelity: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 < self.low_fidelity < 1.0):
            raise OptimizationError(
                f"low_fidelity must lie in (0, 1), got {self.low_fidelity}"
            )
        if not (0.0 < self.promotion_fraction <= 1.0):
            raise OptimizationError(
                f"promotion_fraction must lie in (0, 1], got {self.promotion_fraction}"
            )
        if not (0.0 < self.min_fidelity <= 1.0):
            raise OptimizationError(
                f"min_fidelity must lie in (0, 1], got {self.min_fidelity}"
            )


class FidelityScheduler:
    """Drives one run's low-fidelity evaluation and promotion decisions.

    Stateful (current low fidelity after deadline adaptation, cumulative
    low/full evaluation counts) and checkpointable: :meth:`state_document` /
    :meth:`restore_state` round-trip everything a resumed run needs to
    continue bit-identically.
    """

    def __init__(self, schedule: FidelitySchedule) -> None:
        self.schedule = schedule
        self.current_low_fidelity = schedule.low_fidelity
        self.n_low_evaluations = 0
        self.n_full_evaluations = 0

    # -- promotion rule ------------------------------------------------------
    def promotion_count(self, batch_size: int) -> int:
        """How many of a ``batch_size`` batch get promoted to full fidelity."""
        if batch_size <= 0:
            return 0
        count = int(np.ceil(self.schedule.promotion_fraction * batch_size))
        return min(batch_size, max(1, count))

    def promote_indices(
        self, objectives: np.ndarray, feasible: np.ndarray | None = None
    ) -> np.ndarray:
        """Indices (ascending) of the batch rows promoted to full fidelity.

        NSGA-II survival ordering over the *low-fidelity* objectives: Pareto
        rank ascending, per-front crowding distance descending, original
        index as the deterministic tie-break.
        """
        objectives = np.asarray(objectives, dtype=np.float64)
        size = objectives.shape[0]
        count = self.promotion_count(size)
        if count >= size:
            return np.arange(size)
        from repro.emoo.nsga2 import crowding_distances_from_objectives

        ranks = pareto_ranks_from_arrays(objectives, feasible)
        crowding = np.zeros(size)
        for rank in range(int(ranks.max()) + 1):
            front = np.flatnonzero(ranks == rank)
            crowding[front] = crowding_distances_from_objectives(objectives[front])
        order = np.lexsort((np.arange(size), -crowding, ranks))
        return np.sort(order[:count])

    # -- evaluation paths ----------------------------------------------------
    def evaluate_stack(self, problem: "RRMatrixProblem", stack: np.ndarray) -> "Population":
        """Low-fidelity evaluate a ``(B, n, n)`` matrix stack, promote the
        top fraction and splice their full-fidelity rows back in.

        Every returned row carries a ``fidelity`` metadata column (promoted
        rows at 1.0), so archive offers can be restricted to full-fidelity
        rows.
        """
        population = problem.evaluate_population(stack, fidelity=self.current_low_fidelity)
        promote = self.promote_indices(population.objectives, population.feasible)
        full = problem.evaluate_population(stack[promote], fidelity=1.0)
        population.objectives[promote] = full.objectives
        population.feasible[promote] = full.feasible
        for key in population.metadata:
            population.metadata[key][promote] = full.metadata[key]
        self.n_low_evaluations += int(population.size)
        self.n_full_evaluations += int(promote.size)
        return population

    def evaluate_individuals(
        self, problem: "Problem", genomes: Sequence[Any]
    ) -> list[Individual]:
        """Genome-list counterpart of :meth:`evaluate_stack` for the generic
        SPEA2/NSGA-II engines (problems must support the ``fidelity``
        keyword of :meth:`~repro.emoo.problem.Problem.evaluate_genomes`)."""
        genomes = list(genomes)
        individuals = problem.evaluate_genomes(
            genomes, fidelity=self.current_low_fidelity
        )
        feasible = np.array([ind.feasible for ind in individuals], dtype=bool)
        promote = self.promote_indices(objectives_array(individuals), feasible)
        promoted = problem.evaluate_genomes(
            [genomes[int(index)] for index in promote], fidelity=1.0
        )
        for slot, individual in zip(promote, promoted):
            individuals[int(slot)] = individual
        self.n_low_evaluations += len(individuals)
        self.n_full_evaluations += int(promote.size)
        return individuals

    # -- deadline adaptation -------------------------------------------------
    def adapt(self, elapsed_seconds: float, deadline_seconds: float | None) -> None:
        """Ratchet the low fidelity down as a wall-clock deadline approaches.

        No-op without a deadline.  The adaptation is monotone (progress only
        grows and the fidelity only shrinks), so a resumed run that restores
        ``current_low_fidelity`` from a checkpoint can never jump back up.
        """
        if deadline_seconds is None or deadline_seconds <= 0:
            return
        progress = float(elapsed_seconds) / float(deadline_seconds)
        factor = 1.0
        for threshold, step in DEADLINE_FIDELITY_STEPS:
            if progress >= threshold:
                factor = step
                break
        target = max(self.schedule.min_fidelity, self.schedule.low_fidelity * factor)
        if target < self.current_low_fidelity:
            self.current_low_fidelity = target

    # -- checkpoint codec ----------------------------------------------------
    def state_document(self) -> dict[str, Any]:
        """JSON-compatible snapshot of the mutable scheduler state."""
        return {
            "current_low_fidelity": float(self.current_low_fidelity),
            "n_low_evaluations": int(self.n_low_evaluations),
            "n_full_evaluations": int(self.n_full_evaluations),
        }

    def restore_state(self, document: dict[str, Any]) -> None:
        """Restore the counters captured by :meth:`state_document`."""
        self.current_low_fidelity = float(
            document.get("current_low_fidelity", self.schedule.low_fidelity)
        )
        self.n_low_evaluations = int(document.get("n_low_evaluations", 0))
        self.n_full_evaluations = int(document.get("n_full_evaluations", 0))
