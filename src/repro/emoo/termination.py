"""Termination criteria for the evolutionary algorithms (Section V-I).

The paper mentions two stopping rules: a fixed generation budget and
stagnation of the optimal set (no improvement for a number of consecutive
generations).  Criteria can be combined with ``|`` (stop when either fires).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.exceptions import OptimizationError
from repro.utils.validation import check_positive_int


@dataclass
class GenerationState:
    """Snapshot handed to termination criteria after every generation.

    Attributes
    ----------
    generation:
        Zero-based index of the generation that just completed.
    archive_updates:
        Number of improvements made to the optimal set during this
        generation (0 means the generation made no progress).
    """

    generation: int
    archive_updates: int = 0


class TerminationCriterion(ABC):
    """Decides whether the evolutionary loop should stop."""

    @abstractmethod
    def should_stop(self, state: GenerationState) -> bool:
        """Return True when the run should stop after ``state``."""

    def reset(self) -> None:
        """Reset internal counters before a new run (default: nothing)."""

    def __or__(self, other: "TerminationCriterion") -> "TerminationCriterion":
        return AnyCriterion((self, other))


@dataclass
class MaxGenerations(TerminationCriterion):
    """Stop after a fixed number of generations."""

    max_generations: int

    def __post_init__(self) -> None:
        check_positive_int(self.max_generations, "max_generations")

    def should_stop(self, state: GenerationState) -> bool:
        return state.generation + 1 >= self.max_generations


@dataclass
class StagnationTermination(TerminationCriterion):
    """Stop after ``patience`` consecutive generations without any update to
    the optimal set."""

    patience: int
    _stale: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.patience, "patience")

    def reset(self) -> None:
        self._stale = 0

    def should_stop(self, state: GenerationState) -> bool:
        if state.archive_updates > 0:
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience


@dataclass
class AnyCriterion(TerminationCriterion):
    """Stop when any of the wrapped criteria fires."""

    criteria: tuple[TerminationCriterion, ...]

    def __post_init__(self) -> None:
        if not self.criteria:
            raise OptimizationError("AnyCriterion needs at least one criterion")

    def reset(self) -> None:
        for criterion in self.criteria:
            criterion.reset()

    def should_stop(self, state: GenerationState) -> bool:
        # Evaluate every criterion so stateful ones keep their counters fresh.
        results = [criterion.should_stop(state) for criterion in self.criteria]
        return any(results)
