"""Termination criteria for the evolutionary algorithms (Section V-I).

The paper mentions two stopping rules: a fixed generation budget and
stagnation of the optimal set (no improvement for a number of consecutive
generations).  This module adds the two production-run rules the stepwise
driver needs — a wall-clock :class:`Deadline` and front-quality
:class:`HypervolumeStagnation` — and criteria can be combined with ``|``
(stop when either fires).

Stateful criteria (stagnation counters, hypervolume bests) expose their
internal state as a JSON-compatible document via :meth:`~TerminationCriterion.
state_document` / :meth:`~TerminationCriterion.restore_state`, so a
checkpointed run resumes with exactly the counters the interrupted run had.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import OptimizationError
from repro.utils.validation import check_positive_int


@dataclass
class GenerationState:
    """Snapshot handed to termination criteria after every generation.

    Attributes
    ----------
    generation:
        Zero-based index of the generation that just completed.
    archive_updates:
        Number of improvements made to the optimal set during this
        generation (0 means the generation made no progress).
    front:
        Optional ``(n_points, n_objectives)`` objective array of the current
        elite front (minimisation convention).  Populated by the stepwise
        driver; front-quality criteria such as :class:`HypervolumeStagnation`
        read it and treat ``None`` as "unknown, keep running".
    elapsed_seconds:
        Cumulative wall time of the run so far, *including* the segments
        before a checkpoint/resume cycle.  Populated by the stepwise driver;
        :class:`Deadline` falls back to its own clock when left at 0.
    """

    generation: int
    archive_updates: int = 0
    front: np.ndarray | None = None
    elapsed_seconds: float = 0.0


class TerminationCriterion(ABC):
    """Decides whether the evolutionary loop should stop."""

    @abstractmethod
    def should_stop(self, state: GenerationState) -> bool:
        """Return True when the run should stop after ``state``."""

    def reset(self) -> None:
        """Reset internal counters before a new run (default: nothing)."""

    def state_document(self) -> dict[str, Any]:
        """JSON-compatible snapshot of the internal counters (default: none).

        Stateless criteria return ``{}``; stateful ones must return enough to
        make :meth:`restore_state` continue exactly where the serialized run
        stopped.
        """
        return {}

    def restore_state(self, document: dict[str, Any]) -> None:
        """Restore the counters captured by :meth:`state_document`."""

    def notify_resumed(self, elapsed_seconds: float) -> None:
        """Called by the driver when a run resumes from a checkpoint, with
        the cumulative elapsed time restored from it.  Wall-clock criteria
        anchor themselves here so a deadline budgets the *new* segment, not
        time already spent before the interruption (default: nothing)."""

    def __or__(self, other: "TerminationCriterion") -> "TerminationCriterion":
        return AnyCriterion((self, other))


@dataclass
class MaxGenerations(TerminationCriterion):
    """Stop after a fixed number of generations."""

    max_generations: int

    def __post_init__(self) -> None:
        check_positive_int(self.max_generations, "max_generations")

    def should_stop(self, state: GenerationState) -> bool:
        return state.generation + 1 >= self.max_generations


@dataclass
class StagnationTermination(TerminationCriterion):
    """Stop after ``patience`` consecutive generations without any update to
    the optimal set."""

    patience: int
    _stale: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.patience, "patience")

    def reset(self) -> None:
        self._stale = 0

    def should_stop(self, state: GenerationState) -> bool:
        if state.archive_updates > 0:
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience

    def state_document(self) -> dict[str, Any]:
        return {"stale": self._stale}

    def restore_state(self, document: dict[str, Any]) -> None:
        self._stale = int(document.get("stale", 0))


@dataclass
class Deadline(TerminationCriterion):
    """Stop once the current run segment's wall time reaches ``seconds``.

    The stepwise driver feeds the cumulative elapsed time through
    :attr:`GenerationState.elapsed_seconds`; on a checkpoint resume the
    driver calls :meth:`notify_resumed` with the time already spent before
    the interruption, and the deadline anchors there — the budget always
    applies to the *new* work of this invocation, never to time a previous
    segment consumed.  Outside the driver — where ``elapsed_seconds`` stays
    0 — the criterion falls back to its own clock started at :meth:`reset`.

    A deadline is inherently wall-clock-dependent: two runs with the same
    seed may stop at different generations.  The bit-for-bit resume guarantee
    therefore applies to *state*, not to where a deadline happens to fire.
    """

    seconds: float
    _started: float | None = field(default=None, repr=False)
    _anchor: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not np.isfinite(self.seconds) or self.seconds <= 0:
            raise OptimizationError(f"deadline seconds must be positive, got {self.seconds}")

    def reset(self) -> None:
        self._started = time.perf_counter()
        self._anchor = 0.0

    def notify_resumed(self, elapsed_seconds: float) -> None:
        self._anchor = float(elapsed_seconds)
        self._started = time.perf_counter()

    def should_stop(self, state: GenerationState) -> bool:
        if state.elapsed_seconds > 0:
            return state.elapsed_seconds - self._anchor >= self.seconds
        if self._started is None:
            self._started = time.perf_counter()
            return False
        return time.perf_counter() - self._started >= self.seconds


@dataclass
class HypervolumeStagnation(TerminationCriterion):
    """Stop after ``patience`` consecutive generations in which the elite
    front's hypervolume fails to improve by more than ``min_improvement``.

    The hypervolume is computed with :func:`repro.emoo.indicators.
    hypervolume_2d` over the front carried by :attr:`GenerationState.front`
    (two minimised objectives).  When no ``reference`` point is given, the
    component-wise maximum of the first observed front is fixed as the
    reference for the whole run — and serialized with the counters, so a
    resumed run measures against the same reference.

    Generations where the driver supplies no front (``state.front is None``)
    keep the run going without touching the counters.
    """

    patience: int
    reference: tuple[float, float] | None = None
    min_improvement: float = 1e-12
    _stale: int = field(default=0, repr=False)
    _best: float = field(default=-np.inf, repr=False)
    _reference: tuple[float, float] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.patience, "patience")
        if self.min_improvement < 0:
            raise OptimizationError(
                f"min_improvement must be non-negative, got {self.min_improvement}"
            )
        self._reference = self.reference

    def reset(self) -> None:
        self._stale = 0
        self._best = -np.inf
        self._reference = self.reference

    def should_stop(self, state: GenerationState) -> bool:
        from repro.emoo.indicators import finite_front_hypervolume_2d

        if state.front is None:
            return False
        front = np.asarray(state.front, dtype=np.float64)
        if front.ndim != 2 or front.shape[1] != 2:
            raise OptimizationError(
                f"HypervolumeStagnation needs a (n, 2) front, got shape {front.shape}"
            )
        if self._reference is None:
            finite = front[np.all(np.isfinite(front), axis=1)]
            if finite.shape[0] == 0:
                return False
            nadir = finite.max(axis=0)
            self._reference = (float(nadir[0]), float(nadir[1]))
        volume = finite_front_hypervolume_2d(front, self._reference)
        if volume is None:
            return False
        if volume > self._best + self.min_improvement:
            self._best = volume
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience

    def state_document(self) -> dict[str, Any]:
        return {
            "stale": self._stale,
            "best": self._best,
            "reference": list(self._reference) if self._reference is not None else None,
        }

    def restore_state(self, document: dict[str, Any]) -> None:
        self._stale = int(document.get("stale", 0))
        self._best = float(document.get("best", -np.inf))
        reference = document.get("reference")
        self._reference = (
            (float(reference[0]), float(reference[1])) if reference is not None else self.reference
        )


def termination_deadline_seconds(criterion: "TerminationCriterion | None") -> float | None:
    """Smallest :class:`Deadline` budget inside ``criterion``, or ``None``.

    Walks :class:`AnyCriterion` compositions recursively; the fidelity
    scheduler uses this to learn the wall-clock budget it should adapt
    against without the driver having to know the criterion structure.
    """
    if criterion is None:
        return None
    if isinstance(criterion, Deadline):
        return float(criterion.seconds)
    if isinstance(criterion, AnyCriterion):
        budgets = [
            seconds
            for seconds in (termination_deadline_seconds(child) for child in criterion.criteria)
            if seconds is not None
        ]
        return min(budgets) if budgets else None
    return None


@dataclass
class AnyCriterion(TerminationCriterion):
    """Stop when any of the wrapped criteria fires."""

    criteria: tuple[TerminationCriterion, ...]

    def __post_init__(self) -> None:
        if not self.criteria:
            raise OptimizationError("AnyCriterion needs at least one criterion")

    def reset(self) -> None:
        for criterion in self.criteria:
            criterion.reset()

    def should_stop(self, state: GenerationState) -> bool:
        # Evaluate every criterion so stateful ones keep their counters fresh.
        results = [criterion.should_stop(state) for criterion in self.criteria]
        return any(results)

    def state_document(self) -> dict[str, Any]:
        # Entries are tagged with the criterion class so a resume under a
        # *changed* composition (e.g. a --deadline added or dropped) can
        # never misassign counters positionally.
        return {
            "criteria": [
                {"kind": type(criterion).__name__, "state": criterion.state_document()}
                for criterion in self.criteria
            ]
        }

    def restore_state(self, document: dict[str, Any]) -> None:
        # Match stored entries to criteria by kind, in order.  Criteria the
        # checkpoint has no entry for keep their reset state; stored entries
        # with no matching criterion are dropped — continuation of stateful
        # counters is exact when the composition is unchanged and
        # best-effort when the caller changed the stopping rule.
        entries = [
            entry
            for entry in document.get("criteria", [])
            if isinstance(entry, dict) and "kind" in entry
        ]
        for criterion in self.criteria:
            kind = type(criterion).__name__
            for index, entry in enumerate(entries):
                if entry["kind"] == kind:
                    criterion.restore_state(entry.get("state") or {})
                    entries.pop(index)
                    break

    def notify_resumed(self, elapsed_seconds: float) -> None:
        for criterion in self.criteria:
            criterion.notify_resumed(elapsed_seconds)
